#!/usr/bin/env python3
"""Lower-bound analysis on odd cycles (Sections III.C–III.D).

Reproduces the two counterexample instances of the paper:

* Figure 2 — an odd cycle embedded in a 9-pt stencil whose optimum (30)
  beats the max-clique bound (25), certified by Theorem 1's
  ``max(maxpair, minchain3)``.
* Figure 3 — two coupled odd cycles where the optimum beats *both* lower
  bounds ("lower bounds are not tight").

Both optima are confirmed with the exact branch-and-bound solver and the
MILP, and the constructive odd-cycle coloring of Lemma 2 is demonstrated.
"""

import numpy as np

from repro.core.bounds import (
    clique_block_bound,
    cycle_maxpair,
    cycle_minchain3,
    maxpair_bound,
    odd_cycle_bound,
    odd_cycle_optimum,
)
from repro.core.exact.branch_and_bound import solve_exact
from repro.core.exact.milp import solve_milp
from repro.core.exact.special_cases import color_odd_cycle
from repro.core.interval import interval_str
from repro.data.paper_instances import (
    FIGURE2_WEIGHTS,
    figure2_cycle_graph,
    figure2_odd_cycle,
    figure3_two_cycles,
)


def main() -> None:
    # ---------------------------------------------------------- Theorem 1
    w = np.array(FIGURE2_WEIGHTS)
    print("Theorem 1 on the Figure 2 cycle:")
    print(f"  weights    : {list(w)}")
    print(f"  maxpair    : {cycle_maxpair(w)}")
    print(f"  minchain3  : {cycle_minchain3(w)}")
    print(f"  optimum    : {odd_cycle_optimum(w)} = max(maxpair, minchain3)")

    cycle = figure2_cycle_graph()
    constructed = color_odd_cycle(cycle).check()
    print(f"  Lemma 2 construction uses {constructed.maxcolor} colors:")
    for v in range(cycle.num_vertices):
        s, e = constructed.interval_of(v)
        print(f"    vertex {v} (w={cycle.weights[v]}): {interval_str(s, e - s)}")

    # ------------------------------------------------------------ Figure 2
    inst2 = figure2_odd_cycle()
    print("\nFigure 2 (cycle embedded in a 4x4 stencil):")
    print(f"  max-clique bound : {clique_block_bound(inst2)}")
    print(f"  odd-cycle bound  : {odd_cycle_bound(inst2, max_len=7)}")
    opt2 = solve_exact(inst2)
    print(f"  exact optimum    : {opt2.maxcolor}  "
          "(the cycle bound is tight; the clique bound is not)")

    # ------------------------------------------------------------ Figure 3
    inst3 = figure3_two_cycles()
    print("\nFigure 3 (two coupled odd cycles):")
    print(f"  maxpair bound    : {maxpair_bound(inst3)}")
    print(f"  odd-cycle bound  : {odd_cycle_bound(inst3, max_len=5)}")
    opt3 = solve_exact(inst3)
    milp3 = solve_milp(inst3)
    print(f"  exact optimum    : {opt3.maxcolor} (B&B) / {milp3.maxcolor} (MILP)")
    print("  -> the optimum strictly exceeds every lower bound of Section III")


if __name__ == "__main__":
    main()
