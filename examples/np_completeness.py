#!/usr/bin/env python3
"""The NAE-3SAT reduction in action (Section IV).

Runs the reduction on a satisfiable formula (showing witness construction
and assignment extraction) and on the Fano-plane formula — the smallest
unsatisfiable monotone NAE-3SAT instance — showing the resulting 27-pt
stencil cannot be colored with 14 colors.
"""

from repro.npc.decision import decide_stencil_coloring
from repro.npc.nae3sat import NAE3SAT, unsatisfiable_example
from repro.npc.reduction import (
    assignment_from_coloring,
    build_reduction,
    coloring_from_assignment,
)


def show(formula: NAE3SAT) -> None:
    print(f"formula: {formula.num_vars} variables, clauses {formula.clauses}")
    sat = formula.is_satisfiable()
    print(f"  NAE-satisfiable (brute force): {sat}")
    reduction = build_reduction(formula)
    X, Y, Z = reduction.instance.geometry.shape
    nonzero = int((reduction.instance.weights > 0).sum())
    print(f"  reduced instance: {X}x{Y}x{Z} 27-pt stencil, {nonzero} weighted "
          f"vertices (7s and 3s), threshold K={reduction.k}")

    if sat:
        assignment = formula.solve_brute_force()
        witness = coloring_from_assignment(reduction, assignment)
        print(f"  witness: assignment {assignment} -> valid "
              f"{witness.maxcolor}-coloring (constructive direction)")

    coloring = decide_stencil_coloring(reduction.instance, reduction.k, method="milp")
    print(f"  solver says colorable with {reduction.k} colors: {coloring is not None}")
    assert (coloring is not None) == sat, "reduction equivalence violated!"
    if coloring is not None:
        extracted = assignment_from_coloring(reduction, coloring)
        print(f"  extracted assignment {extracted} satisfies formula: "
              f"{formula.is_satisfied(extracted)}")
    print()


def main() -> None:
    # A satisfiable formula with overlapping clauses.
    show(NAE3SAT(4, ((0, 1, 2), (1, 2, 3), (0, 2, 3))))

    # The Fano plane: provably NOT NAE-satisfiable, hence not 14-colorable.
    show(unsatisfiable_example())


if __name__ == "__main__":
    main()
