#!/usr/bin/env python3
"""Quickstart: color a weighted stencil and compare all seven heuristics.

Colors a grid through the stable ``repro.api.color`` facade, then builds a
2D (9-pt) and a 3D (27-pt) instance with random weights, runs every
algorithm of the paper, validates each coloring, and compares against the
clique-block lower bound.
"""

import numpy as np

from repro import ALGORITHMS, IVCInstance, color, lower_bound
from repro.core.algorithms.registry import color_with


def demo(instance: IVCInstance) -> None:
    lb = lower_bound(instance)
    geo = instance.geometry
    print(f"\n=== {type(geo).__name__} {geo.shape}: lower bound {lb} ===")
    for name in ALGORITHMS:
        coloring = color_with(instance, name).check()  # .check() validates
        ratio = coloring.maxcolor / max(lb, 1)
        print(
            f"  {name:>3}: maxcolor={coloring.maxcolor:>5}  "
            f"ratio-to-bound={ratio:.3f}  time={coloring.elapsed * 1e3:7.2f} ms"
        )


def main() -> None:
    rng = np.random.default_rng(42)

    # The one-call facade: hand it a weight grid, get a ColoringResult with
    # grid-shaped starts and provenance naming how it was produced.
    weights = rng.integers(0, 50, size=(24, 24))
    result = color(weights, "GLL", validate=True)
    print(
        f"color(): {result.algorithm} via {result.mode} runtime -> "
        f"maxcolor={result.maxcolor}, starts shape {result.starts.shape}"
    )

    # 2DS-IVC: the same 24x24 grid, every paper heuristic.
    demo(IVCInstance.from_grid_2d(weights))

    # 3DS-IVC: a 10x10x10 grid.
    demo(IVCInstance.from_grid_3d(rng.integers(0, 30, size=(10, 10, 10))))

    # Reading a single vertex's interval:
    instance = IVCInstance.from_grid_2d(rng.integers(1, 10, size=(4, 4)))
    coloring = color_with(instance, "BDP")
    start, end = coloring.interval_of(5)
    print(f"\nvertex 5 of the 4x4 instance is colored [{start}, {end})")


if __name__ == "__main__":
    main()
