#!/usr/bin/env python3
"""STKDE application integration (the Section VII scenario).

End to end: generate a spatio-temporal event dataset, decompose the domain
into boxes (the 27-pt stencil task graph), color it with every heuristic,
replay each colored task DAG on a simulated 6-worker OpenMP-style runtime,
and finally execute the best coloring on real threads and check the density
against the sequential reference.
"""

import numpy as np

from repro.analysis.regression import linear_fit
from repro.analysis.reporting import format_table
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.data.synthetic import dengue_like
from repro.stkde.parallel import execute_threaded
from repro.stkde.runtime import default_costs, simulate_schedule
from repro.stkde.stkde import stkde_reference
from repro.stkde.tasks import box_decomposition


def main() -> None:
    dataset = dengue_like(num_points=1200)
    h_space = dataset.axis_length(0) / 16.0
    h_time = dataset.axis_length(2) / 16.0
    problem = box_decomposition(dataset, h_space, h_time, voxel_dims=(24, 24, 24))
    instance = problem.instance
    print(f"dataset {dataset.name}: {dataset.num_points} events")
    print(f"box grid {problem.box_dims} -> {instance.num_vertices} tasks, "
          f"{int((instance.weights > 0).sum())} non-empty")

    costs = default_costs(instance, per_point=1.0, overhead=0.02)
    rows = []
    colors, makespans = [], []
    best = None
    for name in ALGORITHMS:
        coloring = color_with(instance, name).check()
        trace = simulate_schedule(coloring, num_workers=6, costs=costs)
        rows.append(
            (name, coloring.maxcolor, trace.makespan, trace.critical_path,
             trace.parallel_efficiency)
        )
        colors.append(float(coloring.maxcolor))
        makespans.append(trace.makespan)
        if best is None or trace.makespan < best[1].makespan:
            best = (coloring, trace)
    print()
    print(format_table(
        ("algorithm", "maxcolor", "sim makespan", "critical path", "efficiency"),
        rows,
    ))
    fit = linear_fit(colors, makespans)
    print(f"\ncolors vs simulated runtime: slope={fit.slope:.3f}, r={fit.rvalue:.3f}")

    # Execute the best coloring on real threads and verify the density.
    coloring, trace = best
    print(f"\nexecuting {coloring.algorithm}'s DAG on 4 real threads ...")
    result = execute_threaded(problem, coloring, num_workers=4)
    reference = stkde_reference(dataset, problem.voxel_dims, h_space, h_time)
    ok = np.allclose(result.density, reference)
    print(f"density matches sequential reference: {ok}  "
          f"(wall {result.elapsed:.2f}s, {result.num_tasks} tasks)")


if __name__ == "__main__":
    main()
