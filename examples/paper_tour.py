#!/usr/bin/env python3
"""A guided tour of the paper, section by section, in miniature.

Runs a small version of every major result: the special-case theory
(Section III), the NP-completeness reduction (Section IV), the heuristics
and their evaluation (Sections V–VI), and the application integration
(Section VII).  Finishes in well under a minute.
"""

import numpy as np

from repro.analysis.performance_profiles import profile_to_text
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.bounds import (
    clique_block_bound,
    lower_bound,
    odd_cycle_bound,
    odd_cycle_optimum,
)
from repro.core.exact.branch_and_bound import solve_exact
from repro.core.exact.special_cases import color_odd_cycle
from repro.core.problem import IVCInstance
from repro.data.instances import SuiteConfig, build_suite_2d
from repro.data.paper_instances import figure2_cycle_graph, figure2_odd_cycle
from repro.data.synthetic import standard_datasets
from repro.experiments import run_suite
from repro.npc.decision import decide_stencil_coloring
from repro.npc.nae3sat import NAE3SAT, unsatisfiable_example
from repro.npc.reduction import build_reduction
from repro.reports import stkde_figure
from repro.stkde.tasks import box_decomposition


def banner(text: str) -> None:
    print(f"\n{'=' * 68}\n{text}\n{'=' * 68}")


def section_iii() -> None:
    banner("Section III — special cases and lower bounds")
    cycle = figure2_cycle_graph()
    constructed = color_odd_cycle(cycle).check()
    print(f"odd cycle (Theorem 1): constructed {constructed.maxcolor} colors "
          f"= max(maxpair, minchain3) = {odd_cycle_optimum(cycle.weights)}")
    stencil = figure2_odd_cycle()
    print(f"embedded in a stencil (Figure 2): clique bound "
          f"{clique_block_bound(stencil)}, cycle bound "
          f"{odd_cycle_bound(stencil, max_len=7)}, "
          f"optimum {solve_exact(stencil).maxcolor}")


def section_iv() -> None:
    banner("Section IV — NP-completeness via NAE-3SAT")
    sat = NAE3SAT(3, ((0, 1, 2),))
    red = build_reduction(sat)
    ok = decide_stencil_coloring(red.instance, 14, method="milp") is not None
    print(f"satisfiable formula -> 14-colorable grid: {ok}")
    fano = build_reduction(unsatisfiable_example())
    bad = decide_stencil_coloring(fano.instance, 14, method="milp") is None
    print(f"Fano plane (unsatisfiable) -> NOT 14-colorable: {bad}")


def sections_v_vi() -> None:
    banner("Sections V-VI — heuristics on the spatio-temporal suite")
    datasets = standard_datasets(scale=0.2)
    suite = build_suite_2d(datasets, SuiteConfig(dim_cap=8, max_cells=256))
    result = run_suite(suite)
    print(f"{result.num_instances} 2D instances:")
    print(profile_to_text(result.profile()))


def section_vii() -> None:
    banner("Section VII — STKDE integration (simulated 6-worker runtime)")
    dataset = standard_datasets(scale=0.4)[3]  # PollenUS analogue
    problem = box_decomposition(
        dataset,
        dataset.axis_length(0) / 24,
        dataset.axis_length(2) / 16,
        voxel_dims=(8, 8, 8),
    )
    figure = stkde_figure(problem.instance, workers=6)
    print(figure.to_text())


def main() -> None:
    section_iii()
    section_iv()
    sections_v_vi()
    section_vii()
    banner("done — see benchmarks/ for the full figure regeneration")


if __name__ == "__main__":
    main()
