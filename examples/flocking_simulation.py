#!/usr/bin/env python3
"""Boids flocking scheduled by interval coloring (the paper's §I example).

Runs a flock for a number of steps.  Every step the space decomposition is
rebuilt (boids move between regions), the 9-pt stencil task graph is
recolored, and the in-place velocity updates execute on real threads
following the colored DAG — race-free because neighboring regions are
serialized.  Determinism is demonstrated by comparing against the
sequential execution of the same DAG.
"""

import numpy as np

from repro.apps.flocking import random_flock
from repro.core.algorithms.registry import color_with


def main() -> None:
    flock = random_flock(num_boids=400, extent_size=50.0, radius=2.5, seed=11)
    flock.alignment = 0.2
    reference = flock.copy()
    print(f"{flock.num_boids} boids, regions {flock.grid_dims}, "
          f"initial polarization {flock.polarization():.3f}")

    steps = 30
    for step in range(steps):
        instance, members = flock.build_instance()
        coloring = color_with(instance, "BDP")
        flock.step_threaded(coloring, members, dt=0.5, num_workers=4)

        instance_ref, members_ref = reference.build_instance()
        reference.step_sequential(coloring.with_algorithm("BDP"), members_ref, dt=0.5)

        if (step + 1) % 10 == 0:
            same = np.array_equal(flock.positions, reference.positions)
            print(f"step {step + 1:>3}: maxcolor={coloring.maxcolor:>4}  "
                  f"polarization={flock.polarization():.3f}  "
                  f"threaded==sequential: {same}")

    print(f"\nfinal polarization {flock.polarization():.3f} "
          f"(alignment emerged from local rules under parallel execution)")


if __name__ == "__main__":
    main()
