#!/usr/bin/env python3
"""Short-range n-body simulation scheduled by interval coloring.

The scenario of the paper's Figure 1: particles in a 2D box interact within
a cutoff radius; a rectilinear decomposition into regions at least twice the
cutoff wide yields a 9-pt stencil task graph whose weights are the actual
pair-interaction counts.  Each timestep we recolor the task graph, execute
the force pass on real threads following the colored DAG, and verify the
forces against the O(N²) serial reference.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.apps.nbody import NBodySystem
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.bounds import lower_bound
from repro.stkde.runtime import simulate_schedule


def main() -> None:
    rng = np.random.default_rng(7)
    extent = np.array([[0.0, 60.0], [0.0, 45.0]])
    # Clustered particles: three blobs plus background, like Figure 1.
    blobs = [
        rng.normal([15, 12], 3.0, size=(500, 2)),
        rng.normal([45, 30], 4.0, size=(700, 2)),
        rng.normal([30, 20], 2.0, size=(300, 2)),
        rng.uniform([0, 0], [60, 45], size=(200, 2)),
    ]
    positions = np.clip(np.vstack(blobs), extent[:, 0], extent[:, 1])
    system = NBodySystem(positions=positions, cutoff=2.0, extent=extent)
    instance = system.instance
    print(f"{system.num_particles} particles, regions {system.grid_dims}, "
          f"{instance.total_weight} interacting pairs, "
          f"lower bound {lower_bound(instance)}")

    rows = []
    for name in ALGORITHMS:
        coloring = color_with(instance, name)
        trace = simulate_schedule(coloring, num_workers=6)
        rows.append((name, coloring.maxcolor, trace.makespan, trace.parallel_efficiency))
    print(format_table(("algorithm", "maxcolor", "sim makespan", "efficiency"), rows))

    coloring = color_with(instance, "GLF")
    threaded = system.forces_threaded(coloring, num_workers=4)
    serial = system.forces_serial()
    print(f"\nthreaded forces match O(N^2) reference: "
          f"{np.allclose(threaded, serial)}")

    # A few dynamic steps, recoloring as particles move between regions.
    velocities = np.zeros_like(system.positions)
    for step in range(3):
        coloring = color_with(system.instance, "GLF")
        velocities = system.step(velocities, dt=0.05, coloring=coloring)
        print(f"step {step + 1}: recolored with maxcolor={coloring.maxcolor}, "
              f"mean speed {np.sqrt((velocities ** 2).sum(axis=1)).mean():.4f}")


if __name__ == "__main__":
    main()
