"""Shared content-addressing helpers (blake2b digests of arrays and requests).

Two subsystems independently grew blake2b fingerprints: the service result
cache hashes ``(stencil kind, shape, weight bytes, algorithm)`` into a
content key, and the kernel substrate hashes vertex orders to cache
wavefront schedules.  Both live here now, with one canonicalization rule.

Compatibility matters: :func:`content_key` must produce byte-identical
digests to the original ``service/protocol.py`` implementation so existing
JSONL spill files written by older servers still warm-start a new one, and
:func:`array_digest` must match the original substrate digest so nothing
about wavefront caching changes under the refactor.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["canonical_weights", "content_key", "array_digest", "config_fingerprint"]


def canonical_weights(weights) -> np.ndarray:
    """A weight grid canonicalized to C-contiguous ``int64``.

    Lists, ``int32`` arrays, and Fortran-ordered arrays of equal content all
    map to the same bytes — required for content keys to collide exactly
    when colorings are identical.
    """
    return np.ascontiguousarray(weights, dtype=np.int64)


def content_key(weights, algorithm: str) -> str:
    """Canonical content hash of a coloring request (hex digest).

    Two requests share a key iff they ask for the same algorithm on the
    same-kind stencil of the same shape with identical weights — exactly the
    condition under which their colorings are identical (all registry
    algorithms are deterministic).  Options that cannot change the coloring
    (``fast``, ``validate``, deadlines, request ids) are deliberately
    excluded from the hash.
    """
    arr = canonical_weights(weights)
    return content_key_from_bytes(arr.tobytes(), arr.shape, algorithm)


def content_key_from_bytes(
    payload: bytes, shape: tuple[int, ...], algorithm: str
) -> str:
    """:func:`content_key` computed from already-canonical array bytes.

    ``payload`` must be the C-order ``int64`` bytes of the weight grid —
    exactly what a binary wire frame carries — so hot serving paths can
    hash a request without reconstructing the array.  Kept next to
    :func:`content_key` because the two must derive identical digests.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(f"{len(shape)}d|{'x'.join(str(s) for s in shape)}|".encode())
    h.update(payload)
    h.update(b"|" + algorithm.encode())
    return h.hexdigest()


def array_digest(arr: np.ndarray, *, digest_size: int = 16) -> bytes:
    """A raw blake2b digest of an array's bytes (dtype/shape NOT hashed).

    Used to key per-order wavefront schedules: orders of one substrate all
    share dtype and length, so hashing the bytes alone is unambiguous there.
    Callers mixing dtypes or shapes must disambiguate themselves.
    """
    return hashlib.blake2b(
        np.ascontiguousarray(arr).tobytes(), digest_size=digest_size
    ).digest()


def config_fingerprint(config) -> str:
    """A short stable hex digest of a (possibly nested) config dataclass.

    Used by :class:`repro.api.ColoringResult` provenance to record *which*
    runtime configuration produced a coloring without embedding the whole
    config.  Fields are sorted, so the digest is order-independent; nested
    dataclasses (``RuntimeConfig.tiling``) recurse through ``asdict``.
    """
    from dataclasses import asdict, is_dataclass

    payload = asdict(config) if is_dataclass(config) else dict(config)
    text = repr(sorted(payload.items()))
    return hashlib.blake2b(text.encode(), digest_size=12).hexdigest()
