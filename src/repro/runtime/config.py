"""Explicit runtime configuration, with the environment as an *override* layer.

:class:`RuntimeConfig` is the one place the ``REPRO_*`` knobs live.  Before
this module existed, ``REPRO_FAST_PATHS`` was parsed in ``kernels/config``,
``REPRO_WAVEFRONT_CACHE_SIZE`` in ``kernels/substrate``, and ``REPRO_FAULTS``
in ``resilience/faults`` — each at import time, each with its own precedence
quirks.  Now every knob is an explicit dataclass field with a documented
default, and :meth:`RuntimeConfig.from_env` applies the environment on top.

Precedence (highest wins)
-------------------------
1. **Explicit per-call arguments** — ``fast=True`` to ``color_with``,
   ``fast_paths=`` to ``run_grid``/``run_suite``, ``--fast-path`` on the CLI.
2. **Explicit config** — keyword overrides passed to
   :meth:`RuntimeConfig.from_env`, or a :class:`RuntimeConfig` constructed
   directly (which ignores the environment entirely).
3. **Environment** — the ``REPRO_*`` variables below, read by ``from_env``.
4. **Defaults** — the dataclass field defaults.

Environment variables
---------------------
============================== ========================= ====================
variable                        field                     values
============================== ========================= ====================
``REPRO_FAST_PATHS``            ``fast_paths``            ``0``/``off`` → off,
                                                          ``on``/``force`` → on,
                                                          else → auto
``REPRO_FAST_PATHS_MIN_SIZE``   ``fast_paths_min_size``   int (vertices)
``REPRO_SUBSTRATE_CACHE_SIZE``  ``substrate_cache_size``  int (shapes)
``REPRO_WAVEFRONT_CACHE_SIZE``  ``wavefront_cache_size``  int (orders/shape)
``REPRO_FAULTS``                ``fault_spec``            fault spec string
``REPRO_MAX_CELL_RETRIES``      ``max_cell_retries``      int
``REPRO_SEED``                  ``seed``                  int
``REPRO_SERVICE_WORKERS``       ``service_workers``       int (server processes)
``REPRO_SERVICE_WIRE``          ``service_wire``          ``auto``/``binary``/``ndjson``
``REPRO_TILING``                ``tiling.mode``           ``off``/``auto``/``on``
``REPRO_TILE_SHAPE``            ``tiling.tile_shape``     ``512x512`` style
``REPRO_TILE_CELLS``            ``tiling.tile_cells``     int (cells per tile)
``REPRO_TILING_MIN_CELLS``      ``tiling.min_cells``      int (auto threshold)
``REPRO_TILING_JOBS``           ``tiling.jobs``           int (0 = all cores)
``REPRO_TILING_BUDGET_MB``      ``tiling.memory_budget_mb``  int (0 = none)
``REPRO_INCR_CONE_FRACTION``    ``incremental.max_cone_fraction``  float in (0, 1]
``REPRO_INCR_VALIDATE``         ``incremental.validate``  bool
``REPRO_INCR_SESSION_LIMIT``    ``incremental.session_limit``  int (sessions)
``REPRO_INCR_SESSION_TTL``      ``incremental.session_ttl``  float (seconds)
``REPRO_DURABILITY``            ``durability.enabled``    bool (session WAL)
``REPRO_DURABILITY_FSYNC``      ``durability.fsync``      ``never``/``checkpoint``/``always``
``REPRO_DURABILITY_CHECKPOINT_INTERVAL`` ``durability.checkpoint_interval`` int (deltas, 0 = never)
============================== ========================= ====================

This module (plus :mod:`repro.resilience.faults`, whose lazy ``REPRO_FAULTS``
parse must survive into freshly forked workers) is the only place in
``src/repro`` allowed to touch ``os.environ`` — enforced by
``tools/check_layers.py``.  External code (benchmarks, conftests) that needs
other environment knobs should go through the :func:`env_str`-family helpers
here rather than importing :mod:`os` for it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import Optional, Union

__all__ = [
    "RuntimeConfig",
    "TilingConfig",
    "IncrementalConfig",
    "DurabilityConfig",
    "FastPathMode",
    "TilingMode",
    "env_str",
    "env_int",
    "env_float",
    "env_bool",
]

#: The tri-state fast-path mode: ``"auto"`` engages the vectorized kernels
#: from ``fast_paths_min_size`` vertices up, ``"on"`` forces them regardless
#: of size, ``"off"`` disables them.
FastPathMode = str

_FAST_PATH_MODES = ("auto", "on", "off")


def env_str(name: str, default: str) -> str:
    """``os.environ[name]`` with a default (the sanctioned env accessor)."""
    return os.environ.get(name, default)


def env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return default if raw is None or not raw.strip() else int(raw)


def env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return default if raw is None or not raw.strip() else float(raw)


def env_bool(name: str, default: bool) -> bool:
    """``0``/``false``/``no``/empty are false; anything else set is true."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


#: The tri-state tiling mode: ``"off"`` never tiles, ``"auto"`` engages the
#: tiler from ``TilingConfig.min_cells`` grid cells up (GLL only), ``"on"``
#: forces it regardless of size.
TilingMode = str

_TILING_MODES = ("off", "auto", "on")


def _parse_tile_shape(raw: str) -> Optional[tuple[int, ...]]:
    """Parse a ``512x512`` / ``64x64x64`` tile-shape spec (empty → ``None``)."""
    text = raw.strip().lower()
    if not text:
        return None
    return tuple(int(part) for part in text.split("x"))


@dataclass(frozen=True)
class TilingConfig:
    """How (and whether) grids are decomposed into tiles for coloring.

    Frozen and picklable, like its owner :class:`RuntimeConfig`, so the tiler
    can ship it to worker processes.

    Attributes
    ----------
    mode:
        Tri-state (see :data:`TilingMode`).  ``"auto"`` tiles GLL colorings
        of grids with at least ``min_cells`` cells; everything else runs
        monolithically.
    tile_shape:
        Explicit per-axis tile dimensions (2 or 3 of them); ``None`` derives
        a near-square shape from ``tile_cells``.
    tile_cells:
        Target cells per tile when ``tile_shape`` is unset.
    min_cells:
        Grid size (in cells) from which ``"auto"`` mode engages the tiler.
    jobs:
        Worker processes for the tile-interior pass (``0`` = all cores,
        ``1`` = in-process serial — the same code path, like the engine).
    memory_budget_mb:
        Soft cap on the tiler's working-set, used to derive ``tile_shape``
        when one is not given (``0`` = unbudgeted).  See ``docs/tiling.md``
        for the memory model.
    """

    mode: TilingMode = "auto"
    tile_shape: Optional[tuple[int, ...]] = None
    tile_cells: int = 1 << 20
    min_cells: int = 1 << 24
    jobs: int = 1
    memory_budget_mb: int = 0

    def __post_init__(self) -> None:
        if self.mode not in _TILING_MODES:
            raise ValueError(f"tiling mode must be one of {_TILING_MODES}, got {self.mode!r}")
        if self.tile_shape is not None:
            shape = tuple(int(d) for d in self.tile_shape)
            if len(shape) not in (2, 3) or any(d < 1 for d in shape):
                raise ValueError(f"tile_shape must be 2 or 3 positive dims, got {shape}")
            object.__setattr__(self, "tile_shape", shape)
        if self.tile_cells < 1:
            raise ValueError("tile_cells must be positive")
        for name in ("min_cells", "jobs", "memory_budget_mb"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @classmethod
    def from_env(cls, **overrides) -> "TilingConfig":
        """Defaults, overridden by ``REPRO_TILING*``, overridden by kwargs."""
        values = {
            "mode": env_str("REPRO_TILING", "auto").strip().lower() or "auto",
            "tile_shape": _parse_tile_shape(env_str("REPRO_TILE_SHAPE", "")),
            "tile_cells": env_int("REPRO_TILE_CELLS", 1 << 20),
            "min_cells": env_int("REPRO_TILING_MIN_CELLS", 1 << 24),
            "jobs": env_int("REPRO_TILING_JOBS", 1),
            "memory_budget_mb": env_int("REPRO_TILING_BUDGET_MB", 0),
        }
        for name, value in overrides.items():
            if name not in values:
                raise TypeError(f"unknown TilingConfig field {name!r}")
            if value is not None:
                values[name] = value
        return cls(**values)

    def with_overrides(self, **overrides) -> "TilingConfig":
        """A copy with ``overrides`` applied (``None`` values are skipped)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self


@dataclass(frozen=True)
class IncrementalConfig:
    """How the dirty-region recolor engine (:mod:`repro.incremental`) behaves.

    Frozen and picklable, like its owner :class:`RuntimeConfig`.

    Attributes
    ----------
    max_cone_fraction:
        Fall back to a full recolor once the dependency cone has recomputed
        more than this fraction of the grid's cells.  Past that point the
        sparse propagation loop costs more than one monolithic kernel pass,
        and the fallback is always-correct by construction.
    validate:
        When true, every incremental recolor is diffed against a full
        from-scratch recolor and a divergence raises
        :class:`~repro.incremental.engine.RecolorValidationError` — the
        belt-and-braces mode for soak tests and chaos runs.
    session_limit:
        Server-side cap on concurrently held ``recolor`` sessions (each
        pins one weights grid and one starts grid in memory); least
        recently used sessions are evicted past the cap.
    session_ttl:
        Seconds of inactivity after which a held session expires; expired
        sessions answer with a typed ``unknown-session`` error rather than
        stale state.
    """

    max_cone_fraction: float = 0.25
    validate: bool = False
    session_limit: int = 64
    session_ttl: float = 900.0

    def __post_init__(self) -> None:
        if not (0.0 < self.max_cone_fraction <= 1.0):
            raise ValueError(
                f"max_cone_fraction must be in (0, 1], got {self.max_cone_fraction!r}"
            )
        if self.session_limit < 1:
            raise ValueError("session_limit must be at least 1")
        if self.session_ttl <= 0:
            raise ValueError("session_ttl must be positive")

    @classmethod
    def from_env(cls, **overrides) -> "IncrementalConfig":
        """Defaults, overridden by ``REPRO_INCR_*``, overridden by kwargs."""
        values = {
            "max_cone_fraction": env_float("REPRO_INCR_CONE_FRACTION", 0.25),
            "validate": env_bool("REPRO_INCR_VALIDATE", False),
            "session_limit": env_int("REPRO_INCR_SESSION_LIMIT", 64),
            "session_ttl": env_float("REPRO_INCR_SESSION_TTL", 900.0),
        }
        for name, value in overrides.items():
            if name not in values:
                raise TypeError(f"unknown IncrementalConfig field {name!r}")
            if value is not None:
                values[name] = value
        return cls(**values)

    def with_overrides(self, **overrides) -> "IncrementalConfig":
        """A copy with ``overrides`` applied (``None`` values are skipped)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self


#: Journal fsync policies: ``"never"`` trusts the OS page cache,
#: ``"checkpoint"`` fsyncs only checkpoint snapshots (the default — a torn
#: trailing journal record is tolerated by replay anyway), ``"always"``
#: fsyncs every appended journal record.
_FSYNC_POLICIES = ("never", "checkpoint", "always")


@dataclass(frozen=True)
class DurabilityConfig:
    """How ``recolor`` sessions are journaled and recovered
    (:mod:`repro.service.durability`).

    Frozen and picklable, like its owner :class:`RuntimeConfig`.

    Attributes
    ----------
    enabled:
        Master switch.  Durability additionally requires a shared spill
        directory (``stencil-ivc serve --spill-dir``): without one there is
        no place for journals to live and sessions stay memory-only.
    fsync:
        One of ``"never"``, ``"checkpoint"``, ``"always"`` — how hard the
        journal pushes appended records to stable storage.  ``"checkpoint"``
        (default) fsyncs checkpoint snapshots only; replay tolerates a torn
        trailing journal record, so the exposure is the last few deltas on
        a kernel (not process) crash.
    checkpoint_interval:
        Compact the journal into a fingerprinted checkpoint snapshot every
        this many applied deltas (``0`` disables compaction — the journal
        grows without bound and replay starts from the seed frame).
    """

    enabled: bool = True
    fsync: str = "checkpoint"
    checkpoint_interval: int = 16

    def __post_init__(self) -> None:
        if self.fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")

    @classmethod
    def from_env(cls, **overrides) -> "DurabilityConfig":
        """Defaults, overridden by ``REPRO_DURABILITY*``, overridden by kwargs."""
        values = {
            "enabled": env_bool("REPRO_DURABILITY", True),
            "fsync": (
                env_str("REPRO_DURABILITY_FSYNC", "checkpoint").strip().lower()
                or "checkpoint"
            ),
            "checkpoint_interval": env_int(
                "REPRO_DURABILITY_CHECKPOINT_INTERVAL", 16
            ),
        }
        for name, value in overrides.items():
            if name not in values:
                raise TypeError(f"unknown DurabilityConfig field {name!r}")
            if value is not None:
                values[name] = value
        return cls(**values)

    def with_overrides(self, **overrides) -> "DurabilityConfig":
        """A copy with ``overrides`` applied (``None`` values are skipped)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self


def _parse_fast_path_mode(raw: str) -> FastPathMode:
    """Map a ``REPRO_FAST_PATHS`` value onto the tri-state mode.

    Historically the variable was boolean (``0`` disables, anything else
    enables auto mode); ``on``/``force`` were added with the tri-state to
    force kernels below the size threshold.
    """
    text = raw.strip().lower()
    if text in ("0", "off", "false", "no"):
        return "off"
    if text in ("on", "force"):
        return "on"
    return "auto"


@dataclass(frozen=True)
class RuntimeConfig:
    """Every runtime knob, explicit.  Frozen (use :meth:`with_overrides`) and
    picklable, so the engine can ship one to each worker process.

    Attributes
    ----------
    fast_paths:
        Tri-state kernel mode (see :data:`FastPathMode`).  Legacy boolean
        values are normalized: ``True`` → ``"on"``, ``False`` → ``"off"``,
        ``None`` → ``"auto"``.
    fast_paths_min_size:
        Minimum vertex count for kernels to engage in ``"auto"`` mode
        (batched NumPy dispatch has fixed overhead that dominates on
        miniature instances; break-even sits around a few thousand
        vertices, see ``BENCH_kernels.json``).
    substrate_cache_size:
        Shapes kept per substrate LRU cache (geometries and substrates
        cached separately, each with this capacity).
    wavefront_cache_size:
        Wavefront schedules kept per substrate (one per distinct vertex
        order).
    fault_spec:
        A :func:`repro.resilience.faults.parse_fault_spec` string; empty
        means no fault injection.  Installed by
        :meth:`repro.runtime.context.ExecutionContext.install_faults`.
    max_cell_retries:
        Per-cell retry budget of the supervised engine pool.
    seed:
        Base seed for seeded subsystems (fault plans default to their spec's
        own ``seed=`` segment; this is the fallback for future consumers).
    service_workers:
        Default worker-process count for ``stencil-ivc serve`` — ``1`` runs
        the classic single-process server, ``>= 2`` a routed
        :class:`~repro.service.workers.WorkerPool` behind a
        :class:`~repro.service.router.ColoringRouter`.
    service_wire:
        Default client wire preference (``auto`` negotiates binary frames
        and falls back to NDJSON; ``binary``/``ndjson`` pin the format).
    tiling:
        The :class:`TilingConfig` governing out-of-core tiled coloring
        (:mod:`repro.tiling`).  A plain dict is accepted and normalized.
    incremental:
        The :class:`IncrementalConfig` governing dirty-region recoloring
        (:mod:`repro.incremental`) and the service's ``recolor`` sessions.
        A plain dict is accepted and normalized.
    durability:
        The :class:`DurabilityConfig` governing session write-ahead
        journaling and crash recovery (:mod:`repro.service.durability`).
        A plain dict is accepted and normalized.
    """

    fast_paths: FastPathMode = "auto"
    fast_paths_min_size: int = 4096
    substrate_cache_size: int = 32
    wavefront_cache_size: int = 8
    fault_spec: str = ""
    max_cell_retries: int = 3
    seed: int = 0
    service_workers: int = 1
    service_wire: str = "auto"
    tiling: TilingConfig = field(default_factory=TilingConfig)
    incremental: IncrementalConfig = field(default_factory=IncrementalConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)

    def __post_init__(self) -> None:
        if isinstance(self.tiling, dict):
            object.__setattr__(self, "tiling", TilingConfig(**self.tiling))
        elif not isinstance(self.tiling, TilingConfig):
            raise ValueError(f"tiling must be a TilingConfig, got {type(self.tiling)!r}")
        if isinstance(self.incremental, dict):
            object.__setattr__(
                self, "incremental", IncrementalConfig(**self.incremental)
            )
        elif not isinstance(self.incremental, IncrementalConfig):
            raise ValueError(
                f"incremental must be an IncrementalConfig, got {type(self.incremental)!r}"
            )
        if isinstance(self.durability, dict):
            object.__setattr__(
                self, "durability", DurabilityConfig(**self.durability)
            )
        elif not isinstance(self.durability, DurabilityConfig):
            raise ValueError(
                f"durability must be a DurabilityConfig, got {type(self.durability)!r}"
            )
        mode: Union[FastPathMode, bool, None] = self.fast_paths
        if mode is None:
            mode = "auto"
        elif isinstance(mode, bool):
            mode = "on" if mode else "off"
        if mode not in _FAST_PATH_MODES:
            raise ValueError(
                f"fast_paths must be one of {_FAST_PATH_MODES}, got {mode!r}"
            )
        object.__setattr__(self, "fast_paths", mode)
        for name in (
            "fast_paths_min_size",
            "substrate_cache_size",
            "wavefront_cache_size",
            "max_cell_retries",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.service_workers < 1:
            raise ValueError("service_workers must be at least 1")
        if self.service_wire not in ("auto", "binary", "ndjson"):
            raise ValueError(
                "service_wire must be one of ('auto', 'binary', 'ndjson'), "
                f"got {self.service_wire!r}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "RuntimeConfig":
        """Defaults, overridden by the environment, overridden by ``overrides``.

        ``overrides`` keys are field names; an override of ``None`` means
        "not specified" and falls through to the environment (matching the
        per-call ``fast=None`` convention everywhere else).
        """
        values = {
            "fast_paths": _parse_fast_path_mode(env_str("REPRO_FAST_PATHS", "1")),
            "fast_paths_min_size": env_int("REPRO_FAST_PATHS_MIN_SIZE", 4096),
            "substrate_cache_size": env_int("REPRO_SUBSTRATE_CACHE_SIZE", 32),
            "wavefront_cache_size": env_int("REPRO_WAVEFRONT_CACHE_SIZE", 8),
            "fault_spec": env_str("REPRO_FAULTS", ""),
            "max_cell_retries": env_int("REPRO_MAX_CELL_RETRIES", 3),
            "seed": env_int("REPRO_SEED", 0),
            "service_workers": env_int("REPRO_SERVICE_WORKERS", 1),
            "service_wire": (
                env_str("REPRO_SERVICE_WIRE", "auto").strip().lower() or "auto"
            ),
            "tiling": TilingConfig.from_env(),
            "incremental": IncrementalConfig.from_env(),
            "durability": DurabilityConfig.from_env(),
        }
        known = {f.name for f in fields(cls)}
        for name, value in overrides.items():
            if name not in known:
                raise TypeError(f"unknown RuntimeConfig field {name!r}")
            if value is not None:
                values[name] = value
        return cls(**values)

    def with_overrides(self, **overrides) -> "RuntimeConfig":
        """A copy with ``overrides`` applied (``None`` values are skipped)."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self
