"""The ExecutionContext: one object owning a run's mutable runtime state.

An :class:`ExecutionContext` bundles a :class:`~repro.runtime.config.RuntimeConfig`
with the state that used to be module globals scattered across four layers:

* the per-process **substrate caches** (kernels) — reached through
  :meth:`ExecutionContext.scoped`, a keyed lazy-init store each subsystem
  uses for its cache object;
* the **metrics registry** (:class:`repro.obs.MetricsRegistry`) — engine
  workers, kernel caches, and the service all emit into the context's
  registry;
* the **fault plan** — :meth:`install_faults` parses ``config.fault_spec``
  and installs it via :mod:`repro.resilience.faults`.

Ambient access
--------------
Most call sites do not thread a context explicitly; they pick up the
*current* one via :func:`get_context`:

* inside a :func:`use_context` block, the context given to it (propagated
  through ``contextvars``, so asyncio tasks inherit it automatically —
  but **not** across ``run_in_executor`` threads, which must re-enter
  ``use_context`` themselves, as the service batcher does);
* otherwise a lazily created process-default built by
  :meth:`ExecutionContext.from_env` — which is exactly the pre-refactor
  behaviour of every module parsing its own env vars at import.

Engine worker processes build their own context in the pool initializer and
install it with :func:`set_default_context`, so every cell colored in the
worker lands in the worker's registry (snapshots are merged back in the
parent, see :mod:`repro.engine.executor`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, TypeVar

from repro.obs.metrics import MetricsRegistry
from repro.runtime.config import RuntimeConfig

__all__ = [
    "ExecutionContext",
    "get_context",
    "use_context",
    "set_default_context",
]

T = TypeVar("T")


class ExecutionContext:
    """A runtime config plus the mutable per-process state it governs.

    Contexts are cheap to create; subsystem caches inside them are built
    lazily on first use.  A context is *not* picklable (it holds locks and
    caches) — ship its :class:`RuntimeConfig` across processes and rebuild.
    """

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else RuntimeConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._state: dict = {}
        self._state_lock = threading.Lock()

    @classmethod
    def from_env(cls, **overrides) -> "ExecutionContext":
        """A context over :meth:`RuntimeConfig.from_env` (overrides win)."""
        return cls(RuntimeConfig.from_env(**overrides))

    def child(
        self,
        *,
        config: Optional[RuntimeConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ExecutionContext":
        """A context sharing this one's subsystem state (substrate caches)
        but optionally swapping the config or metrics registry.

        The service uses this to get its own metrics registry while still
        sharing the process's substrate caches with direct callers.
        """
        clone = ExecutionContext.__new__(ExecutionContext)
        clone.config = config if config is not None else self.config
        clone.metrics = metrics if metrics is not None else self.metrics
        clone._state = self._state
        clone._state_lock = self._state_lock
        return clone

    def scoped(self, key: str, factory: Callable[[], T]) -> T:
        """The per-context singleton under ``key``, built by ``factory`` once.

        Subsystems use this for their cache objects — e.g. the kernel
        substrate layer keeps its shape caches under ``"kernels.substrate"``.
        The factory runs outside the lock-free fast path but inside the state
        lock, so it must not re-enter :meth:`scoped` for the same key.
        """
        with self._state_lock:
            try:
                return self._state[key]
            except KeyError:
                item = factory()
                self._state[key] = item
                return item

    def clear_scoped(self, key: str) -> None:
        """Drop the subsystem state under ``key`` (rebuilt on next use)."""
        with self._state_lock:
            self._state.pop(key, None)

    def install_faults(self) -> None:
        """Parse and install ``config.fault_spec`` as the process fault plan.

        A no-op when the spec is empty — crucially it does **not** clear an
        already-installed plan, so fork-inherited plans from
        ``install_plan`` (the chaos tests) survive worker initialization.
        """
        if not self.config.fault_spec.strip():
            return
        from repro.resilience.faults import install_plan, parse_fault_spec

        install_plan(parse_fault_spec(self.config.fault_spec))

    def resolve_fast(self, fast: Optional[bool], num_vertices: int) -> bool:
        """Per-call fast-path decision under this context's config.

        Explicit ``True``/``False`` win unconditionally; ``None`` follows
        the config mode (with the auto-mode size threshold) and any scoped
        :func:`repro.runtime.fastpath.fast_paths` override.
        """
        from repro.runtime.fastpath import resolve_fast_for

        return resolve_fast_for(fast, num_vertices, context=self)


_current: ContextVar[Optional[ExecutionContext]] = ContextVar(
    "repro_execution_context", default=None
)
_default: Optional[ExecutionContext] = None
_default_lock = threading.Lock()


def get_context() -> ExecutionContext:
    """The current context: the innermost :func:`use_context`, else the
    lazily built process default (``ExecutionContext.from_env()``)."""
    ctx = _current.get()
    if ctx is not None:
        return ctx
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = ExecutionContext.from_env()
    return _default


def set_default_context(ctx: Optional[ExecutionContext]) -> None:
    """Replace the process-default context (``None`` → rebuild from env on
    next use).  Engine workers call this from the pool initializer; tests
    use it to reset runtime state."""
    global _default
    with _default_lock:
        _default = ctx


@contextmanager
def use_context(ctx: ExecutionContext) -> Iterator[ExecutionContext]:
    """Make ``ctx`` the current context for the dynamic extent of the block.

    Propagates through ``contextvars`` — asyncio tasks created inside the
    block inherit it; threads and executor jobs do not and must re-enter.
    """
    token = _current.set(ctx)
    try:
        yield ctx
    finally:
        _current.reset(token)
