"""The runtime layer: explicit configuration and the execution context.

One :class:`RuntimeConfig` (every ``REPRO_*`` knob as an explicit field,
environment applied as overrides in exactly one place) plus one
:class:`ExecutionContext` (substrate caches, metrics registry, fault plan)
threaded through all four coloring call paths — direct registry dispatch,
the vectorized kernels, the parallel engine, and the online service.  See
``docs/architecture.md``.
"""

from repro.runtime.config import (
    RuntimeConfig,
    TilingConfig,
    env_bool,
    env_float,
    env_int,
    env_str,
)
from repro.runtime.context import (
    ExecutionContext,
    get_context,
    set_default_context,
    use_context,
)
from repro.runtime.fingerprint import (
    array_digest,
    canonical_weights,
    config_fingerprint,
    content_key,
)

__all__ = [
    "RuntimeConfig",
    "TilingConfig",
    "config_fingerprint",
    "ExecutionContext",
    "get_context",
    "set_default_context",
    "use_context",
    "array_digest",
    "canonical_weights",
    "content_key",
    "env_bool",
    "env_float",
    "env_int",
    "env_str",
]
