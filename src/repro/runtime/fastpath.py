"""Fast-path resolution: config mode + legacy process switch + per-call arg.

The vectorized kernels in :mod:`repro.kernels` are differentially tested to
produce *identical* colorings to the reference Python loops, so they are on
by default.  Whether a given call actually takes the kernel is decided here,
from three layers (highest wins):

1. an explicit per-call ``fast=True``/``False`` argument — always honoured
   (benchmarks and differential tests rely on ``fast=True`` exercising the
   kernels even on degenerate grids);
2. the legacy process-wide switch — :func:`set_fast_paths` and the scoped
   :func:`fast_paths` context manager (used by
   :func:`~repro.core.algorithms.registry.color_with` so a resolved decision
   reaches every primitive underneath the algorithm);
3. the current :class:`~repro.runtime.config.RuntimeConfig` ``fast_paths``
   mode: ``"off"`` disables, ``"on"`` forces, ``"auto"`` engages from
   ``fast_paths_min_size`` vertices up (batched NumPy dispatch has fixed
   overhead that dominates on miniature instances).

The legacy boolean switch maps onto the tri-state as ``True`` → auto (still
subject to the size threshold, as it always was) and ``False`` → off.

This module is re-exported by :mod:`repro.kernels.config` for backward
compatibility; it lives in ``repro.runtime`` so :mod:`repro.core` can resolve
fast-path decisions without a core→kernels import (the kernels themselves are
bound lazily by the registry).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext, get_context

__all__ = [
    "MIN_AUTO_SIZE",
    "fast_paths_enabled",
    "set_fast_paths",
    "resolve_fast",
    "resolve_fast_for",
    "fast_paths",
]

#: Minimum vertex count for the kernels to engage in auto mode under the
#: *default* (environment-derived) config.  Kept as a module constant for
#: compatibility; context-aware code reads ``config.fast_paths_min_size``.
MIN_AUTO_SIZE: int = RuntimeConfig.from_env().fast_paths_min_size

# The legacy process-wide switch. None = no override, follow the config mode.
# A plain global (not a ContextVar) to preserve the pre-runtime semantics of
# set_fast_paths being visible process-wide, threads included.
_override: Optional[bool] = None


def fast_paths_enabled(context: Optional[ExecutionContext] = None) -> bool:
    """Whether the vectorized kernels are currently enabled (size aside)."""
    if _override is not None:
        return _override
    ctx = context if context is not None else get_context()
    return ctx.config.fast_paths != "off"


def set_fast_paths(enabled: bool) -> None:
    """Legacy process-wide switch: ``True`` ≈ auto mode, ``False`` = off.

    Overrides the config mode for the rest of the process (or until the
    next call).  ``True`` keeps the auto-mode size threshold — it restores
    default behaviour rather than forcing kernels onto tiny instances; use
    ``RuntimeConfig(fast_paths="on")`` or per-call ``fast=True`` to force.
    """
    global _override
    _override = bool(enabled)


def resolve_fast(
    fast: Optional[bool], context: Optional[ExecutionContext] = None
) -> bool:
    """Normalize a per-call ``fast`` argument: ``None`` follows the switch."""
    return fast_paths_enabled(context) if fast is None else bool(fast)


def resolve_fast_for(
    fast: Optional[bool],
    num_vertices: int,
    context: Optional[ExecutionContext] = None,
) -> bool:
    """Per-call fast decision with the auto-mode size threshold applied.

    Explicit ``True``/``False`` win unconditionally.  ``None`` consults the
    process switch if set (``True`` behaving like auto mode), else the
    context's config mode: ``"off"`` → False, ``"on"`` → True, ``"auto"`` →
    ``num_vertices >= config.fast_paths_min_size``.
    """
    if fast is not None:
        return bool(fast)
    ctx = context if context is not None else get_context()
    min_size = ctx.config.fast_paths_min_size
    if _override is not None:
        return _override and num_vertices >= min_size
    mode = ctx.config.fast_paths
    if mode == "off":
        return False
    if mode == "on":
        return True
    return num_vertices >= min_size


@contextmanager
def fast_paths(enabled: bool) -> Iterator[None]:
    """Scoped override of the fast-path switch (restores the previous state).

    Restores to *no override* if none was active before, so a scoped block
    does not permanently detach the process from its config mode.
    """
    global _override
    previous = _override
    _override = bool(enabled)
    try:
        yield
    finally:
        _override = previous
