"""Sparse forward propagation over a wavefront schedule (the cone walk).

Model
-----
A greedy first-fit scan assigns every cell a start that is a pure function
of the ``(start, weight)`` intervals of its *predecessor* neighbors — the
neighbors visited earlier.  Any *level function* that reproduces the scan's
predecessor relation on adjacent cells therefore supports an incremental
walk: after a sparse weight delta, the set of cells whose start can change
is contained in the forward closure of the dirty cells along
predecessor→successor edges (the *dependency cone*), and it can be walked
level by level:

1. Seed the dirty cells into per-level buckets (a min-heap of pending
   levels keeps the walk ordered).
2. At each level, recompute the candidates with
   :func:`repro.kernels.wavefront.first_fit_intervals`, masking
   non-predecessor neighbors to ``UNCOLORED`` — exactly the operands the
   full kernel's scan sees for that cell, so recomputed values are
   bit-identical to a from-scratch recolor by induction over the scan
   order.
3. A candidate has *moved* when its start changed **or** its weight is
   dirty (successors observe the interval ``[start, start + weight)``, so
   a weight change propagates even with an unchanged start).  Push the
   successor neighbors of movers; untouched cells keep their old start.
4. The walk reaches its fixpoint when the heap drains — the cone's output
   has rejoined the old coloring and the remaining grid is never visited.

Level functions
---------------
Two flavors are supported:

*Proper levels* (``index_tiebreak=False``): adjacent cells never share a
level and predecessor ⇔ smaller level.  This covers the analytic GLL
levels ``i + 2j (+ 4k)`` and Kahn batch indices of an arbitrary order.
Levels are popped in increasing order and pushes only target strictly
greater levels, so no level is enqueued after it has been processed and
every cell is recomputed at most once.

*Levels with index tie-break* (``index_tiebreak=True``): adjacent cells may
share a level, in which case the smaller flat index precedes — the shape of
a stable ``argsort`` order such as GLF's ``(weight desc, index asc)``,
whose level function is simply ``-weight``.  Within a level the walk runs
mini-rounds: a candidate is *blocked* while a pending same-level
smaller-index neighbor exists, and a mover's same-level greater-index
neighbors (re-)join the pending set.  The within-level dependency relation
is acyclic by index, so the rounds terminate; a cell recomputed before a
same-level predecessor moved is simply recomputed again with the final
operands, preserving bit-identity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.kernels.wavefront import UNCOLORED, first_fit_intervals

__all__ = ["ConeResult", "propagate_cone"]

#: Extended-slot level for the out-of-grid pad cell: never a predecessor,
#: never a pushable successor.
_PAD_LEVEL = np.int64(1) << 60


@dataclass(frozen=True)
class ConeResult:
    """Outcome of one cone walk (``starts`` is the spliced full array)."""

    starts: np.ndarray  # flat int64, n cells — old starts outside the cone
    cells_recomputed: int  # first-fit evaluations performed
    cells_changed: int  # cells whose start differs from the old coloring
    levels_touched: int  # distinct wavefront levels visited
    spliced: bool  # fixpoint hit before the grid's last level


def propagate_cone(
    levels: np.ndarray,
    gather: Callable[[np.ndarray], np.ndarray],
    old_starts: np.ndarray,
    new_weights: np.ndarray,
    seeds: np.ndarray,
    dirty_mask: np.ndarray,
    budget: int,
    *,
    index_tiebreak: bool = False,
) -> Optional[ConeResult]:
    """Walk the dependency cone of ``seeds``; ``None`` once past ``budget``.

    Parameters
    ----------
    levels:
        ``(n,)`` wavefront level of every cell.  With
        ``index_tiebreak=False`` adjacent cells never share a level and
        smaller level means predecessor; with ``True`` adjacent same-level
        cells are ordered by flat index (stable-sort orders).
    gather:
        Maps a flat index array ``(b,)`` to its neighbor table ``(b, d)``
        of *extended* ids in ``[0, n]`` — ``n`` is the pad slot for
        out-of-grid neighbors.
    old_starts:
        ``(n,)`` starts of the coloring being patched (not modified).
    new_weights:
        ``(n,)`` post-delta weights.
    seeds:
        Flat indices whose start or predecessor set may have changed
        (at minimum the dirty cells; callers add order-shift seeds).
    dirty_mask:
        ``(n,)`` bool, true where the weight changed — dirty cells always
        count as moved (their interval end shifted even if the start held).
    budget:
        Maximum first-fit evaluations before giving up (the caller then
        falls back to a full recolor).
    """
    n = old_starts.size
    levels_ext = np.empty(n + 1, dtype=np.int64)
    levels_ext[:-1] = levels
    levels_ext[-1] = _PAD_LEVEL
    starts_ext = np.empty(n + 1, dtype=np.int64)
    starts_ext[:-1] = old_starts
    starts_ext[-1] = UNCOLORED
    weights_ext = np.empty(n + 1, dtype=np.int64)
    weights_ext[:-1] = new_weights
    weights_ext[-1] = 0

    buckets: dict[int, list[np.ndarray]] = {}
    heap: list[int] = []

    def push(idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        lv = levels_ext[idx]
        order = np.argsort(lv, kind="stable")
        idx, lv = idx[order], lv[order]
        bounds = np.flatnonzero(np.diff(lv)) + 1
        chunk_heads = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
        for pos, chunk in zip(chunk_heads, np.split(idx, bounds)):
            level = int(lv[pos])
            bucket = buckets.get(level)
            if bucket is None:
                buckets[level] = [chunk]
                heapq.heappush(heap, level)
            else:
                bucket.append(chunk)

    def recompute(cand: np.ndarray, level: int, rows: np.ndarray) -> np.ndarray:
        """First-fit ``cand`` against its predecessor neighbors; new starts."""
        pred = levels_ext[rows] < level
        if index_tiebreak:
            pred |= (levels_ext[rows] == level) & (rows < cand[:, None])
        return first_fit_intervals(
            np.where(pred, starts_ext[rows], UNCOLORED),
            np.where(pred, weights_ext[rows], 0),
            weights_ext[cand],
        )

    push(np.asarray(seeds, dtype=np.int64))

    # Pending-membership scratch for the tie-break rounds, allocated once:
    # entries are set for a level's pending cells and cleared as they are
    # computed, so the mask is all-False again when the level finishes.
    pending_ext = np.zeros(n + 1, dtype=bool) if index_tiebreak else None

    max_level = int(levels.max()) if n else 0
    recomputed = 0
    levels_touched = 0
    last_level = -1
    while heap:
        level = heapq.heappop(heap)
        pending = np.unique(np.concatenate(buckets.pop(level)))
        levels_touched += 1
        last_level = level
        # Mini-rounds within the level.  Without a tie-break the first round
        # computes everything and pushes only later levels, so the loop body
        # runs exactly once.
        if index_tiebreak:
            pending_ext[pending] = True
        later: list[np.ndarray] = []
        while pending.size:
            rows = gather(pending)
            if index_tiebreak:
                blocked = (
                    (levels_ext[rows] == level)
                    & (rows < pending[:, None])
                    & pending_ext[rows]
                ).any(axis=1)
                cand, rows = pending[~blocked], rows[~blocked]
                pending = pending[blocked]
                pending_ext[cand] = False
            else:
                cand, pending = pending, pending[:0]
            recomputed += cand.size
            if recomputed > budget:
                return None
            new = recompute(cand, level, rows)
            moved = (new != starts_ext[cand]) | dirty_mask[cand]
            starts_ext[cand] = new
            succ = rows[moved]
            keep_later = succ[(succ < n) & (levels_ext[succ] > level)]
            if keep_later.size:
                later.append(keep_later)
            if index_tiebreak:
                movers = cand[moved]
                rows_m = rows[moved]
                same = rows_m[
                    (rows_m < n)
                    & (levels_ext[rows_m] == level)
                    & (rows_m > movers[:, None])
                ]
                if same.size:
                    # Same-level successors (re-)enter this level's rounds;
                    # a too-early computation is redone with final operands.
                    pending = np.union1d(pending, same)
                    pending_ext[pending] = True
        if later:
            push(np.unique(np.concatenate(later)))

    flat = starts_ext[:-1]
    return ConeResult(
        starts=flat,
        cells_recomputed=recomputed,
        cells_changed=int(np.count_nonzero(flat != old_starts)),
        levels_touched=levels_touched,
        spliced=last_level < max_level,
    )
