"""Policy layer of the dirty-region recolor engine: :func:`recolor_grid`.

The cone walk (:mod:`repro.incremental.cone`) is order-agnostic; this module
decides *which* orders it may be applied to and when to give up:

Supported algorithms
--------------------
``GLL``
    Analytic levels ``i + 2j (+ 4k)`` and the offset-arithmetic neighbor
    gather — no substrate, no materialized adjacency.  Seeds are the dirty
    cells: the scan order is weight-independent.
``GZO``
    Kahn batch indices of the Morton order via the shared substrate.  The
    order is weight-independent, so the schedule is cached across deltas
    (one Kahn construction per shape) and seeds are again just the dirty
    cells.
``GLF``
    The heaviest-first order is a stable ``argsort(-weights)`` — i.e. the
    lexicographic order ``(weight desc, flat index asc)`` — so its level
    function is analytic too: ``level = -new_weight``, with the flat index
    breaking ties between adjacent equal-weight cells
    (``index_tiebreak=True`` in the cone walk).  No substrate, no argsort,
    no Kahn rebuild per delta.  A weight delta can only move dirty cells
    relative to their neighbors — two clean cells never swap — so seeds
    are the dirty cells **plus their neighbors** (whose predecessor sets
    may have gained or lost a dirty cell).

Everything else — GSL's cascading smallest-last removal can reorder distant
pairs, BD/BDP are not single-pass greedy scans — takes the always-correct
fallback: a full from-scratch recolor through the ordinary registry path,
still bit-identical by definition.  The fallback also engages when the cone
exceeds ``max_cone_fraction`` of the grid (``"cone-budget"``), at which
point one monolithic kernel pass is cheaper than continuing the walk.

Metrics (on the context registry): ``recolor_calls``, ``recolor_cone_cells``
(cells recomputed by cone walks), ``recolor_fallbacks``, and the
``recolor_splice_seconds`` latency histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Sequence, Union

import numpy as np

from repro.incremental.cone import ConeResult, propagate_cone
from repro.kernels.halo import gather_neighbors_2d, gather_neighbors_3d
from repro.kernels.substrate import analytic_levels, get_substrate

__all__ = [
    "SUPPORTED_ALGORITHMS",
    "RecolorOutcome",
    "RecolorValidationError",
    "full_recolor",
    "recolor_grid",
]

#: Algorithms whose scan the cone walk can replay incrementally.
SUPPORTED_ALGORITHMS = frozenset({"GLL", "GZO", "GLF"})


class RecolorValidationError(AssertionError):
    """``validate=True`` caught an incremental-vs-full divergence."""


@dataclass(frozen=True)
class RecolorOutcome:
    """What one :func:`recolor_grid` call did, with delta provenance."""

    starts: np.ndarray  # grid-shaped int64 starts of the patched coloring
    maxcolor: int
    algorithm: str
    mode: str  # "incremental" | "fallback"
    cells_dirty: int
    cells_recomputed: int  # 0 in fallback mode (the kernel touched all)
    cells_changed: int  # starts that differ from the base coloring
    levels_touched: int
    spliced: bool  # cone rejoined the old coloring before the last level
    fallback_reason: Optional[str]  # "unsupported-algorithm" | "cone-budget"
    elapsed: float

    def stats(self) -> dict:
        """The JSON-ready provenance block (facade, service, CLI)."""
        return {
            "mode": self.mode,
            "algorithm": self.algorithm,
            "cells_dirty": self.cells_dirty,
            "cells_recomputed": self.cells_recomputed,
            "cells_changed": self.cells_changed,
            "levels_touched": self.levels_touched,
            "spliced": self.spliced,
            "fallback_reason": self.fallback_reason,
            "elapsed": self.elapsed,
        }


def _as_grid(name: str, array, shape=None) -> np.ndarray:
    grid = np.ascontiguousarray(array, dtype=np.int64)
    if grid.ndim not in (2, 3):
        raise ValueError(f"{name} must be 2D or 3D, got {grid.ndim}D")
    if shape is not None and grid.shape != shape:
        raise ValueError(f"{name} shape {grid.shape} != weights shape {shape}")
    return grid


def _instance_for(weights: np.ndarray):
    from repro.core.problem import IVCInstance

    if weights.ndim == 2:
        return IVCInstance.from_grid_2d(weights, name="recolor")
    return IVCInstance.from_grid_3d(weights, name="recolor")


def full_recolor(weights: np.ndarray, algorithm: str, context=None) -> np.ndarray:
    """Grid-shaped starts of a from-scratch recolor (the ground truth)."""
    from repro.core.algorithms.registry import color_with

    weights = _as_grid("weights", weights)
    coloring = color_with(_instance_for(weights), algorithm, context=context)
    return np.asarray(coloring.starts, dtype=np.int64).reshape(weights.shape)


def _normalize_dirty(
    dirty: Union[np.ndarray, Sequence[int]], n: int
) -> np.ndarray:
    idx = np.unique(np.asarray(dirty, dtype=np.int64).ravel())
    if idx.size and (idx[0] < 0 or idx[-1] >= n):
        raise ValueError(f"dirty indices out of range [0, {n})")
    return idx


def _offset_gather(shape: tuple[int, ...]):
    """Offset-arithmetic neighbor gather closure for ``shape`` (pad = n)."""
    n = int(np.prod(shape))
    pad = np.int64(n)
    if len(shape) == 2:
        return lambda cand: gather_neighbors_2d(cand, shape, pad)
    return lambda cand: gather_neighbors_3d(cand, shape, pad)


def _levels_and_seeds(
    algorithm: str,
    weights: np.ndarray,
    dirty_idx: np.ndarray,
    context,
):
    """``(levels, gather, seeds, index_tiebreak)`` for the *new* order."""
    shape = weights.shape
    n = weights.size
    if algorithm == "GLL":
        return analytic_levels(shape), _offset_gather(shape), dirty_idx, False

    if algorithm == "GLF":
        gather = _offset_gather(shape)
        # A dirty cell may have moved across its neighbors in the weight
        # order, changing *their* predecessor sets without any start moving
        # yet — seed the neighbors too.  (Stable argsort: clean pairs never
        # swap, so no seed beyond the dirty 1-ring is ever needed.)
        seeds = dirty_idx
        if dirty_idx.size:
            ring = gather(dirty_idx).ravel()
            seeds = np.union1d(dirty_idx, ring[ring < n])
        return -weights.ravel(), gather, seeds, True

    from repro.core.orderings import zorder_order

    instance = _instance_for(weights)
    substrate = get_substrate(instance.geometry, context=context)
    verts, ptr = substrate.wavefront_for(zorder_order(instance))
    levels = np.empty(n, dtype=np.int64)
    levels[verts] = np.repeat(
        np.arange(len(ptr) - 1, dtype=np.int64), np.diff(ptr)
    )
    gather = lambda cand: substrate.nbr_table[cand]  # noqa: E731
    return levels, gather, dirty_idx, False


def recolor_grid(
    weights: np.ndarray,
    base_starts: np.ndarray,
    dirty: Union[np.ndarray, Sequence[int]],
    *,
    algorithm: str = "GLL",
    context=None,
    validate: Optional[bool] = None,
    max_cone_fraction: Optional[float] = None,
) -> RecolorOutcome:
    """Patch ``base_starts`` for a weight delta, bit-identical to full recolor.

    Parameters
    ----------
    weights:
        The grid's **new** weights (2D or 3D, positive int64).
    base_starts:
        The starts of a valid ``algorithm`` coloring of the *old* weights
        (same shape as ``weights``).
    dirty:
        Flat C-order indices of the cells whose weight changed.  Extra
        (actually-clean) indices are safe — they only widen the cone.
    algorithm:
        Registry algorithm name the base coloring was produced with.
    context:
        :class:`~repro.runtime.context.ExecutionContext`; defaults to the
        ambient one.  Supplies ``IncrementalConfig`` defaults and metrics.
    validate:
        Diff the result against a full recolor and raise
        :class:`RecolorValidationError` on divergence (default from
        ``context.config.incremental.validate``).
    max_cone_fraction:
        Cone budget override (default from config); the walk aborts into
        the fallback once more than this fraction of cells was recomputed.
    """
    from repro.runtime.context import get_context

    ctx = context if context is not None else get_context()
    cfg = ctx.config.incremental
    if validate is None:
        validate = cfg.validate
    fraction = (
        cfg.max_cone_fraction if max_cone_fraction is None else max_cone_fraction
    )
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"max_cone_fraction must be in (0, 1], got {fraction!r}")

    weights = _as_grid("weights", weights)
    base = _as_grid("base_starts", base_starts, weights.shape)
    n = weights.size
    dirty_idx = _normalize_dirty(dirty, n)

    ctx.metrics.counter("recolor_calls").inc()
    t0 = perf_counter()

    cone: Optional[ConeResult] = None
    fallback_reason: Optional[str] = None
    if not dirty_idx.size:
        pass  # empty delta: the base coloring is the answer for any algorithm
    elif algorithm not in SUPPORTED_ALGORITHMS:
        fallback_reason = "unsupported-algorithm"
    else:
        levels, gather, seeds, tiebreak = _levels_and_seeds(
            algorithm, weights, dirty_idx, ctx
        )
        dirty_mask = np.zeros(n, dtype=bool)
        dirty_mask[dirty_idx] = True
        budget = max(1, int(fraction * n))
        cone = propagate_cone(
            levels, gather, base.ravel(), weights.ravel(), seeds,
            dirty_mask, budget, index_tiebreak=tiebreak,
        )
        if cone is None:
            fallback_reason = "cone-budget"

    if fallback_reason is not None:
        ctx.metrics.counter("recolor_fallbacks").inc()
        new_starts = full_recolor(weights, algorithm, context=ctx)
        outcome = RecolorOutcome(
            starts=new_starts,
            maxcolor=int((new_starts + weights).max()) if n else 0,
            algorithm=algorithm,
            mode="fallback",
            cells_dirty=int(dirty_idx.size),
            cells_recomputed=0,
            cells_changed=int(np.count_nonzero(new_starts != base)),
            levels_touched=0,
            spliced=False,
            fallback_reason=fallback_reason,
            elapsed=perf_counter() - t0,
        )
    else:
        if cone is None:  # empty delta: the base coloring is the answer
            new_starts = base
            recomputed = changed = touched = 0
            spliced = True
        else:
            new_starts = cone.starts.reshape(weights.shape)
            recomputed = cone.cells_recomputed
            changed = cone.cells_changed
            touched = cone.levels_touched
            spliced = cone.spliced
        ctx.metrics.counter("recolor_cone_cells").inc(recomputed)
        outcome = RecolorOutcome(
            starts=new_starts,
            maxcolor=int((new_starts + weights).max()) if n else 0,
            algorithm=algorithm,
            mode="incremental",
            cells_dirty=int(dirty_idx.size),
            cells_recomputed=recomputed,
            cells_changed=changed,
            levels_touched=touched,
            spliced=spliced,
            fallback_reason=None,
            elapsed=perf_counter() - t0,
        )
    ctx.metrics.histogram("recolor_splice_seconds").observe(outcome.elapsed)

    if validate:
        truth = full_recolor(weights, algorithm, context=ctx)
        if not np.array_equal(outcome.starts, truth):
            diff = int(np.count_nonzero(outcome.starts != truth))
            raise RecolorValidationError(
                f"incremental {algorithm} recolor diverged from full recolor "
                f"on {diff} of {n} cells (mode={outcome.mode})"
            )
    return outcome
