"""Dirty-region recoloring: recompute only the wavefront cone a delta touches.

The paper's STKDE workload (§VII) is a sliding time window — events arrive,
a handful of voxel weights change, and historically the whole grid was
recolored from scratch.  Under a wavefront schedule that is wasteful: a
cell's start depends only on its *predecessor* neighbors (earlier wavefront
level), so a sparse weight delta can only perturb the forward dependency
cone of the dirty cells.  This subsystem walks exactly that cone:

* :mod:`repro.incremental.cone` — the sparse forward propagation: process
  wavefront levels in increasing order, recompute only candidate cells
  (dirty, or adjacent to a cell whose interval changed), and stop at the
  fixpoint where the recomputed starts rejoin the old coloring.
* :mod:`repro.incremental.engine` — :func:`recolor_grid`, the policy layer:
  algorithm support (GLL/GZO/GLF propagate; everything else falls back to
  an always-correct full recolor), the ``max_cone_fraction`` budget, the
  ``validate=`` diff mode, and per-context metrics.

Layering: this package may depend on ``repro.kernels`` and ``repro.core``
but never on ``repro.service`` or ``repro.tiling`` — ``repro/api.py`` stays
the only multi-subsystem composer (enforced by ``tools/check_layers.py``).
"""

from repro.incremental.engine import (
    SUPPORTED_ALGORITHMS,
    RecolorOutcome,
    RecolorValidationError,
    full_recolor,
    recolor_grid,
)

__all__ = [
    "SUPPORTED_ALGORITHMS",
    "RecolorOutcome",
    "RecolorValidationError",
    "full_recolor",
    "recolor_grid",
]
