"""Render paper-figure tables from harvest documents.

Each ``[[report]]`` entry in a spec names a *kind* registered here; a kind
is a builder ``(SuiteResult, harvest, ReportSpec) -> ReportDoc``.  The
``body`` of every doc is byte-identical to what the legacy
``benchmarks/bench_fig*.py`` scripts printed — the text builders live in
:mod:`repro.reports`; this module only wires harvest data into them and
attaches the SVG figures.

Output formats (``write_reports``): one raw ``<slug>.txt`` per doc (the
authoritative table, compared byte-for-byte by the differential CI test),
the SVG figures, plus combined ``report.md`` / ``report.html`` /
``report.json`` renderings of all docs.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence

from repro.campaign.artifacts import slug as _slug
from repro.campaign.errors import ReportError, SpecError
from repro.campaign.harvest import suite_result_from_harvest
from repro.campaign.spec import ReportSpec, spec_from_canonical
from repro.experiments import SuiteResult
from repro.reports import (
    extension_report,
    group_ratio_report,
    per_dataset_report,
    restrict_to_max_cells,
    scaling_report,
    suite_quality_report,
    suite_runtime_report,
    three_d_statistics_report,
    vs_optimal_report,
    bd_improvement_report,
)

__all__ = ["ReportDoc", "REPORTS", "render_reports", "write_reports", "validate_report_params"]

DEFAULT_DATASETS = ("Dengue", "FluAnimal", "Pollen", "PollenUS")


@dataclass(frozen=True)
class ReportDoc:
    """One rendered report: a text body plus optional SVG figures."""

    slug: str
    title: str
    kind: str
    body: str
    data: dict = field(default_factory=dict)
    svgs: tuple[tuple[str, str], ...] = ()  # (file slug, svg markup)


def _doc(
    spec: ReportSpec, body: str, result: SuiteResult, svgs=()
) -> ReportDoc:
    return ReportDoc(
        slug=_slug(spec.title),
        title=spec.title,
        kind=spec.kind,
        body=body,
        data={
            "instances": result.num_instances,
            "algorithms": list(result.algorithms),
        },
        svgs=tuple(svgs),
    )


# ------------------------------------------------------------------ builders


def _build_quality(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """Figure 5b/7b: performance profile + per-algorithm statistics table,
    optionally followed by the §VI.B (``bd_improvement``) or §VI.C
    (``stats_3d``) statistics blocks."""
    parts = [suite_quality_report(result, spec.params["bound_label"])]
    if spec.params.get("bd_improvement"):
        parts.append(bd_improvement_report(result))
    if spec.params.get("stats_3d"):
        parts.append(three_d_statistics_report(result))
    svgs = []
    svg_title = spec.params.get("svg_title")
    if svg_title:
        from repro.analysis.svgplot import profile_svg

        svgs.append((_slug(spec.title), profile_svg(result.profile(), title=svg_title)))
    return _doc(spec, "\n\n".join(parts), result, svgs)


def _build_runtime(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """Figure 5a/7a: total/mean/max runtime per algorithm."""
    body = suite_runtime_report(result)
    svgs = []
    svg_title = spec.params.get("svg_title")
    if svg_title:
        from repro.analysis.stats import runtime_summary
        from repro.analysis.svgplot import bars_svg

        summary = runtime_summary(result.times)
        svgs.append(
            (
                _slug(spec.params.get("svg_slug", spec.title)),
                bars_svg(
                    list(summary),
                    [s["total"] for s in summary.values()],
                    title=svg_title,
                ),
            )
        )
    return _doc(spec, body, result, svgs)


def _build_per_dataset(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """Figure 6/8: one performance profile per dataset."""
    datasets = tuple(spec.params.get("datasets", DEFAULT_DATASETS))
    body = per_dataset_report(result, datasets)
    svgs = []
    svg_title = spec.params.get("svg_title")
    svg_slug = spec.params.get("svg_slug")
    if svg_title and svg_slug:
        from repro.analysis.svgplot import profile_svg

        for name in datasets:
            idx = result.indices_by_metadata("dataset", name)
            if idx:
                svgs.append(
                    (
                        _slug(svg_slug.format(name=name)),
                        profile_svg(
                            result.subset(idx).profile(),
                            title=svg_title.format(name=name),
                        ),
                    )
                )
    return _doc(spec, body, result, svgs)


def _build_vs_optimal(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """Figure 9a/9b: profile against MILP-proven optima (§VI.D).

    The only builder that needs *real* instances (the MILP re-solves them),
    so it rebuilds the suite from the deterministic scenario spec embedded
    in the harvest and marries it to the harvested records.
    """
    from repro.campaign.plan import compile_plan
    from repro.engine import RunRecord
    from repro.experiments import suite_result_from_records

    plan = compile_plan(spec_from_canonical(harvest["spec"]))
    names = [inst["name"] for inst in harvest["instances"]]
    if [inst.name for inst in plan.instances] != names:
        raise ReportError(
            f"report {spec.title!r}: harvest instances do not match its "
            "embedded spec (scenario builders changed since the run?) — "
            "re-run the campaign before the MILP comparison"
        )
    records = [RunRecord.from_json(rec) for rec in harvest["records"]]
    full = suite_result_from_records(
        list(plan.instances), harvest["algorithms"], records, on_error="record"
    )
    max_cells = spec.params.get("max_cells")
    small = restrict_to_max_cells(full, int(max_cells)) if max_cells else full
    body, profile = vs_optimal_report(
        small, spec.params["label"], time_limit=float(spec.params.get("time_limit", 5.0))
    )
    svgs = []
    svg_title = spec.params.get("svg_title")
    if svg_title:
        from repro.analysis.svgplot import profile_svg

        svgs.append((_slug(spec.title), profile_svg(profile, title=svg_title)))
    return _doc(spec, body, small, svgs)


def _build_extensions(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """The extension-heuristics table (profile + ratio/runtime rows)."""
    return _doc(spec, extension_report(result), result)


def _build_group_ratio(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """Per-metadata-group total-colors/lower-bound ratio table (the
    weight-regime ablation)."""
    note = spec.params.get("note", "")
    body = group_ratio_report(
        result,
        spec.params.get("group_key", "regime"),
        note=f"\n\n{note}" if note else "",
    )
    return _doc(spec, body, result)


def _build_scaling(result: SuiteResult, harvest: dict, spec: ReportSpec) -> ReportDoc:
    """Runtime growth per grid-side doubling (the complexity-claim table)."""
    note = spec.params.get("note", "")
    body = scaling_report(result, note=f"\n\n{note}" if note else "")
    return _doc(spec, body, result)


#: kind -> builder.
REPORTS: dict[str, Callable[[SuiteResult, dict, ReportSpec], ReportDoc]] = {
    "quality": _build_quality,
    "runtime": _build_runtime,
    "per_dataset": _build_per_dataset,
    "vs_optimal": _build_vs_optimal,
    "extensions": _build_extensions,
    "group_ratio": _build_group_ratio,
    "scaling": _build_scaling,
}

_KNOWN_PARAMS: dict[str, set[str]] = {
    "quality": {"bound_label", "bd_improvement", "stats_3d", "svg_title"},
    "runtime": {"svg_slug", "svg_title"},
    "per_dataset": {"datasets", "svg_slug", "svg_title"},
    "vs_optimal": {"label", "max_cells", "time_limit", "svg_title"},
    "extensions": set(),
    "group_ratio": {"group_key", "note"},
    "scaling": {"note"},
}

_REQUIRED_PARAMS: dict[str, set[str]] = {
    "quality": {"bound_label"},
    "vs_optimal": {"label"},
}


def validate_report_params(kind: str, params: Mapping, ctx: Mapping) -> None:
    """Spec-time validation of a ``[[report]]`` entry's parameters."""
    known = _KNOWN_PARAMS[kind]
    for key in params:
        if key not in known:
            raise SpecError(
                f"report kind {kind!r} has no parameter {key!r} "
                f"(accepts: {', '.join(sorted(known)) or 'none'})",
                key=f"report.{key}",
                **ctx,
            )
    for key in _REQUIRED_PARAMS.get(kind, ()):
        if key not in params:
            raise SpecError(
                f"report kind {kind!r} requires parameter {key!r}",
                key=f"report.{key}",
                **ctx,
            )


# ----------------------------------------------------------------- rendering


def render_reports(
    harvest: dict, reports: Optional[Sequence[ReportSpec]] = None
) -> list[ReportDoc]:
    """Build every report of a harvest (default: the spec's own list)."""
    if reports is None:
        reports = spec_from_canonical(harvest["spec"]).reports
    result = suite_result_from_harvest(harvest)
    docs: list[ReportDoc] = []
    seen: set[str] = set()
    for spec in reports:
        doc = REPORTS[spec.kind](result, harvest, spec)
        if doc.slug in seen:
            raise ReportError(
                f"duplicate report slug {doc.slug!r} — give the entries "
                "distinct titles"
            )
        seen.add(doc.slug)
        docs.append(doc)
    return docs


def write_reports(
    docs: Sequence[ReportDoc],
    out_dir: str | Path,
    formats: Sequence[str] = ("txt", "svg", "md", "html", "json"),
    *,
    campaign: str = "",
) -> list[Path]:
    """Persist rendered docs under ``out_dir`` in the requested formats."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    if "txt" in formats:
        for doc in docs:
            path = out / f"{doc.slug}.txt"
            path.write_text(doc.body + "\n")
            written.append(path)
    if "svg" in formats:
        for doc in docs:
            for svg_slug, svg in doc.svgs:
                path = out / f"{svg_slug}.svg"
                path.write_text(svg)
                written.append(path)
    if "md" in formats:
        lines = [f"# Campaign report — {campaign}" if campaign else "# Campaign report", ""]
        for doc in docs:
            lines += [f"## {doc.title}", "", "```text", doc.body, "```", ""]
        path = out / "report.md"
        path.write_text("\n".join(lines))
        written.append(path)
    if "html" in formats:
        parts = [
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(campaign or 'campaign report')}</title></head><body>",
            f"<h1>{_html.escape(campaign or 'campaign report')}</h1>",
        ]
        for doc in docs:
            parts.append(f"<h2>{_html.escape(doc.title)}</h2>")
            parts.append(f"<pre>{_html.escape(doc.body)}</pre>")
            for svg_slug, svg in doc.svgs:
                parts.append(svg)
        parts.append("</body></html>")
        path = out / "report.html"
        path.write_text("\n".join(parts))
        written.append(path)
    if "json" in formats:
        payload = {
            "campaign": campaign,
            "reports": [
                {
                    "slug": doc.slug,
                    "title": doc.title,
                    "kind": doc.kind,
                    "body": doc.body,
                    "data": doc.data,
                    "svgs": [s for s, _ in doc.svgs],
                }
                for doc in docs
            ],
        }
        path = out / "report.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written
