"""Compile a validated spec into a deterministic run plan.

A :class:`RunPlan` is the bridge between a declarative
:class:`~repro.campaign.spec.CampaignSpec` and the batch engine: the full
instance list (matrix axes expanded into scenario variants, cross-product
in declaration order) plus the algorithm set — i.e. exactly the
(instance × algorithm) grid :func:`repro.engine.run_grid` executes.
Compilation is pure: the same spec always compiles to the same plan, and
the plan's identity is the spec's
:meth:`~repro.campaign.spec.CampaignSpec.plan_fingerprint`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product

from repro.campaign.errors import PlanError
from repro.campaign.scenarios import build_instances
from repro.campaign.spec import CampaignSpec
from repro.core.problem import IVCInstance
from repro.experiments import InstanceHandle

__all__ = ["RunPlan", "compile_plan", "expand_matrix"]


def expand_matrix(matrix: dict) -> list[dict]:
    """Cross-product of matrix axes, in declaration order (last axis
    fastest).  An empty matrix yields the single empty variant."""
    if not matrix:
        return [{}]
    axes = list(matrix)
    return [dict(zip(axes, combo)) for combo in product(*(matrix[a] for a in axes))]


@dataclass(frozen=True)
class RunPlan:
    """The compiled (instance × algorithm) grid of one campaign."""

    spec: CampaignSpec
    instances: tuple[IVCInstance, ...]
    algorithms: tuple[str, ...]
    variants: tuple[dict, ...]

    @property
    def num_cells(self) -> int:
        return len(self.instances) * len(self.algorithms)

    def fingerprint(self) -> str:
        """The plan identity (see ``CampaignSpec.plan_fingerprint``)."""
        return self.spec.plan_fingerprint()

    def handles(self) -> list[InstanceHandle]:
        """Lightweight instance stand-ins for the manifest / harvest."""
        return [
            InstanceHandle(
                name=inst.name,
                shape=(
                    tuple(inst.geometry.shape)
                    if inst.geometry is not None
                    else None
                ),
                num_vertices=inst.num_vertices,
                metadata=dict(inst.metadata),
            )
            for inst in self.instances
        ]


def _variant_tag(variant: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in variant.items())


def compile_plan(spec: CampaignSpec) -> RunPlan:
    """Expand the spec's matrix and build every scenario variant.

    Raises :class:`PlanError` when the plan is empty or instance names
    collide (names key ``--resume`` adoption, so they must be unique).
    """
    variants = expand_matrix(spec.matrix)
    instances: list[IVCInstance] = []
    for variant in variants:
        built = build_instances(spec.scenario, variant)
        if len(variants) > 1:
            tag = _variant_tag(variant)
            built = [
                replace(inst, name=f"{inst.name}[{tag}]") for inst in built
            ]
        instances.extend(built)
    if not instances:
        raise PlanError(
            f"campaign {spec.name!r}: scenario "
            f"{spec.scenario.get('kind')!r} produced no instances "
            "(parameters too restrictive?)"
        )
    seen: dict[str, int] = {}
    for i, inst in enumerate(instances):
        if inst.name in seen:
            raise PlanError(
                f"campaign {spec.name!r}: duplicate instance name "
                f"{inst.name!r} (positions {seen[inst.name]} and {i}) — "
                "resume adoption needs unique names; give scenario variants "
                "distinct parameters"
            )
        seen[inst.name] = i
    return RunPlan(
        spec=spec,
        instances=tuple(instances),
        algorithms=tuple(spec.algorithms),
        variants=tuple(variants),
    )
