"""Typed errors for the campaign subsystem.

Every failure mode a campaign can hit — malformed spec, unknown scenario or
report kind, an unrunnable plan, an incomplete harvest — raises a distinct
class below, each carrying enough context (spec path, offending key,
did-you-mean suggestions) that the CLI can print the problem without a
traceback.  All of them derive from :class:`CampaignError`, so callers that
only care about "the campaign failed" catch one type.
"""

from __future__ import annotations

import difflib
from pathlib import Path
from typing import Iterable, Optional

__all__ = [
    "CampaignError",
    "SpecError",
    "UnknownScenarioError",
    "UnknownReportError",
    "PlanError",
    "ResumeMismatchError",
    "HarvestError",
    "ReportError",
]


class CampaignError(Exception):
    """Base class for every campaign failure."""


class SpecError(CampaignError):
    """A campaign spec failed to parse or validate.

    ``path`` is the spec file (when known) and ``key`` the offending TOML
    key in dotted form (``"scenario.kind"``), both folded into the message.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[Path | str] = None,
        key: Optional[str] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.key = key
        prefix = ""
        if self.path is not None:
            prefix += f"{self.path}: "
        if key:
            prefix += f"[{key}] "
        super().__init__(prefix + message)


def _suggest(name: str, known: Iterable[str]) -> str:
    close = difflib.get_close_matches(name, list(known), n=1)
    return f" — did you mean {close[0]!r}?" if close else ""


class UnknownScenarioError(SpecError):
    """``scenario.kind`` names no registered scenario builder."""

    def __init__(self, kind: str, known: Iterable[str], **ctx) -> None:
        known = sorted(known)
        super().__init__(
            f"unknown scenario kind {kind!r}{_suggest(kind, known)} "
            f"(known: {', '.join(known)})",
            key="scenario.kind",
            **ctx,
        )
        self.kind = kind


class UnknownReportError(SpecError):
    """A ``[[report]]`` entry names no registered report builder."""

    def __init__(self, kind: str, known: Iterable[str], **ctx) -> None:
        known = sorted(known)
        super().__init__(
            f"unknown report kind {kind!r}{_suggest(kind, known)} "
            f"(known: {', '.join(known)})",
            key="report.kind",
            **ctx,
        )
        self.kind = kind


class PlanError(CampaignError):
    """A validated spec still cannot be compiled into a runnable plan
    (duplicate instance names, an empty matrix axis product, ...)."""


class ResumeMismatchError(PlanError):
    """``--resume`` pointed at an artifact dir built from a different plan.

    Adopting records across plans would silently mix experiments; the run
    refuses instead.  Carries both fingerprints for the error message.
    """

    def __init__(self, out_dir: Path, expected: str, found: str) -> None:
        self.out_dir = Path(out_dir)
        self.expected = expected
        self.found = found
        super().__init__(
            f"{out_dir}: artifact dir was created from a different plan "
            f"(manifest plan fingerprint {found[:12]}…, this spec compiles "
            f"to {expected[:12]}…) — use a fresh --out dir, or rerun the "
            "original spec"
        )


class HarvestError(CampaignError):
    """The artifact dir cannot be harvested (missing manifest, missing
    cells, torn logs beyond repair)."""


class ReportError(CampaignError):
    """Report rendering failed (duplicate slugs, unusable harvest data)."""
