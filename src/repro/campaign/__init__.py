"""Declarative experiment campaigns: ``spec → plan → run → harvest → report``.

The campaign subsystem (the Grond-style experiment shape adapted to this
repo) turns the paper's figure experiments into data:

* a **spec** (:mod:`~repro.campaign.spec`) is one TOML file declaring
  scenario × matrix × algorithms × runtime overrides × reports;
* :func:`compile_plan` expands it into a deterministic
  (instance × algorithm) grid;
* :func:`run_campaign` (:mod:`~repro.campaign.runner`) executes the grid
  through the crash-supervised batch engine into an artifact directory
  with JSONL run logs, spec/plan/git fingerprints, and ``--resume``;
* :func:`harvest_campaign` (:mod:`~repro.campaign.harvest`) folds the logs
  and merged metrics into one versioned ``harvest.json``;
* :func:`render_reports` (:mod:`~repro.campaign.report`) renders the
  paper's figure tables (txt/SVG/Markdown/HTML/JSON) from a harvest.

The committed specs live under ``campaigns/`` at the repo root; the CLI
verbs are ``stencil-ivc campaign plan|run|harvest|report``.
"""

from repro.campaign.artifacts import artifact_root, bench_dir, campaign_dir, slug
from repro.campaign.errors import (
    CampaignError,
    HarvestError,
    PlanError,
    ReportError,
    ResumeMismatchError,
    SpecError,
    UnknownReportError,
    UnknownScenarioError,
)
from repro.campaign.harvest import (
    harvest_campaign,
    harvest_digest,
    load_harvest,
    suite_result_from_harvest,
)
from repro.campaign.plan import RunPlan, compile_plan
from repro.campaign.report import (
    REPORTS,
    ReportDoc,
    render_reports,
    write_reports,
)
from repro.campaign.runner import CampaignRunResult, read_manifest, run_campaign
from repro.campaign.scenarios import SCENARIOS
from repro.campaign.spec import (
    CampaignSpec,
    ReportSpec,
    load_spec,
    parse_spec,
    spec_from_canonical,
)

__all__ = [
    "CampaignError",
    "CampaignRunResult",
    "CampaignSpec",
    "HarvestError",
    "PlanError",
    "REPORTS",
    "ReportDoc",
    "ReportError",
    "ReportSpec",
    "ResumeMismatchError",
    "RunPlan",
    "SCENARIOS",
    "SpecError",
    "UnknownReportError",
    "UnknownScenarioError",
    "artifact_root",
    "bench_dir",
    "campaign_dir",
    "compile_plan",
    "harvest_campaign",
    "harvest_digest",
    "load_harvest",
    "load_spec",
    "parse_spec",
    "read_manifest",
    "render_reports",
    "run_campaign",
    "slug",
    "spec_from_canonical",
    "suite_result_from_harvest",
    "write_reports",
]
