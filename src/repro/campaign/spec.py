"""Campaign spec: declarative TOML experiment descriptions.

A campaign spec is one TOML file declaring *what* to run — scenario,
algorithm set, matrix axes, runtime overrides — and *what to render* from
the results.  The schema::

    include = ["_base_2d.toml"]        # merged first, this file wins

    [campaign]
    name = "fig5-2d"                   # required; artifact dir name
    version = 1                        # spec schema version (always 1)
    description = "Figures 5a/5b"

    [scenario]
    kind = "suite2d"                   # registered builder (scenarios.py)
    scale = 1.0                        # …builder keyword parameters

    [matrix]                           # optional cross-product axes
    algorithms = ["GLL", "GZO", ...]   # special axis: registry names
    seed = [0, 1, 2]                   # any other key: a scenario parameter

    [runtime]                          # RuntimeConfig field overrides
    max_cell_retries = 2

    [run]                              # engine execution knobs
    validate = true
    cell_timeout = 30.0
    jobs = 1

    [[report]]                         # rendered by `campaign report`
    kind = "quality"
    title = "fig5b 2d performance profile"
    bound_label = "K4 LB"

Validation is eager and typed: every schema problem raises
:class:`~repro.campaign.errors.SpecError` (or a subclass with a
did-you-mean suggestion) naming the file and the dotted key.  A validated
:class:`CampaignSpec` is canonicalizable to a JSON document with two stable
blake2b fingerprints: :meth:`CampaignSpec.fingerprint` covers the whole
spec, :meth:`CampaignSpec.plan_fingerprint` only the parts that determine
the run plan (scenario × matrix × algorithms × runtime × run) — specs that
differ only in name, description, or report list share a plan fingerprint
and therefore can adopt each other's run artifacts via ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    import tomli as tomllib  # type: ignore[no-redef]

from repro.campaign.errors import SpecError, UnknownReportError
from repro.runtime.config import RuntimeConfig

__all__ = [
    "CampaignSpec",
    "ReportSpec",
    "load_spec",
    "parse_spec",
    "spec_from_canonical",
]

SPEC_VERSION = 1

_TOP_LEVEL_KEYS = {"include", "campaign", "scenario", "matrix", "runtime", "run", "report"}
_RUN_KEYS = {"validate", "cell_timeout", "jobs"}


@dataclass(frozen=True)
class ReportSpec:
    """One ``[[report]]`` entry: a registered kind plus its parameters."""

    kind: str
    title: str
    params: dict = field(default_factory=dict)

    def canonical(self) -> dict:
        return {"kind": self.kind, "title": self.title, **self.params}


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: everything needed to plan, run, and report."""

    name: str
    description: str = ""
    version: int = SPEC_VERSION
    scenario: dict = field(default_factory=dict)  # includes "kind"
    matrix: dict = field(default_factory=dict)  # axis -> list (no algorithms)
    algorithms: tuple[str, ...] = ()
    runtime: dict = field(default_factory=dict)
    run: dict = field(default_factory=dict)
    reports: tuple[ReportSpec, ...] = ()
    source: Optional[Path] = None

    # ---------------------------------------------------------- canonical
    def canonical(self) -> dict:
        """The full spec as a canonical JSON-serializable dict."""
        return {
            "campaign": {
                "name": self.name,
                "version": self.version,
                "description": self.description,
            },
            **self.plan_canonical(),
            "reports": [r.canonical() for r in self.reports],
        }

    def plan_canonical(self) -> dict:
        """The plan-determining subset: scenario, matrix, algorithms,
        runtime, run — name/description/reports deliberately excluded."""
        return {
            "scenario": self.scenario,
            "matrix": self.matrix,
            "algorithms": list(self.algorithms),
            "runtime": self.runtime,
            "run": self.run,
        }

    def fingerprint(self) -> str:
        """Stable hex digest of the whole spec."""
        return _digest(self.canonical())

    def plan_fingerprint(self) -> str:
        """Stable hex digest of the plan-determining subset.

        Two specs with equal plan fingerprints compile to the same run plan
        and may share one artifact dir through ``--resume``.
        """
        return _digest(self.plan_canonical())

    # ---------------------------------------------------------- derivation
    def with_scenario(self, **params) -> "CampaignSpec":
        """A copy with scenario parameters overridden (revalidated).

        The benchmark harness uses this to apply ``REPRO_BENCH_*`` scaling
        knobs on top of a committed spec; passing the spec's own defaults
        yields an identical spec (and identical fingerprints).
        """
        raw = {
            "campaign": {
                "name": self.name,
                "version": self.version,
                "description": self.description,
            },
            "scenario": {**self.scenario, **params},
            "matrix": {**self.matrix, "algorithms": list(self.algorithms)},
            "runtime": dict(self.runtime),
            "run": dict(self.run),
            "report": [r.canonical() for r in self.reports],
        }
        return parse_spec(raw, source=self.source)


def _digest(obj: dict) -> str:
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def spec_from_canonical(canonical: Mapping[str, Any]) -> CampaignSpec:
    """Rehydrate a spec from its :meth:`CampaignSpec.canonical` form.

    Harvest artifacts embed the canonical spec; report builders that must
    rebuild real instances (the MILP comparison) parse it back through the
    same validation as a TOML file.
    """
    raw = {
        "campaign": dict(canonical["campaign"]),
        "scenario": dict(canonical["scenario"]),
        "matrix": {**canonical["matrix"], "algorithms": list(canonical["algorithms"])},
        "runtime": dict(canonical["runtime"]),
        "run": dict(canonical["run"]),
        "report": [dict(r) for r in canonical.get("reports", [])],
    }
    return parse_spec(raw)


# ------------------------------------------------------------------ loading


def load_spec(path: str | Path) -> CampaignSpec:
    """Load, include-merge, and validate a TOML campaign spec."""
    path = Path(path)
    raw = _load_raw(path, seen=())
    return parse_spec(raw, source=path)


def _load_raw(path: Path, seen: tuple[Path, ...]) -> dict:
    resolved = path.resolve()
    if resolved in seen:
        cycle = " -> ".join(str(p) for p in (*seen, resolved))
        raise SpecError(f"include cycle: {cycle}", path=path, key="include")
    if not path.is_file():
        raise SpecError("spec file not found", path=path)
    try:
        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    except tomllib.TOMLDecodeError as exc:
        raise SpecError(f"invalid TOML: {exc}", path=path) from exc

    includes = doc.pop("include", [])
    if isinstance(includes, str):
        includes = [includes]
    if not isinstance(includes, list) or not all(isinstance(i, str) for i in includes):
        raise SpecError("include must be a list of paths", path=path, key="include")

    merged: dict = {}
    for inc in includes:
        base = _load_raw(path.parent / inc, seen=(*seen, resolved))
        merged = _merge(merged, base)
    return _merge(merged, doc)


def _merge(base: dict, child: dict) -> dict:
    """Spec merge: tables merge key-by-key (child wins), everything else —
    scalars and the ``[[report]]`` list included — is replaced outright."""
    out = dict(base)
    for key, value in child.items():
        if isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = {**out[key], **value}
        else:
            out[key] = value
    return out


# --------------------------------------------------------------- validation


def parse_spec(raw: Mapping[str, Any], source: Optional[Path] = None) -> CampaignSpec:
    """Validate a merged raw spec dict into a :class:`CampaignSpec`."""
    ctx = {"path": source}
    unknown = set(raw) - _TOP_LEVEL_KEYS
    if unknown:
        raise SpecError(
            f"unknown top-level key(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_TOP_LEVEL_KEYS))})",
            **ctx,
        )

    campaign = _table(raw, "campaign", ctx, required=True)
    name = campaign.get("name")
    if not isinstance(name, str) or not name:
        raise SpecError("campaign.name is required (a non-empty string)", key="campaign.name", **ctx)
    if not all(c.isalnum() or c in "._-" for c in name):
        raise SpecError(
            f"campaign.name {name!r} must use only letters, digits, '.', '_', '-' "
            "(it names the artifact directory)",
            key="campaign.name",
            **ctx,
        )
    version = campaign.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(
            f"unsupported spec version {version!r} (this build reads version {SPEC_VERSION})",
            key="campaign.version",
            **ctx,
        )
    description = campaign.get("description", "")
    if not isinstance(description, str):
        raise SpecError("campaign.description must be a string", key="campaign.description", **ctx)
    extra = set(campaign) - {"name", "version", "description"}
    if extra:
        raise SpecError(
            f"unknown campaign key(s): {', '.join(sorted(extra))}", key="campaign", **ctx
        )

    scenario = _table(raw, "scenario", ctx, required=True)
    kind = scenario.get("kind")
    if not isinstance(kind, str) or not kind:
        raise SpecError("scenario.kind is required", key="scenario.kind", **ctx)
    _check_json_values(scenario, "scenario", ctx)

    matrix_raw = _table(raw, "matrix", ctx)
    algorithms: Sequence[str] = matrix_raw.pop("algorithms", None) or _default_algorithms()
    matrix: dict = {}
    for axis, values in matrix_raw.items():
        if not isinstance(values, list) or not values:
            raise SpecError(
                f"matrix axis {axis!r} must be a non-empty list", key=f"matrix.{axis}", **ctx
            )
        matrix[axis] = values
    _check_json_values(matrix, "matrix", ctx)
    if not isinstance(algorithms, (list, tuple)) or not all(
        isinstance(a, str) for a in algorithms
    ):
        raise SpecError(
            "matrix.algorithms must be a list of algorithm names",
            key="matrix.algorithms",
            **ctx,
        )
    _validate_algorithms(algorithms, ctx)

    # scenario params (and matrix axes, which merge into them per variant)
    # must match the builder's keyword signature.
    from repro.campaign.scenarios import validate_scenario_params

    validate_scenario_params(kind, scenario, matrix, ctx)

    runtime = _table(raw, "runtime", ctx)
    _check_json_values(runtime, "runtime", ctx)
    try:
        RuntimeConfig().with_overrides(**runtime)
    except TypeError as exc:
        fields = ", ".join(sorted(RuntimeConfig.__dataclass_fields__))
        raise SpecError(
            f"invalid runtime override ({exc}); RuntimeConfig fields: {fields}",
            key="runtime",
            **ctx,
        ) from exc
    except (ValueError,) as exc:
        raise SpecError(f"invalid runtime override value: {exc}", key="runtime", **ctx) from exc

    run = _table(raw, "run", ctx)
    unknown = set(run) - _RUN_KEYS
    if unknown:
        raise SpecError(
            f"unknown run key(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(_RUN_KEYS))})",
            key="run",
            **ctx,
        )
    if "validate" in run and not isinstance(run["validate"], bool):
        raise SpecError("run.validate must be a boolean", key="run.validate", **ctx)
    if "cell_timeout" in run and not isinstance(run["cell_timeout"], (int, float)):
        raise SpecError("run.cell_timeout must be a number", key="run.cell_timeout", **ctx)
    if "jobs" in run and not isinstance(run["jobs"], int):
        raise SpecError("run.jobs must be an integer", key="run.jobs", **ctx)

    reports_raw = raw.get("report", [])
    if isinstance(reports_raw, dict):
        reports_raw = [reports_raw]
    if not isinstance(reports_raw, list):
        raise SpecError("report must be an array of tables ([[report]])", key="report", **ctx)
    reports = tuple(_parse_report(entry, i, ctx) for i, entry in enumerate(reports_raw))

    return CampaignSpec(
        name=name,
        description=description,
        version=int(version),
        scenario=dict(scenario),
        matrix=matrix,
        algorithms=tuple(algorithms),
        runtime=dict(runtime),
        run=dict(run),
        reports=reports,
        source=source,
    )


def _table(raw: Mapping[str, Any], key: str, ctx: dict, required: bool = False) -> dict:
    value = raw.get(key)
    if value is None:
        if required:
            raise SpecError(f"missing required [{key}] table", key=key, **ctx)
        return {}
    if not isinstance(value, dict):
        raise SpecError(f"[{key}] must be a table", key=key, **ctx)
    return dict(value)


def _check_json_values(table: Mapping[str, Any], where: str, ctx: dict) -> None:
    for key, value in table.items():
        if not _is_json(value):
            raise SpecError(
                f"value of type {type(value).__name__} is not supported "
                "(use strings, numbers, booleans, lists, or tables)",
                key=f"{where}.{key}",
                **ctx,
            )


def _is_json(value: Any) -> bool:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return True
    if isinstance(value, list):
        return all(_is_json(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and _is_json(v) for k, v in value.items())
    return False


def _default_algorithms() -> list[str]:
    from repro.core.algorithms.registry import ALGORITHMS

    return list(ALGORITHMS)


def _validate_algorithms(names: Sequence[str], ctx: dict) -> None:
    from repro.core.algorithms.registry import EXTENDED_ALGORITHMS

    known = list(EXTENDED_ALGORITHMS)
    for name in names:
        if name not in known:
            import difflib

            close = difflib.get_close_matches(name, known, n=1)
            hint = f" — did you mean {close[0]!r}?" if close else ""
            raise SpecError(
                f"unknown algorithm {name!r}{hint} (known: {', '.join(known)})",
                key="matrix.algorithms",
                **ctx,
            )
    if len(set(names)) != len(names):
        raise SpecError("matrix.algorithms contains duplicates", key="matrix.algorithms", **ctx)


def _parse_report(entry: Any, index: int, ctx: dict) -> ReportSpec:
    if not isinstance(entry, dict):
        raise SpecError(f"report entry {index} must be a table", key="report", **ctx)
    entry = dict(entry)
    kind = entry.pop("kind", None)
    if not isinstance(kind, str) or not kind:
        raise SpecError(f"report entry {index} needs a kind", key="report.kind", **ctx)

    from repro.campaign.report import REPORTS, validate_report_params

    if kind not in REPORTS:
        raise UnknownReportError(kind, REPORTS, **ctx)
    title = entry.pop("title", kind)
    if not isinstance(title, str) or not title:
        raise SpecError(f"report entry {index} title must be a string", key="report.title", **ctx)
    _check_json_values(entry, f"report[{index}]", ctx)
    validate_report_params(kind, entry, ctx)
    return ReportSpec(kind=kind, title=title, params=entry)
