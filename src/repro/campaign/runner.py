"""Execute a compiled campaign plan through the supervised batch engine.

One ``run_campaign`` call is one *session* against an artifact directory::

    <out>/
      manifest.json     # written once: spec + fingerprints + plan inventory
      runs.jsonl        # engine per-cell RunRecord stream (append-only)
      sessions.jsonl    # one line per session: counters + metrics snapshot
      harvest.json      # written by `campaign harvest`
      reports/          # written by `campaign report`

Sessions compose through the engine's resume adoption: ``resume=True``
replays ``runs.jsonl`` as ``resume_from``, so completed (``ok``/``timeout``)
cells are adopted verbatim — including their measured ``elapsed`` — and only
missing or errored cells execute.  A SIGKILLed run therefore continues
exactly where it died, and a fully-complete artifact re-runs as a no-op.
Resuming refuses artifact dirs created from a *different* plan
(:class:`~repro.campaign.errors.ResumeMismatchError` — fingerprints must
match), which is also what lets several specs that share a plan (the figure
specs all including one base) share a single artifact dir safely.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from repro.campaign.artifacts import campaign_dir
from repro.campaign.errors import CampaignError, HarvestError, ResumeMismatchError
from repro.campaign.plan import RunPlan, compile_plan
from repro.campaign.spec import CampaignSpec
from repro.engine import run_grid
from repro.engine.runlog import read_run_log
from repro.runtime.context import ExecutionContext, get_context

__all__ = ["CampaignRunResult", "run_campaign", "read_manifest", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1


@dataclass
class CampaignRunResult:
    """What one campaign session produced."""

    out_dir: Path
    plan: RunPlan
    records: list  # GridResult (list[RunRecord] + supervision counters)
    session: dict  # the sessions.jsonl line this session appended


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _git_info(anchor: Optional[Path]) -> Optional[dict]:
    """Best-effort git provenance: commit hash + dirty flag (None outside
    a repo or without git)."""
    cwd = anchor if anchor is not None and anchor.is_dir() else Path.cwd()
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if commit.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        return {
            "commit": commit.stdout.strip(),
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return None


def _handle_json(handle) -> dict:
    return {
        "name": handle.name,
        "shape": list(handle.shape) if handle.shape is not None else None,
        "num_vertices": handle.num_vertices,
        "metadata": handle.metadata,
    }


def read_manifest(out_dir: str | Path) -> dict:
    """Load and version-check an artifact dir's manifest."""
    path = Path(out_dir) / "manifest.json"
    if not path.is_file():
        raise HarvestError(
            f"{out_dir}: no manifest.json — not a campaign artifact dir "
            "(run `stencil-ivc campaign run` first)"
        )
    manifest = json.loads(path.read_text())
    version = manifest.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise HarvestError(
            f"{path}: manifest version {version!r} unsupported "
            f"(this build reads {MANIFEST_VERSION})"
        )
    return manifest


def _compact_run_log(runs_path: Path) -> None:
    """Drop a torn trailing line before appending to a resumed log.

    A SIGKILL mid-append leaves a truncated last line, which
    :func:`~repro.engine.runlog.read_run_log` tolerates *only at the end of
    the file* — appending a new session after it would turn the tear into
    mid-file corruption.  Rewriting the clean prefix atomically keeps the
    log strict-readable for harvests while losing only the record that
    never finished writing (its cell re-executes)."""
    records = read_run_log(runs_path)
    text = "".join(json.dumps(r.to_json()) + "\n" for r in records)
    if text != runs_path.read_text():
        tmp = runs_path.with_suffix(".jsonl.tmp")
        tmp.write_text(text)
        tmp.replace(runs_path)


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path | None = None,
    *,
    jobs: Optional[int] = None,
    resume: bool = False,
    cell_timeout: Optional[float] = None,
    max_cell_retries: Optional[int] = None,
    root: str | Path | None = None,
    context: Optional[ExecutionContext] = None,
) -> CampaignRunResult:
    """Plan and execute a campaign session into an artifact directory.

    Parameters
    ----------
    out_dir:
        Artifact directory; default ``<artifact_root>/campaigns/<name>``.
    jobs:
        Engine worker processes (explicit argument beats the spec's
        ``run.jobs`` beats serial).
    resume:
        Adopt completed cells from the dir's existing ``runs.jsonl``.
        Without it, a dir that already holds run records is refused.
    cell_timeout / max_cell_retries:
        Explicit overrides over the spec (``run.cell_timeout``) and the
        runtime config respectively.
    root:
        Artifact root override (``--out``) when ``out_dir`` is not given.
    context:
        Base execution context; the spec's ``[runtime]`` table is applied
        on top of its config for the duration of the run.
    """
    plan = compile_plan(spec)
    out = Path(out_dir) if out_dir is not None else campaign_dir(spec.name, root)
    out.mkdir(parents=True, exist_ok=True)

    plan_fp = plan.fingerprint()
    manifest_path = out / "manifest.json"
    runs_path = out / "runs.jsonl"
    if manifest_path.is_file():
        manifest = read_manifest(out)
        found = manifest.get("plan_fingerprint", "")
        if found != plan_fp:
            raise ResumeMismatchError(out, expected=plan_fp, found=found)
        if runs_path.is_file() and not resume:
            raise CampaignError(
                f"{out}: artifact dir already holds run records — pass "
                "resume=True/--resume to adopt completed cells, or use a "
                "fresh --out dir"
            )
    else:
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "campaign": spec.name,
            "description": spec.description,
            "created": _now(),
            "spec": spec.canonical(),
            "spec_fingerprint": spec.fingerprint(),
            "plan_fingerprint": plan_fp,
            "git": _git_info(spec.source.parent if spec.source else None),
            "algorithms": list(plan.algorithms),
            "instances": [_handle_json(h) for h in plan.handles()],
            "num_cells": plan.num_cells,
        }
        tmp = manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        tmp.replace(manifest_path)

    base = context if context is not None else get_context()
    config = (
        base.config.with_overrides(**spec.runtime) if spec.runtime else base.config
    )
    ctx = ExecutionContext(config)
    ctx.install_faults()

    if resume and runs_path.is_file():
        _compact_run_log(runs_path)

    run_cfg = spec.run
    effective_jobs = jobs if jobs is not None else run_cfg.get("jobs", 1)
    effective_timeout = (
        cell_timeout if cell_timeout is not None else run_cfg.get("cell_timeout")
    )

    started = _now()
    t0 = time.perf_counter()
    records = run_grid(
        list(plan.instances),
        list(plan.algorithms),
        jobs=effective_jobs,
        validate=run_cfg.get("validate", True),
        cell_timeout=effective_timeout,
        log_path=runs_path,
        max_cell_retries=max_cell_retries,
        resume_from=runs_path if resume and runs_path.is_file() else None,
        context=ctx,
        metrics_state=True,
    )
    elapsed = time.perf_counter() - t0

    cells_resumed = getattr(records, "cells_resumed", 0)
    session = {
        "started": started,
        "elapsed": elapsed,
        "jobs": effective_jobs,
        "resume": bool(resume),
        "cells_executed": len(records) - cells_resumed,
        "cells_resumed": cells_resumed,
        "cells_retried": getattr(records, "cells_retried", 0),
        "pool_restarts": getattr(records, "pool_restarts", 0),
        "git": _git_info(spec.source.parent if spec.source else None),
        "metrics": getattr(records, "metrics", {}),
    }
    with open(out / "sessions.jsonl", "a") as fh:
        fh.write(json.dumps(session, sort_keys=True) + "\n")

    return CampaignRunResult(out_dir=out, plan=plan, records=records, session=session)
