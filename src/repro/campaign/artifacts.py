"""The one ``--out`` convention for everything the repo writes to disk.

Historically every benchmark script chose its own output directory (most
dumped into untracked ``benchmarks/out``).  All artifact paths now derive
from a single root:

* ``artifact_root()`` — explicit ``--out``/argument beats the
  ``REPRO_OUT_DIR`` environment knob beats the default ``out/`` under the
  current directory;
* campaign runs live at ``<root>/campaigns/<campaign-name>/``;
* the pytest benchmark harness emits under ``<root>/benchmarks/`` and keys
  shared campaign runs by plan fingerprint under ``<root>/benchmarks/plans/``.

``slug`` is the historical ``benchmarks/out`` filename convention, kept
byte-compatible so report filenames match what the legacy scripts wrote.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.runtime.config import env_str

__all__ = ["artifact_root", "campaign_dir", "bench_dir", "slug"]


def artifact_root(override: Optional[str | Path] = None) -> Path:
    """The artifact output root (not created until something writes).

    Precedence: explicit ``override`` > ``REPRO_OUT_DIR`` > ``out/``.
    """
    if override is not None:
        return Path(override)
    env = env_str("REPRO_OUT_DIR", "")
    return Path(env) if env else Path("out")


def campaign_dir(name: str, root: Optional[str | Path] = None) -> Path:
    """The default artifact dir for a campaign: ``<root>/campaigns/<name>``."""
    return artifact_root(root) / "campaigns" / name


def bench_dir(root: Optional[str | Path] = None) -> Path:
    """Where the pytest benchmark harness emits report files."""
    return artifact_root(root) / "benchmarks"


def slug(title: str) -> str:
    """Filename slug for a report title (legacy ``benchmarks/out`` rule)."""
    return title.lower().replace(" ", "_").replace("/", "-")
