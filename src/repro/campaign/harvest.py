"""Aggregate a campaign artifact dir into one versioned harvest document.

``harvest.json`` is the self-contained result of a campaign: the spec (as
canonical JSON) with both fingerprints and git provenance, the instance
inventory, every deduplicated :class:`~repro.engine.records.RunRecord`, the
summed supervision counters, and the merged
:mod:`repro.obs` metrics of every run session.  Reports render from a
harvest alone — no instance rebuilding, no engine — which is what makes
figure tables reproducible from a committed artifact.

Deduplication follows the engine's resume semantics: ``runs.jsonl`` is
append-only, so a cell that was retried or re-run appears multiple times
and the **last** occurrence wins.  A harvest refuses incomplete artifacts
(missing cells → :class:`~repro.campaign.errors.HarvestError` with a
``--resume`` hint) rather than producing silently truncated tables.

:func:`harvest_digest` is the identity used by the crash-equivalence test:
a stable digest over everything *deterministic* in the harvest — spec and
plan fingerprints, instances, and per-cell outcomes — excluding wall-clock
fields (``elapsed``, ``worker``, ``created``, session counts), so an
interrupted-then-resumed campaign hashes identically to an uninterrupted
one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.campaign.errors import HarvestError
from repro.campaign.runner import read_manifest
from repro.engine import RunRecord
from repro.engine.runlog import read_run_log
from repro.experiments import InstanceHandle, SuiteResult, suite_result_from_records
from repro.obs.metrics import merge_snapshots

__all__ = [
    "HARVEST_VERSION",
    "harvest_campaign",
    "load_harvest",
    "suite_result_from_harvest",
    "harvest_digest",
]

HARVEST_VERSION = 1


def _read_sessions(path: Path) -> list[dict]:
    """sessions.jsonl, tolerating a torn final line (SIGKILL mid-write)."""
    if not path.is_file():
        return []
    sessions = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                sessions.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail
    return sessions


def harvest_campaign(
    out_dir: str | Path, *, write: bool = True, created: Optional[str] = None
) -> dict:
    """Fold an artifact dir's logs into one harvest document.

    ``write=True`` (default) also persists it as ``<out_dir>/harvest.json``.
    """
    out = Path(out_dir)
    manifest = read_manifest(out)
    runs_path = out / "runs.jsonl"
    if not runs_path.is_file():
        raise HarvestError(
            f"{out}: no runs.jsonl — nothing to harvest "
            "(run `stencil-ivc campaign run` first)"
        )

    algorithms = list(manifest["algorithms"])
    instances = manifest["instances"]
    n = len(instances)
    alg_pos = {name: j for j, name in enumerate(algorithms)}
    name_of = {i: inst["name"] for i, inst in enumerate(instances)}

    # Last occurrence wins (append-only log: retries/re-runs come later).
    cells: dict[tuple[int, str], RunRecord] = {}
    for record in read_run_log(runs_path):
        if record.algorithm not in alg_pos:
            continue  # not part of this plan (defensive)
        if name_of.get(record.instance_index) != record.instance:
            continue  # stale record from a different plan layout
        cells[(record.instance_index, record.algorithm)] = record

    missing = [
        (i, a)
        for i in range(n)
        for a in algorithms
        if (i, a) not in cells
    ]
    if missing:
        i, a = missing[0]
        raise HarvestError(
            f"{out}: incomplete run — {len(missing)}/{n * len(algorithms)} "
            f"cells missing (first: instance {name_of[i]!r} × {a}); "
            "finish it with `stencil-ivc campaign run --resume`"
        )

    ordered = [
        cells[(i, a)].to_json() for i in range(n) for a in algorithms
    ]
    for rec in ordered:
        rec.pop("starts", None)  # never persisted into harvests

    sessions = _read_sessions(out / "sessions.jsonl")
    metrics = merge_snapshots(
        (s["metrics"] for s in sessions if s.get("metrics")), include_state=False
    )
    supervision = {
        key: sum(int(s.get(key, 0)) for s in sessions)
        for key in ("cells_executed", "cells_resumed", "cells_retried", "pool_restarts")
    }
    failures = sum(1 for rec in ordered if rec["status"] != "ok")

    harvest = {
        "harvest_version": HARVEST_VERSION,
        "campaign": manifest["campaign"],
        "description": manifest.get("description", ""),
        "created": created if created is not None else _now(),
        "spec": manifest["spec"],
        "spec_fingerprint": manifest["spec_fingerprint"],
        "plan_fingerprint": manifest["plan_fingerprint"],
        "git": manifest.get("git"),
        "algorithms": algorithms,
        "instances": instances,
        "records": ordered,
        "failures": failures,
        "supervision": supervision,
        "sessions": len(sessions),
        "metrics": metrics,
    }
    if write:
        path = out / "harvest.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(harvest, sort_keys=True) + "\n")
        tmp.replace(path)
    return harvest


def _now() -> str:
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def load_harvest(path: str | Path) -> dict:
    """Read a harvest document (a ``harvest.json`` or its artifact dir)."""
    path = Path(path)
    if path.is_dir():
        path = path / "harvest.json"
    if not path.is_file():
        raise HarvestError(
            f"{path}: no harvest found — run `stencil-ivc campaign harvest` first"
        )
    harvest = json.loads(path.read_text())
    version = harvest.get("harvest_version")
    if version != HARVEST_VERSION:
        raise HarvestError(
            f"{path}: harvest version {version!r} unsupported "
            f"(this build reads {HARVEST_VERSION})"
        )
    return harvest


def suite_result_from_harvest(harvest: dict, on_error: str = "record") -> SuiteResult:
    """Reconstruct a :class:`~repro.experiments.SuiteResult` from a harvest.

    Instances come back as :class:`~repro.experiments.InstanceHandle`
    stand-ins — every report builder works on those; only recomputation
    (the MILP comparison) rebuilds real instances from the embedded spec.
    """
    handles = [
        InstanceHandle(
            name=inst["name"],
            shape=tuple(inst["shape"]) if inst.get("shape") is not None else None,
            num_vertices=int(inst.get("num_vertices", 0)),
            metadata=inst.get("metadata", {}),
        )
        for inst in harvest["instances"]
    ]
    records = [RunRecord.from_json(rec) for rec in harvest["records"]]
    result = suite_result_from_records(
        handles, harvest["algorithms"], records, on_error=on_error
    )
    supervision = harvest.get("supervision", {})
    result.pool_restarts = int(supervision.get("pool_restarts", 0))
    result.cells_retried = int(supervision.get("cells_retried", 0))
    result.cells_resumed = int(supervision.get("cells_resumed", 0))
    return result


#: RunRecord fields that are deterministic given the plan (everything
#: wall-clock or process-identity is excluded from the digest).
_DIGEST_RECORD_FIELDS = (
    "instance_index",
    "instance",
    "shape",
    "algorithm",
    "status",
    "maxcolor",
    "lower_bound",
)


def harvest_digest(harvest: dict) -> str:
    """Stable identity of a harvest's deterministic content.

    Interrupted+resumed and uninterrupted runs of the same spec produce
    equal digests: timing (``elapsed``), worker ids, timestamps, session
    counts, and metrics are all excluded.
    """
    doc = {
        "spec_fingerprint": harvest["spec_fingerprint"],
        "plan_fingerprint": harvest["plan_fingerprint"],
        "algorithms": harvest["algorithms"],
        "instances": harvest["instances"],
        "records": [
            {key: rec.get(key) for key in _DIGEST_RECORD_FIELDS}
            for rec in harvest["records"]
        ],
    }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()
