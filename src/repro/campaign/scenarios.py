"""Scenario builders: named, deterministic instance-suite generators.

A campaign's ``[scenario]`` table names one builder here by ``kind``; the
remaining keys (merged with any ``[matrix]`` axes per variant) become the
builder's keyword arguments.  Builders are **pure functions of their
parameters** — same params, same instances, byte-for-byte — which is what
makes a compiled run plan deterministic and a harvest artifact
reconstructible: a report that needs real instances (the MILP comparison)
rebuilds them from the spec embedded in the artifact.

The regime and scaling builders replicate the exact RNG draw order of the
legacy ``bench_ablation_weight_regime.py`` / ``bench_scaling.py`` scripts
(one shared generator threaded sequentially through regimes × repeats),
so campaign tables are bit-identical to what those scripts printed.
"""

from __future__ import annotations

import inspect
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.campaign.errors import SpecError, UnknownScenarioError
from repro.core.problem import IVCInstance
from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
from repro.data.synthetic import standard_datasets

__all__ = ["SCENARIOS", "scenario_params", "validate_scenario_params", "build_instances"]


def _thin(instances: list[IVCInstance], sample_target: int) -> list[IVCInstance]:
    """Every-nth subsample aiming at ``sample_target`` instances (0 = all).

    The exact rule the extension bench used: ``suite[:: max(1, n // t)]``.
    """
    if sample_target <= 0:
        return instances
    return instances[:: max(1, len(instances) // sample_target)]


def suite2d(
    *,
    scale: float = 1.0,
    seed: int = 0,
    dim_cap: int = 16,
    max_cells: int = 1024,
    sample_target: int = 0,
) -> list[IVCInstance]:
    """The Section VI.A 2DS-IVC suite: dataset × plane × bandwidth × dims."""
    datasets = standard_datasets(scale=scale, seed=seed)
    config = SuiteConfig(dim_cap=dim_cap, max_cells=max_cells)
    return _thin(build_suite_2d(datasets, config), sample_target)


def suite3d(
    *,
    scale: float = 1.0,
    seed: int = 0,
    dim_cap: int = 8,
    max_cells: int = 1024,
    sample_target: int = 0,
) -> list[IVCInstance]:
    """The Section VI.A 3DS-IVC suite: dataset × bandwidth × dims."""
    datasets = standard_datasets(scale=scale, seed=seed)
    config = SuiteConfig(dim_cap=dim_cap, max_cells=max_cells)
    return _thin(build_suite_3d(datasets, config), sample_target)


def weight_regimes(
    *,
    shape: Sequence[int] = (16, 16),
    repeats: int = 8,
    seed: int = 42,
    spikes: int = 30,
) -> list[IVCInstance]:
    """Controlled weight-distribution regimes (the ranking-flip ablation).

    One instance per (regime, repeat); ``metadata["regime"]`` groups them
    for :func:`repro.reports.group_ratio_report`.  A single generator is
    threaded through all draws in regime order.
    """
    shape = tuple(int(s) for s in shape)
    rng = np.random.default_rng(seed)

    def regimes():
        yield "near-constant", lambda: rng.integers(45, 55, size=shape)
        yield "uniform dense", lambda: rng.integers(10, 50, size=shape)
        yield "exponential", lambda: rng.poisson(rng.exponential(5.0, size=shape))

        def sparse_spiky():
            grid = np.zeros(shape, dtype=int)
            idx = rng.integers(0, shape[0], size=(spikes, 2))
            for i, j in idx:
                grid[i, j] += int(rng.integers(5, 60))
            return grid

        yield "sparse spiky", sparse_spiky

    instances = []
    for label, gen in regimes():
        for rep in range(repeats):
            instances.append(
                IVCInstance.from_grid_2d(
                    gen(),
                    name=f"regime-{label.replace(' ', '-')}-r{rep}",
                    metadata={"regime": label, "repeat": rep},
                )
            )
    return instances


def scaling_grids(
    *,
    sides: Sequence[int] = (8, 16, 32, 64),
    low: int = 0,
    high: int = 50,
    seed: int = 0,
) -> list[IVCInstance]:
    """Square 2D grids of doubling side (the Section V complexity study).

    ``metadata["side"]`` feeds :func:`repro.reports.scaling_report`.
    """
    rng = np.random.default_rng(seed)
    return [
        IVCInstance.from_grid_2d(
            rng.integers(low, high, size=(side, side)),
            name=f"scaling-{side}x{side}",
            metadata={"side": int(side)},
        )
        for side in (int(s) for s in sides)
    ]


#: kind -> builder.  Every builder takes keyword-only parameters and returns
#: a deterministic instance list.
SCENARIOS: dict[str, Callable[..., list[IVCInstance]]] = {
    "suite2d": suite2d,
    "suite3d": suite3d,
    "weight_regimes": weight_regimes,
    "scaling_grids": scaling_grids,
}


def scenario_params(kind: str) -> set[str]:
    """The keyword parameter names a scenario builder accepts."""
    builder = SCENARIOS.get(kind)
    if builder is None:
        raise UnknownScenarioError(kind, SCENARIOS)
    return set(inspect.signature(builder).parameters)


def validate_scenario_params(
    kind: str, scenario: Mapping, matrix: Mapping, ctx: Mapping
) -> None:
    """Spec-time validation: scenario keys and matrix axes must be builder
    parameters (typed errors, with the builder's signature in the message)."""
    if kind not in SCENARIOS:
        raise UnknownScenarioError(kind, SCENARIOS, **ctx)
    allowed = scenario_params(kind)
    for key in scenario:
        if key != "kind" and key not in allowed:
            raise SpecError(
                f"scenario {kind!r} has no parameter {key!r} "
                f"(accepts: {', '.join(sorted(allowed))})",
                key=f"scenario.{key}",
                **ctx,
            )
    for axis in matrix:
        if axis not in allowed:
            raise SpecError(
                f"matrix axis {axis!r} is not a parameter of scenario {kind!r} "
                f"(accepts: {', '.join(sorted(allowed))})",
                key=f"matrix.{axis}",
                **ctx,
            )


def build_instances(
    scenario: Mapping, variant: Mapping | None = None
) -> list[IVCInstance]:
    """Instantiate one scenario variant (matrix axis values merged in)."""
    params = {k: v for k, v in scenario.items() if k != "kind"}
    if variant:
        params.update(variant)
    builder = SCENARIOS[scenario["kind"]]
    instances = builder(**params)
    if variant:
        for inst in instances:
            for axis, value in variant.items():
                inst.metadata.setdefault(axis, value)
    return instances
