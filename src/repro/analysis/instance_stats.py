"""Weight-distribution statistics for instances.

The ranking of the coloring heuristics depends on the *regime* of an
instance's weights (see EXPERIMENTS.md and
``bench_ablation_weight_regime.py``): smooth dense grids favor the BD
family, sparse/heavy-tailed grids favor weight-driven first fit.  This
module quantifies the regime so experiment reports can explain rankings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import IVCInstance


@dataclass(frozen=True)
class WeightStats:
    """Summary of an instance's weight distribution.

    Attributes
    ----------
    occupancy:
        Fraction of vertices with positive weight.
    skew:
        Max positive weight over the median positive weight (1.0 for
        constant weights; large for heavy tails).  0 when all weights are 0.
    cv:
        Coefficient of variation of the positive weights.
    block_imbalance:
        Max block weight over the mean block weight (stencil instances):
        how much one clique dominates.
    """

    occupancy: float
    skew: float
    cv: float
    block_imbalance: float

    @property
    def regime(self) -> str:
        """Coarse regime label: ``smooth``, ``mixed``, or ``spiky``.

        Thresholds follow the controlled regimes of the weight-regime
        ablation: near-constant/uniform grids classify as smooth, power-law
        or sparse grids as spiky.
        """
        if self.occupancy >= 0.9 and self.skew <= 4.0:
            return "smooth"
        if self.occupancy < 0.4 or self.skew > 10.0:
            return "spiky"
        return "mixed"


def weight_stats(instance: IVCInstance) -> WeightStats:
    """Compute :class:`WeightStats` for an instance (vectorized)."""
    w = instance.weights
    if instance.num_vertices == 0:
        return WeightStats(0.0, 0.0, 0.0, 0.0)
    positive = w[w > 0]
    occupancy = float(len(positive) / len(w))
    if len(positive) == 0:
        return WeightStats(0.0, 0.0, 0.0, 0.0)
    skew = float(positive.max() / np.median(positive))
    mean = float(positive.mean())
    cv = float(positive.std() / mean) if mean > 0 else 0.0
    block_imbalance = 0.0
    if instance.geometry is not None:
        sums = instance.geometry.block_weight_sums(w)
        if len(sums) and sums.mean() > 0:
            block_imbalance = float(sums.max() / sums.mean())
    return WeightStats(
        occupancy=occupancy, skew=skew, cv=cv, block_imbalance=block_imbalance
    )


def suite_regime_table(instances) -> list[tuple[str, str, float, float]]:
    """Per-instance ``(name, regime, occupancy, skew)`` rows for reports."""
    rows = []
    for inst in instances:
        stats = weight_stats(inst)
        rows.append((inst.name, stats.regime, stats.occupancy, stats.skew))
    return rows
