"""Performance profiles (Dolan–Moré curves) as used in Figures 5–9.

For each instance, ``tau`` is the ratio of an algorithm's ``maxcolor`` to the
best ``maxcolor`` any algorithm achieved on that instance.  An algorithm's
curve value at ``tau`` is the fraction of instances on which its ratio is at
most ``tau`` — curves further up-left are better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PerformanceProfile:
    """A family of tau curves over a shared instance set.

    Attributes
    ----------
    algorithms:
        Curve labels, in input order.
    taus:
        The tau grid (increasing, starting at 1.0).
    curves:
        ``(len(algorithms), len(taus))`` array of cumulative fractions.
    ratios:
        ``(len(algorithms), num_instances)`` array of per-instance ratios to
        the per-instance best.
    """

    algorithms: tuple[str, ...]
    taus: np.ndarray
    curves: np.ndarray
    ratios: np.ndarray

    @property
    def num_instances(self) -> int:
        """Number of instances the profile aggregates."""
        return self.ratios.shape[1]

    def value_at(self, algorithm: str, tau: float) -> float:
        """Fraction of instances where ``algorithm`` is within ``tau`` of best."""
        i = self.algorithms.index(algorithm)
        return float(np.mean(self.ratios[i] <= tau + 1e-12))

    def auc(self, algorithm: str) -> float:
        """Area under the curve over the tau grid (higher is better)."""
        i = self.algorithms.index(algorithm)
        return float(np.trapezoid(self.curves[i], self.taus))

    def winner(self) -> str:
        """Algorithm with the highest area under its curve."""
        aucs = [self.auc(a) for a in self.algorithms]
        return self.algorithms[int(np.argmax(aucs))]


def performance_profile(
    values: dict[str, list[float]],
    taus: np.ndarray | None = None,
    best: list[float] | None = None,
) -> PerformanceProfile:
    """Build a profile from per-algorithm value lists (lower is better).

    Parameters
    ----------
    values:
        ``{algorithm: [value per instance]}``; all lists the same length.
    taus:
        Tau grid; defaults to 256 points covering the observed ratio range.
    best:
        Per-instance reference values (e.g. the MILP optimum for Figure 9);
        defaults to the per-instance minimum across algorithms.
    """
    algorithms = tuple(values)
    if not algorithms:
        raise ValueError("need at least one algorithm")
    mat = np.asarray([values[a] for a in algorithms], dtype=np.float64)
    if mat.ndim != 2 or mat.shape[1] == 0:
        raise ValueError("need at least one instance")
    if best is None:
        reference = mat.min(axis=0)
    else:
        reference = np.asarray(best, dtype=np.float64)
        if len(reference) != mat.shape[1]:
            raise ValueError("best must have one value per instance")
    if np.any(reference <= 0):
        # Zero-color instances are trivially solved by everyone: ratio 1.
        reference = np.where(reference <= 0, 1.0, reference)
        mat = np.where(mat <= 0, 1.0, mat)
    ratios = mat / reference
    if taus is None:
        hi = max(1.05, float(np.quantile(ratios, 0.99)) * 1.02)
        taus = np.linspace(1.0, hi, 256)
    curves = (ratios[:, None, :] <= taus[None, :, None] + 1e-12).mean(axis=2)
    return PerformanceProfile(
        algorithms=algorithms, taus=np.asarray(taus), curves=curves, ratios=ratios
    )


def profile_to_text(
    profile: PerformanceProfile, sample_taus: tuple[float, ...] = (1.0, 1.02, 1.05, 1.1, 1.25, 1.5)
) -> str:
    """Fixed-width rendering of a profile at a few tau samples."""
    header = "algorithm  " + "".join(f"  tau<={t:<6g}" for t in sample_taus) + "  AUC"
    lines = [header, "-" * len(header)]
    for a in profile.algorithms:
        cells = "".join(f"  {profile.value_at(a, t):>9.3f}" for t in sample_taus)
        lines.append(f"{a:<11}{cells}  {profile.auc(a):.4f}")
    return "\n".join(lines)
