"""Experiment analysis: performance profiles, summary statistics, regression.

These utilities reproduce the presentation layer of Sections VI and VII:
performance profiles (Dolan–Moré tau curves) for Figures 5–9, the textual
statistics of VI.B–VI.D, and the colors-vs-runtime linear fits of Figure 10.
"""

from repro.analysis.instance_stats import WeightStats, weight_stats
from repro.analysis.performance_profiles import (
    PerformanceProfile,
    performance_profile,
    profile_to_text,
)
from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.reporting import format_table
from repro.analysis.stats import (
    fraction_best,
    fraction_matching,
    mean_ratio_to,
    runtime_summary,
)
from repro.analysis.svgplot import bars_svg, profile_svg, scatter_svg

__all__ = [
    "LinearFit",
    "PerformanceProfile",
    "WeightStats",
    "bars_svg",
    "format_table",
    "fraction_best",
    "fraction_matching",
    "linear_fit",
    "mean_ratio_to",
    "performance_profile",
    "profile_svg",
    "profile_to_text",
    "runtime_summary",
    "scatter_svg",
    "weight_stats",
]
