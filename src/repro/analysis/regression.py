"""Linear regression for the Figure 10 colors-vs-runtime scatter."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``.

    ``rvalue`` is Pearson's correlation — Figure 10's claim is that it is
    positive for every configuration (weakly so when the critical path is a
    small fraction of total work).
    """

    slope: float
    intercept: float
    rvalue: float
    pvalue: float
    stderr: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def linear_fit(x, y) -> LinearFit:
    """Fit a line through ``(x, y)`` samples (at least two distinct x)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two aligned samples")
    if np.allclose(x, x[0]):
        raise ValueError("x values are all identical; the slope is undefined")
    res = stats.linregress(x, y)
    return LinearFit(
        slope=float(res.slope),
        intercept=float(res.intercept),
        rvalue=float(res.rvalue),
        pvalue=float(res.pvalue),
        stderr=float(res.stderr),
    )
