"""Fixed-width table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's figures plot;
this module keeps that formatting in one place.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted with ``float_fmt``; everything else with ``str``.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def banner(title: str, width: int = 72) -> str:
    """A section banner used between benchmark blocks."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"
