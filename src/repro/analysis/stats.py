"""Summary statistics matching the textual claims of Sections VI.B–VI.D."""

from __future__ import annotations

import numpy as np


def mean_ratio_to(values: list[float], reference: list[float]) -> float:
    """Mean of ``value / reference`` over instances (e.g. BDP vs the K4 bound).

    Instances whose reference is 0 are trivially optimal and count as ratio 1.
    """
    v = np.asarray(values, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    if v.shape != r.shape:
        raise ValueError("values and reference must align")
    ratios = np.where(r > 0, v / np.where(r > 0, r, 1.0), 1.0)
    return float(ratios.mean())


def fraction_best(values: dict[str, list[float]], algorithm: str) -> float:
    """Fraction of instances where ``algorithm`` ties the best value."""
    mat = np.asarray([values[a] for a in values], dtype=np.float64)
    target = np.asarray(values[algorithm], dtype=np.float64)
    return float(np.mean(target <= mat.min(axis=0) + 1e-12))


def fraction_matching(values: list[float], reference: list[float]) -> float:
    """Fraction of instances where value equals the reference (e.g. == LB,
    i.e. provably optimal)."""
    v = np.asarray(values, dtype=np.float64)
    r = np.asarray(reference, dtype=np.float64)
    return float(np.mean(np.abs(v - r) <= 1e-9))


def runtime_summary(times: dict[str, list[float]]) -> dict[str, dict[str, float]]:
    """Per-algorithm total/mean/max runtimes (the Figure 5a/7a bars)."""
    out = {}
    for name, values in times.items():
        arr = np.asarray(values, dtype=np.float64)
        out[name] = {
            "total": float(arr.sum()),
            "mean": float(arr.mean()) if len(arr) else 0.0,
            "max": float(arr.max()) if len(arr) else 0.0,
        }
    return out


def relative_slowdown(times: dict[str, list[float]], a: str, b: str) -> float:
    """How much slower ``a`` is than ``b`` in total time, as a percentage.

    Matches the paper's phrasing "SGK was 154% slower than GLL": returns
    ``(total_a / total_b - 1) * 100``.
    """
    ta = float(np.sum(times[a]))
    tb = float(np.sum(times[b]))
    if tb <= 0:
        return float("inf") if ta > 0 else 0.0
    return (ta / tb - 1.0) * 100.0
