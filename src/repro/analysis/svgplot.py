"""Dependency-free SVG rendering of the paper's figures.

The environment has no plotting stack, so this module generates the figure
artifacts (performance-profile curves, colors-vs-runtime scatters, runtime
bars) as standalone SVG documents.  The drawing model is deliberately tiny:
a :class:`SVGCanvas` with a data-space→pixel mapping, and three figure
builders matching the paper's plot types.

All output is valid XML (the tests parse it back); files render in any
browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence
from xml.sax.saxutils import escape

import numpy as np

#: Color cycle for algorithm series (colorblind-safe-ish hex palette).
PALETTE = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
)


@dataclass
class SVGCanvas:
    """A minimal SVG surface with a linear data→pixel transform.

    Attributes
    ----------
    width, height:
        Pixel dimensions of the document.
    margin:
        Pixels reserved on every side for axes and labels.
    xlim, ylim:
        Data-space extents mapped onto the plotting area.
    """

    width: int = 640
    height: int = 420
    margin: int = 56
    xlim: tuple[float, float] = (0.0, 1.0)
    ylim: tuple[float, float] = (0.0, 1.0)
    elements: list[str] = field(default_factory=list)

    def px(self, x: float) -> float:
        """Data x → pixel x."""
        lo, hi = self.xlim
        span = hi - lo or 1.0
        return self.margin + (x - lo) / span * (self.width - 2 * self.margin)

    def py(self, y: float) -> float:
        """Data y → pixel y (SVG y grows downward)."""
        lo, hi = self.ylim
        span = hi - lo or 1.0
        return self.height - self.margin - (y - lo) / span * (self.height - 2 * self.margin)

    # ------------------------------------------------------------ primitives
    def line(self, x1, y1, x2, y2, color="#888888", width=1.0, dash: str = "") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{self.px(x1):.1f}" y1="{self.py(y1):.1f}" '
            f'x2="{self.px(x2):.1f}" y2="{self.py(y2):.1f}" '
            f'stroke="{color}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, xs: Sequence[float], ys: Sequence[float], color: str, width=1.8) -> None:
        pts = " ".join(f"{self.px(x):.1f},{self.py(y):.1f}" for x, y in zip(xs, ys))
        self.elements.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x: float, y: float, r: float, color: str) -> None:
        self.elements.append(
            f'<circle cx="{self.px(x):.1f}" cy="{self.py(y):.1f}" r="{r}" '
            f'fill="{color}"/>'
        )

    def rect_px(self, x: float, y: float, w: float, h: float, color: str) -> None:
        """Rectangle in raw pixel coordinates (used by bars and legends)."""
        self.elements.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{color}"/>'
        )

    def text(self, x_px: float, y_px: float, s: str, size=11, anchor="start", color="#222222") -> None:
        self.elements.append(
            f'<text x="{x_px:.1f}" y="{y_px:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-family="sans-serif">{escape(s)}</text>'
        )

    # ----------------------------------------------------------------- frame
    def axes(self, xlabel: str, ylabel: str, title: str = "", xticks=None, yticks=None) -> None:
        """Draw the plot frame, tick marks, and labels."""
        x0, x1 = self.xlim
        y0, y1 = self.ylim
        self.line(x0, y0, x1, y0, color="#222222")
        self.line(x0, y0, x0, y1, color="#222222")
        for tick in xticks if xticks is not None else np.linspace(x0, x1, 5):
            self.text(self.px(tick), self.height - self.margin + 16, f"{tick:g}", anchor="middle")
            self.line(tick, y0, tick, y1, color="#eeeeee")
        for tick in yticks if yticks is not None else np.linspace(y0, y1, 5):
            self.text(self.margin - 6, self.py(tick) + 4, f"{tick:g}", anchor="end")
            self.line(x0, tick, x1, tick, color="#eeeeee")
        self.text(self.width / 2, self.height - 12, xlabel, anchor="middle", size=13)
        self.elements.append(
            f'<text x="14" y="{self.height / 2:.1f}" font-size="13" text-anchor="middle" '
            f'fill="#222222" font-family="sans-serif" '
            f'transform="rotate(-90 14 {self.height / 2:.1f})">{escape(ylabel)}</text>'
        )
        if title:
            self.text(self.width / 2, 20, title, anchor="middle", size=14)

    def legend(self, labels: Sequence[str], colors: Sequence[str]) -> None:
        """Stacked legend swatches in the top-right corner."""
        x = self.width - self.margin - 110
        y = self.margin + 4
        for label, color in zip(labels, colors):
            self.rect_px(x, y - 8, 18, 4, color)
            self.text(x + 24, y - 3, label)
            y += 16

    def render(self) -> str:
        """Serialize the document."""
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


def profile_svg(profile, title: str = "Performance profile") -> str:
    """Render a :class:`~repro.analysis.performance_profiles.PerformanceProfile`
    as the paper's tau-curve plot (Figures 5b–9)."""
    taus = profile.taus
    canvas = SVGCanvas(xlim=(float(taus[0]), float(taus[-1])), ylim=(0.0, 1.02))
    canvas.axes("tau", "proportion of instances", title=title)
    colors = []
    for i, name in enumerate(profile.algorithms):
        color = PALETTE[i % len(PALETTE)]
        colors.append(color)
        canvas.polyline(taus, profile.curves[i], color)
    canvas.legend(profile.algorithms, colors)
    return canvas.render()


def scatter_svg(
    x: Sequence[float],
    y: Sequence[float],
    labels: Sequence[str],
    fit=None,
    title: str = "",
    xlabel: str = "number of colors",
    ylabel: str = "simulated runtime",
) -> str:
    """Render a Figure-10-style scatter with an optional regression line."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) == 0:
        raise ValueError("empty scatter")
    pad_x = (x.max() - x.min() or 1.0) * 0.1
    pad_y = (y.max() - y.min() or 1.0) * 0.15
    canvas = SVGCanvas(
        xlim=(x.min() - pad_x, x.max() + pad_x),
        ylim=(y.min() - pad_y, y.max() + pad_y),
    )
    canvas.axes(xlabel, ylabel, title=title)
    if fit is not None:
        xs = np.array([x.min(), x.max()])
        canvas.polyline(xs, fit.predict(xs), "#888888", width=1.2)
    for i, (xi, yi, label) in enumerate(zip(x, y, labels)):
        color = PALETTE[i % len(PALETTE)]
        canvas.circle(xi, yi, 4.0, color)
        canvas.text(canvas.px(xi) + 6, canvas.py(yi) - 6, label, size=10)
    return canvas.render()


def bars_svg(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    ylabel: str = "total runtime (s)",
) -> str:
    """Render a Figure-5a/7a-style runtime comparison bar chart."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("empty bar chart")
    top = float(values.max()) * 1.1 or 1.0
    canvas = SVGCanvas(xlim=(0.0, float(len(values))), ylim=(0.0, top))
    canvas.axes("", ylabel, title=title, xticks=[])
    slot = (canvas.width - 2 * canvas.margin) / len(values)
    for i, (label, value) in enumerate(zip(labels, values)):
        x_px = canvas.margin + i * slot + slot * 0.15
        y_px = canvas.py(float(value))
        canvas.rect_px(
            x_px,
            y_px,
            slot * 0.7,
            canvas.py(0.0) - y_px,
            PALETTE[i % len(PALETTE)],
        )
        canvas.text(x_px + slot * 0.35, canvas.height - canvas.margin + 16, label, anchor="middle")
        canvas.text(x_px + slot * 0.35, y_px - 4, f"{value:.3g}", anchor="middle", size=10)
    return canvas.render()
