"""Observability primitives shared by every layer (see :mod:`repro.obs.metrics`)."""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]
