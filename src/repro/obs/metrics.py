"""Counters, gauges, and latency histograms (the repo's metrics layer).

A tiny, dependency-free metrics layer: named :class:`Counter`/:class:`Gauge`
values plus fixed-bucket log-scaled :class:`Histogram` objects, collected in
a thread-safe :class:`MetricsRegistry` whose :meth:`~MetricsRegistry.snapshot`
is a plain JSON-serializable dict — that is what the coloring server ships
over the wire for the ``metrics`` protocol op and what ``BENCH_service.json``
embeds.

This module used to live in ``repro.service.metrics``; it was hoisted into
``repro.obs`` so the batch-engine workers and the kernel substrate caches can
emit counters without importing the service package (the service re-exports
it unchanged for compatibility).  Every
:class:`~repro.runtime.context.ExecutionContext` owns one registry.

Histograms use geometric bucket boundaries from 10 µs to ~100 s, so
percentile estimates (p50/p90/p99) are accurate to the bucket ratio (~25%)
across six orders of magnitude of latency, with exact ``min``/``max``
tracked on the side.

Cross-process merging
---------------------
Engine worker processes each hold their own registry; the parent folds the
workers' snapshots together with :func:`merge_snapshots`.  Counters add,
gauges keep the largest value (a queue depth summed across workers means
nothing), and histograms merge bucket-by-bucket — which requires the raw
bucket state, so workers snapshot with ``include_state=True``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Optional


def _default_bounds() -> list[float]:
    """Geometric bucket upper bounds in seconds: 10 µs … ~115 s."""
    bounds = []
    value = 1e-5
    while value < 130.0:
        bounds.append(value)
        value *= 1.25
    return bounds


_BOUNDS = _default_bounds()


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time numeric value (queue depth, in-flight batches)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed log-bucket histogram of non-negative samples (seconds).

    ``observe`` is O(log #buckets); ``percentile`` interpolates nothing —
    it returns the upper bound of the bucket containing the requested rank,
    clamped to the exact observed ``max``.
    """

    def __init__(self, bounds: Optional[list[float]] = None) -> None:
        self.bounds = list(bounds) if bounds is not None else _BOUNDS
        self._counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = max(0.0, float(value))
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0–100) as a bucket upper bound, in seconds."""
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, int(round(p / 100.0 * self.count)))
            seen = 0
            for idx, count in enumerate(self._counts):
                seen += count
                if seen >= rank:
                    bound = (
                        self.bounds[idx] if idx < len(self.bounds) else self.max
                    )
                    return min(bound, self.max)
            return self.max  # pragma: no cover - unreachable

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """count/mean/min/max plus p50/p90/p99, all in seconds."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def state(self) -> dict:
        """The mergeable raw state: summary plus bucket counts and bounds."""
        with self._lock:
            counts = list(self._counts)
        state = self.summary()
        state["buckets"] = counts
        state["bounds"] = list(self.bounds)
        return state

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one.

        The other histogram must share this one's bucket bounds (all
        registries in this repo use the default bounds).
        """
        counts = state.get("buckets")
        if counts is None or len(counts) != len(self._counts):
            raise ValueError("histogram state has incompatible buckets")
        with self._lock:
            for idx, n in enumerate(counts):
                self._counts[idx] += int(n)
            self.count += int(state["count"])
            self.total += float(state["mean"]) * int(state["count"])
            if state["count"]:
                self.min = min(self.min, float(state["min"]))
                self.max = max(self.max, float(state["max"]))


class MetricsRegistry:
    """Named metrics, lazily created, snapshotted as one nested dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram())

    def snapshot(self, *, include_state: bool = False) -> dict:
        """All current values as a JSON-serializable nested dict.

        ``include_state=True`` adds raw bucket counts to every histogram so
        the snapshot can be folded into another with
        :func:`merge_snapshots` (engine workers ship these to the parent).
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: (h.state() if include_state else h.summary())
                for name, h in sorted(histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold one ``include_state=True`` snapshot into this registry.

        Counters add; gauges keep the larger value; histograms merge
        bucket-by-bucket (snapshots without bucket state raise).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(value)))
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_state(state)


def merge_snapshots(snapshots: Iterable[dict], *, include_state: bool = False) -> dict:
    """Merge ``include_state=True`` snapshots into one snapshot.

    Used by the batch engine to fold per-worker registries into the
    :class:`~repro.engine.executor.GridResult` metrics: counters add, gauges
    keep the maximum, histogram percentiles are recomputed from the summed
    bucket counts.  With ``include_state=True`` the merged snapshot keeps
    raw histogram bucket state, so it can itself be merged again later —
    campaign harvests fold one such snapshot per run session
    (:mod:`repro.campaign.harvest`) into the artifact's combined metrics.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot(include_state=include_state)
