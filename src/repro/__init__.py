"""repro — interval vertex coloring of 9-pt and 27-pt stencil graphs.

A faithful reproduction of *“Coloring the Vertices of 9-pt and 27-pt
Stencils with Intervals”* (Durrman & Saule, IPPS 2022): the combinatorial
problem, its lower bounds and exact special cases, the seven heuristics of
the paper's evaluation (GLL, GZO, GLF, GKF, SGK, BD, BDP), exact MILP and
branch-and-bound solvers, the NAE-3SAT NP-completeness reduction, the
spatio-temporal instance pipeline, and the STKDE application integration.

Quick start::

    import numpy as np
    from repro.api import color

    weights = np.random.default_rng(0).integers(0, 50, size=(32, 32))
    result = color(weights, "BDP", validate=True)
    print(result.maxcolor, result.provenance)

:mod:`repro.api` is the stable entry point (``docs/api.md`` explains how it
maps onto the historical call styles).  The top-level ``color_with`` /
``run_grid`` re-exports below still work but emit
:class:`DeprecationWarning`; import them from their home packages
(:mod:`repro.core`, :mod:`repro.engine`) or move to :func:`repro.api.color`.
"""

import functools as _functools
import sys as _sys
import warnings as _warnings

from repro.core import (
    ALGORITHMS,
    EXTENDED_ALGORITHMS,
    REGISTRY,
    AlgorithmSpec,
    Coloring,
    IVCInstance,
    Registry,
    UnknownAlgorithmError,
    available_algorithms,
    bipartite_decomposition,
    bipartite_decomposition_post,
    clique_block_bound,
    color_with,
    greedy_color,
    greedy_largest_clique_first,
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
    lower_bound,
    maxpair_bound,
    odd_cycle_bound,
    smart_greedy_largest_clique_first,
)
from repro.engine import RunRecord
from repro.engine import run_grid as _run_grid
from repro.experiments import SuiteExecutionError, SuiteResult, run_suite
from repro.stencil import StencilGrid2D, StencilGrid3D
from repro import api
from repro.api import ColoringResult, color

_color_with = color_with


def _external_stacklevel() -> int:
    """Stacklevel attributing a shim's warning to the nearest frame *outside*
    the ``repro`` package.

    ``stacklevel=2`` is only right when user code calls the shim directly;
    when the call arrives through an internal re-dispatch the warning (and
    the dedup key of the default ``once per call site`` filter, which is
    keyed on the attributed module and line) would land on repro's own
    frame.  Walking past in-package frames keeps ``-W error`` tracebacks
    and warning dedup pinned to the caller's file and line.
    """
    level = 2  # from the shim's perspective: 1 = shim, 2 = its caller
    frame = _sys._getframe(2)  # from here: 0 = helper, 1 = shim, 2 = caller
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        if module != "repro" and not module.startswith("repro."):
            break
        frame = frame.f_back
        level += 1
    return level


def _deprecated_alias(func, home: str):
    @_functools.wraps(func)
    def shim(*args, **kwargs):
        _warnings.warn(
            f"repro.{func.__name__} is deprecated; call repro.api.color() or "
            f"import {func.__name__} from {home}",
            DeprecationWarning,
            stacklevel=_external_stacklevel(),
        )
        return func(*args, **kwargs)

    shim.__wrapped__ = func
    return shim


#: Deprecated top-level aliases — same behaviour, plus a DeprecationWarning.
color_with = _deprecated_alias(_color_with, "repro.core")
run_grid = _deprecated_alias(_run_grid, "repro.engine")

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "Coloring",
    "ColoringResult",
    "EXTENDED_ALGORITHMS",
    "IVCInstance",
    "REGISTRY",
    "Registry",
    "RunRecord",
    "StencilGrid2D",
    "StencilGrid3D",
    "SuiteExecutionError",
    "SuiteResult",
    "UnknownAlgorithmError",
    "__version__",
    "api",
    "available_algorithms",
    "color",
    "bipartite_decomposition",
    "bipartite_decomposition_post",
    "clique_block_bound",
    "color_with",
    "greedy_color",
    "greedy_largest_clique_first",
    "greedy_largest_first",
    "greedy_line_by_line",
    "greedy_zorder",
    "lower_bound",
    "maxpair_bound",
    "odd_cycle_bound",
    "run_grid",
    "run_suite",
    "smart_greedy_largest_clique_first",
]
