"""repro — interval vertex coloring of 9-pt and 27-pt stencil graphs.

A faithful reproduction of *“Coloring the Vertices of 9-pt and 27-pt
Stencils with Intervals”* (Durrman & Saule, IPPS 2022): the combinatorial
problem, its lower bounds and exact special cases, the seven heuristics of
the paper's evaluation (GLL, GZO, GLF, GKF, SGK, BD, BDP), exact MILP and
branch-and-bound solvers, the NAE-3SAT NP-completeness reduction, the
spatio-temporal instance pipeline, and the STKDE application integration.

Quick start::

    import numpy as np
    from repro import IVCInstance, color_with, lower_bound

    weights = np.random.default_rng(0).integers(0, 50, size=(32, 32))
    instance = IVCInstance.from_grid_2d(weights)
    coloring = color_with(instance, "BDP").check()
    print(coloring.maxcolor, ">=", lower_bound(instance))
"""

from repro.core import (
    ALGORITHMS,
    EXTENDED_ALGORITHMS,
    REGISTRY,
    AlgorithmSpec,
    Coloring,
    IVCInstance,
    Registry,
    UnknownAlgorithmError,
    available_algorithms,
    bipartite_decomposition,
    bipartite_decomposition_post,
    clique_block_bound,
    color_with,
    greedy_color,
    greedy_largest_clique_first,
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
    lower_bound,
    maxpair_bound,
    odd_cycle_bound,
    smart_greedy_largest_clique_first,
)
from repro.engine import RunRecord, run_grid
from repro.experiments import SuiteExecutionError, SuiteResult, run_suite
from repro.stencil import StencilGrid2D, StencilGrid3D

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "Coloring",
    "EXTENDED_ALGORITHMS",
    "IVCInstance",
    "REGISTRY",
    "Registry",
    "RunRecord",
    "StencilGrid2D",
    "StencilGrid3D",
    "SuiteExecutionError",
    "SuiteResult",
    "UnknownAlgorithmError",
    "__version__",
    "available_algorithms",
    "bipartite_decomposition",
    "bipartite_decomposition_post",
    "clique_block_bound",
    "color_with",
    "greedy_color",
    "greedy_largest_clique_first",
    "greedy_largest_first",
    "greedy_line_by_line",
    "greedy_zorder",
    "lower_bound",
    "maxpair_bound",
    "odd_cycle_bound",
    "run_grid",
    "run_suite",
    "smart_greedy_largest_clique_first",
]
