"""Batch execution engine for (instance × algorithm) grids.

Contents:

* :mod:`~repro.engine.executor` — :func:`run_grid`: chunked fan-out of a
  suite's cells across a process pool, with per-worker instance reuse and
  per-cell failure isolation; serial execution is ``jobs=1`` of the same
  code path.
* :mod:`~repro.engine.records` — :class:`RunRecord`, the structured outcome
  of one cell (maxcolor, lower bound, elapsed, worker, status).
* :mod:`~repro.engine.runlog` — JSONL streaming of records
  (:class:`RunLogWriter`, :func:`read_run_log`) and regression diffing
  between runs (:func:`diff_run_logs`).
"""

from repro.engine.executor import CellTimeout, resolve_jobs, run_grid
from repro.engine.records import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from repro.engine.runlog import RunLogWriter, diff_run_logs, read_run_log

__all__ = [
    "CellTimeout",
    "RunLogWriter",
    "RunRecord",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "diff_run_logs",
    "read_run_log",
    "resolve_jobs",
    "run_grid",
]
