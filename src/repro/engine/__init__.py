"""Batch execution engine for (instance × algorithm) grids.

Contents:

* :mod:`~repro.engine.executor` — :func:`run_grid`: chunked fan-out of a
  suite's cells across a supervised process pool, with per-worker instance
  reuse, per-cell failure isolation, crash recovery (pool restarts with
  bounded per-cell retries and chunk splitting), and ``resume_from=`` replay
  of an interrupted run log; serial execution is ``jobs=1`` of the same
  code path.  Results come back as a :class:`GridResult` (a ``list`` of
  records plus supervision counters).  The supervision machinery itself is
  exposed as :func:`run_supervised`, generic over the chunked workload —
  :mod:`repro.tiling` fans tile interiors through it.
* :mod:`~repro.engine.records` — :class:`RunRecord`, the structured outcome
  of one cell (maxcolor, lower bound, elapsed, worker, status).
* :mod:`~repro.engine.runlog` — JSONL streaming of records
  (:class:`RunLogWriter`, :func:`read_run_log`) and regression diffing
  between runs (:func:`diff_run_logs`).
"""

from repro.engine.executor import (
    CellTimeout,
    GridResult,
    resolve_jobs,
    run_grid,
    run_supervised,
)
from repro.engine.records import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from repro.engine.runlog import RunLogWriter, diff_run_logs, read_run_log

__all__ = [
    "CellTimeout",
    "GridResult",
    "RunLogWriter",
    "RunRecord",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "diff_run_logs",
    "read_run_log",
    "resolve_jobs",
    "run_grid",
    "run_supervised",
]
