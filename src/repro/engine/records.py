"""Structured outcomes of one (instance, algorithm) execution cell.

Every cell the batch engine runs — serial or parallel — produces exactly one
:class:`RunRecord`, whether the algorithm succeeded, raised, or timed out.
Records are plain data (JSON-serializable), so a suite run can be streamed to
a JSONL log and diffed against a later run for quality regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Cell statuses.  ``ok`` means a validated coloring was produced; ``error``
#: covers algorithm exceptions, validation failures, and worker crashes;
#: ``timeout`` marks a cell killed by the per-cell time limit.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


@dataclass(frozen=True)
class RunRecord:
    """One executed cell of the (instance × algorithm) grid.

    Attributes
    ----------
    instance_index:
        Position of the instance in the suite's run order.
    instance:
        The instance's name (free-form label).
    shape:
        Stencil grid shape, or ``None`` for general-graph instances.
    algorithm:
        Registry name of the heuristic that ran.
    status:
        ``"ok"``, ``"error"``, or ``"timeout"``.
    maxcolor:
        Colors used by the produced coloring (``None`` unless ``ok``).
    lower_bound:
        The instance's combined lower bound (computed once per instance per
        worker and shared across its cells).
    elapsed:
        Wall-clock seconds spent on this cell.
    worker:
        Identifier of the executing worker process (``pid-<n>``).
    error:
        ``"ExcType: message"`` for failed cells, else ``None``.
    starts:
        The coloring's start vector (only when the engine ran with
        ``capture_starts=True``; used to rebuild ``Coloring`` objects in the
        parent process).
    """

    instance_index: int
    instance: str
    shape: Optional[tuple[int, ...]]
    algorithm: str
    status: str
    maxcolor: Optional[int] = None
    lower_bound: Optional[int] = None
    elapsed: float = 0.0
    worker: str = ""
    error: Optional[str] = None
    starts: Optional[tuple[int, ...]] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the cell produced a valid coloring."""
        return self.status == STATUS_OK

    def to_json(self) -> dict[str, Any]:
        """A JSON-serializable dict (tuples become lists)."""
        return {
            "instance_index": self.instance_index,
            "instance": self.instance,
            "shape": list(self.shape) if self.shape is not None else None,
            "algorithm": self.algorithm,
            "status": self.status,
            "maxcolor": self.maxcolor,
            "lower_bound": self.lower_bound,
            "elapsed": self.elapsed,
            "worker": self.worker,
            "error": self.error,
            "starts": list(self.starts) if self.starts is not None else None,
        }

    @classmethod
    def from_json(cls, obj: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_json`."""
        return cls(
            instance_index=int(obj["instance_index"]),
            instance=obj["instance"],
            shape=tuple(obj["shape"]) if obj.get("shape") is not None else None,
            algorithm=obj["algorithm"],
            status=obj["status"],
            maxcolor=obj.get("maxcolor"),
            lower_bound=obj.get("lower_bound"),
            elapsed=float(obj.get("elapsed", 0.0)),
            worker=obj.get("worker", ""),
            error=obj.get("error"),
            starts=tuple(obj["starts"]) if obj.get("starts") is not None else None,
        )
