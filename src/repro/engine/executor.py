"""The batch execution engine: fan an (instance × algorithm) grid over workers.

The grid of a suite run is flattened into cells, chunked, and submitted to a
``concurrent.futures.ProcessPoolExecutor``.  The full instance list is shipped
to each worker exactly once (through the pool initializer), so workers reuse
constructed instances and geometry across all of their cells, and cache the
per-instance lower bound the first time any cell of that instance runs.

Failure isolation is per cell: an algorithm that raises — or exceeds the
optional per-cell time limit — yields an ``error``/``timeout``
:class:`~repro.engine.records.RunRecord` while every other cell proceeds.

**Pool supervision.**  A worker process dying outright (segfault, OOM kill,
``kill -9``) breaks the whole ``ProcessPoolExecutor``: every in-flight chunk
raises ``BrokenProcessPool``, not just the chunk the dead worker held.  The
engine treats that as recoverable.  Workers journal a ``start``/``done``
mark per cell to a per-pool file, so after a break the supervisor knows
which cells were actually mid-execution (at most ``jobs`` of them) — those
become *suspects*, while every other lost cell is requeued intact, free of
charge.  Suspects re-run one at a time, alone in a fresh pool, once the
ordinary queue drains: a break then has certain blame, and only there is
retry budget (``max_cell_retries`` extra attempts per cell) charged.  A
suspect crashing past its budget becomes a crash record; with
``max_cell_retries=0`` every cell lost to a break fails fast instead.
Because blame never attaches by co-location, a poison cell cannot burn the
budget of cells that merely shared its pool, and the outcome is independent
of pool scheduling.  The supervision counters are
returned on the result (:class:`GridResult`: ``pool_restarts``,
``cells_retried``, ``cells_resumed``).

**Resume.**  ``resume_from=`` points at an existing JSONL run log (typically
the ``log_path`` of a run that was killed part-way); cells the log already
holds with ``ok`` or ``timeout`` status are adopted verbatim and only
missing/``error`` cells execute.  Because every registry algorithm is
deterministic, a resumed grid is bit-identical to an uninterrupted one.

Serial execution is ``jobs=1`` of the same code path: the identical
initializer and chunk runner execute in-process (streaming the run log cell
by cell, so a killed serial run leaves an adoptable prefix just like a
killed pool), so parallel and serial runs are byte-identical in everything
but ``elapsed`` and ``worker``.

Chaos hooks: each cell attempt passes through the ``engine.cell`` fault
injection site (:mod:`repro.resilience.faults`) with token
``"<instance>:<algorithm>#<attempt>"`` — ``crash`` kills the worker process,
``error`` raises inside the cell, ``slow`` sleeps before computing.
"""

from __future__ import annotations

import math
import os
import signal
import tempfile
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator, Optional, Sequence

from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance
from repro.engine.records import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from repro.engine.runlog import RunLogWriter, read_run_log
from repro.obs.metrics import merge_snapshots
from repro.resilience.faults import inject
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext, get_context, set_default_context

#: A cell is ``(position in the flattened grid, instance index, algorithm,
#: attempt number)``.  The attempt number is 0 on first submission and grows
#: by one each time the cell is resubmitted after a pool crash, so fault
#: injection and diagnostics can tell retries apart.
Cell = tuple[int, int, str, int]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class GridResult(list):
    """The records of a grid run plus the supervision counters.

    A plain ``list[RunRecord]`` in grid order (instance-major), so every
    existing caller keeps working, with three extra attributes:

    ``pool_restarts``
        Times the worker pool was rebuilt after a worker death.
    ``cells_retried``
        Budget-charged retry attempts: re-runs granted to a cell after it
        crashed *alone* in the pool, where the blame was certain.  Cells
        requeued merely because they shared a broken pool are not counted.
    ``cells_resumed``
        Cells adopted from a ``resume_from=`` run log instead of executing.
    ``metrics``
        The merged metrics snapshot of every worker context that ran cells
        (counters summed, histograms merged bucket-by-bucket across
        processes; see :func:`repro.obs.metrics.merge_snapshots`).  For
        serial runs it is the snapshot of the run's own context — which,
        when no explicit ``context=`` was given, is the ambient one and so
        cumulative over the process.
    """

    pool_restarts: int = 0
    cells_retried: int = 0
    cells_resumed: int = 0
    metrics: Optional[dict] = None


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds the per-cell time limit."""


@contextmanager
def _time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Interrupt the enclosed block after ``seconds`` via ``SIGALRM``.

    A no-op when no limit is set, off the main thread, or on platforms
    without ``SIGALRM`` (the engine then simply has no timeout support).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {seconds:g}s time limit")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _WorkerState:
    """Per-worker-process state, installed by the pool initializer."""

    instances: Sequence[IVCInstance]
    validate: bool
    cell_timeout: Optional[float]
    capture_starts: bool
    fast_paths: Optional[bool] = None
    context: Optional[ExecutionContext] = None
    journal: Optional[object] = None
    bounds: dict[int, int] = field(default_factory=dict)
    chunks_done: int = 0

    def lower_bound_of(self, index: int) -> int:
        if index not in self.bounds:
            self.bounds[index] = lower_bound(self.instances[index])
        return self.bounds[index]


_STATE: Optional[_WorkerState] = None


def _init_worker(
    instances: Sequence[IVCInstance],
    validate: bool,
    cell_timeout: Optional[float],
    capture_starts: bool,
    fast_paths: Optional[bool] = None,
    config: Optional[RuntimeConfig] = None,
    journal_path: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> None:
    """Pool initializer: receive the instance list once per worker.

    Each worker builds its own :class:`ExecutionContext` from the shipped
    (picklable) :class:`RuntimeConfig` and installs it as the process
    default, so every cell colored in this worker shares one substrate cache
    (:mod:`repro.kernels.substrate`) — repeated shapes in a suite reuse
    adjacency/offset tables within the worker for the whole run — and lands
    its counters in the worker's own metrics registry (shipped back to the
    parent with each chunk).  The context's fault spec, if any, is installed
    too; an empty spec leaves fork-inherited plans untouched.

    The serial path passes ``context`` directly instead of ``config`` and
    does *not* replace the process default.

    ``journal_path`` names the pool's shared start/done journal (each worker
    appends through its own ``O_APPEND`` descriptor, line-buffered, so the
    short marks interleave whole).  ``None`` — the serial path — disables
    journalling.
    """
    global _STATE
    if context is None:
        if config is not None:
            context = ExecutionContext(config)
            set_default_context(context)
            context.install_faults()
        else:
            context = get_context()
    _STATE = _WorkerState(
        instances=instances,
        validate=validate,
        cell_timeout=cell_timeout,
        capture_starts=capture_starts,
        fast_paths=fast_paths,
        context=context,
        journal=(
            open(journal_path, "a", buffering=1) if journal_path is not None else None
        ),
    )


def _run_cell(
    state: _WorkerState, pos: int, index: int, name: str, attempt: int = 0
) -> RunRecord:
    """Execute one (instance, algorithm) cell, never letting exceptions out."""
    from repro.core.algorithms.registry import color_with

    instance = state.instances[index]
    shape = tuple(instance.geometry.shape) if instance.geometry is not None else None
    base = dict(
        instance_index=index,
        instance=instance.name,
        shape=shape,
        algorithm=name,
        worker=f"pid-{os.getpid()}",
    )
    metrics = state.context.metrics if state.context is not None else None
    t0 = perf_counter()
    bound: Optional[int] = None
    try:
        inject("engine.cell", f"{instance.name}:{name}#{attempt}")
        bound = state.lower_bound_of(index)
        with _time_limit(state.cell_timeout):
            coloring = color_with(
                instance, name, fast=state.fast_paths, context=state.context
            )
            if state.validate:
                coloring.check()
        if coloring.maxcolor < bound:
            raise AssertionError(
                f"{name} beat the lower bound on {instance.name!r} — bound bug"
            )
    except CellTimeout as exc:
        if metrics is not None:
            metrics.counter("engine.cells_timeout").inc()
        return RunRecord(
            status=STATUS_TIMEOUT,
            lower_bound=bound,
            elapsed=perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
            **base,
        )
    except Exception as exc:
        if metrics is not None:
            metrics.counter("engine.cells_error").inc()
        return RunRecord(
            status=STATUS_ERROR,
            lower_bound=bound,
            elapsed=perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
            **base,
        )
    if metrics is not None:
        metrics.counter("engine.cells_ok").inc()
        metrics.histogram("engine.cell_seconds").observe(perf_counter() - t0)
    return RunRecord(
        status=STATUS_OK,
        maxcolor=coloring.maxcolor,
        lower_bound=bound,
        elapsed=coloring.elapsed,
        starts=tuple(int(s) for s in coloring.starts) if state.capture_starts else None,
        **base,
    )


def _run_chunk(cells: Sequence[Cell]) -> dict:
    """Run a chunk of cells against the installed worker state.

    Each cell is bracketed by ``start``/``done`` journal marks: a cell whose
    ``start`` has no ``done`` when the pool breaks was mid-execution in the
    dead (or torn-down) worker, which is how the supervisor tells suspects
    from cells that were merely queued behind them.

    Returns a payload carrying the ``(pos, record)`` pairs plus the worker's
    pid, a per-worker chunk sequence number, and its *cumulative*
    context-metrics snapshot (with histogram bucket state); the parent keeps
    the highest-sequence snapshot per pid and merges them into
    :attr:`GridResult.metrics` at the end.  The sequence number matters:
    chunk completions arrive at the parent in no particular order, so
    without it a worker's older (smaller) cumulative snapshot could
    overwrite its newer one and undercount the merge.
    """
    assert _STATE is not None, "worker state missing — initializer did not run"
    out = []
    for pos, index, name, attempt in cells:
        if _STATE.journal is not None:
            _STATE.journal.write(f"start {pos}\n")
        out.append((pos, _run_cell(_STATE, pos, index, name, attempt)))
        if _STATE.journal is not None:
            _STATE.journal.write(f"done {pos}\n")
    _STATE.chunks_done += 1
    snapshot = (
        _STATE.context.metrics.snapshot(include_state=True)
        if _STATE.context is not None
        else None
    )
    return {
        "pairs": out,
        "pid": os.getpid(),
        "seq": _STATE.chunks_done,
        "metrics": snapshot,
    }


def _chunked(cells: Sequence[Cell], chunk_size: int) -> list[list[Cell]]:
    return [list(cells[i : i + chunk_size]) for i in range(0, len(cells), chunk_size)]


def _crash_record(
    cell: Cell, instances: Sequence[IVCInstance], exc: BaseException
) -> tuple[int, RunRecord]:
    """The error record for one cell whose retry budget crashed away."""
    pos, index, name, attempt = cell
    instance = instances[index]
    shape = tuple(instance.geometry.shape) if instance.geometry is not None else None
    return (
        pos,
        RunRecord(
            instance_index=index,
            instance=instance.name,
            shape=shape,
            algorithm=name,
            status=STATUS_ERROR,
            error=(
                f"worker crashed on every attempt (x{attempt + 1}): "
                f"{type(exc).__name__}: {exc}"
            ),
        ),
    )


def _split_chunk(chunk: list[Cell]) -> list[list[Cell]]:
    """Halve a crashed chunk so a poison cell is progressively isolated."""
    if len(chunk) <= 1:
        return [chunk]
    mid = len(chunk) // 2
    return [chunk[:mid], chunk[mid:]]


def _read_journal(path: str) -> set[int]:
    """Grid positions whose ``start`` mark has no matching ``done``.

    These are the cells that were mid-execution when the pool broke — at
    most one per worker, and among them the cell whose worker actually died.
    A torn trailing line (the worker died mid-write) is skipped, not fatal.
    """
    try:
        text = Path(path).read_text()
    except OSError:
        return set()
    started: set[int] = set()
    done: set[int] = set()
    for line in text.splitlines():
        parts = line.split()
        if len(parts) != 2 or not parts[1].isdigit():
            continue
        if parts[0] == "start":
            started.add(int(parts[1]))
        elif parts[0] == "done":
            done.add(int(parts[1]))
    return started - done


def _adopt_resumed(
    resume_from: str | Path,
    instances: Sequence[IVCInstance],
    names: Sequence[str],
) -> dict[int, RunRecord]:
    """Completed cells of an earlier run log, keyed by grid position.

    Only records that still match the current grid are adopted: the
    instance index must hold the same instance name and the algorithm must
    be in this run's set.  ``ok`` and ``timeout`` cells count as completed
    (re-running a timeout would time out again); ``error`` cells — including
    crash records — are left to re-execute.  Later duplicates win, matching
    append order.
    """
    name_pos = {name: j for j, name in enumerate(names)}
    adopted: dict[int, RunRecord] = {}
    for record in read_run_log(resume_from):
        j = name_pos.get(record.algorithm)
        if j is None or not 0 <= record.instance_index < len(instances):
            continue
        if instances[record.instance_index].name != record.instance:
            continue
        if record.status not in (STATUS_OK, STATUS_TIMEOUT):
            continue
        adopted[record.instance_index * len(names) + j] = record
    return adopted


def run_supervised(
    chunks: list[list[tuple]],
    *,
    task,
    initializer,
    initargs: tuple,
    jobs: int,
    max_cell_retries: int,
    store,
    crash_record,
    counters,
) -> None:
    """Run chunks on a supervised pool, restarting it after worker deaths.

    Generic over the work being executed — the engine's grid cells and the
    tiler's tiles (:mod:`repro.tiling.stitch`) both run through here, so
    journal-based blame isolation, bounded per-cell retries, and chunk
    splitting come for free to any chunked workload.  The contract:

    * a *cell* is any tuple whose first element is its unique integer
      position (matching the start/done journal marks the ``task`` writes)
      and whose last element is the attempt counter (incremented here on
      budget-charged retries);
    * ``task(chunk)`` is a picklable callable returning a payload for
      ``store`` (the engine's ``_run_chunk`` shape: pairs + pid + metrics);
    * ``initializer(*initargs, journal_path)`` installs worker state — the
      supervisor appends the pool's journal path as the final argument;
    * ``crash_record(cell, exc)`` synthesizes the ``(pos, record)`` pair
      stored for a cell whose retry budget crashed away;
    * ``counters`` carries ``pool_restarts`` / ``cells_retried`` attributes
      (:class:`GridResult` satisfies this).

    One iteration of the outer loop is one pool lifetime.  Ordinary rounds
    submit every queued chunk, store completions as they arrive, and treat
    the first pool-level failure (``BrokenProcessPool`` &c.) as aborting the
    round: chunks that completed keep their results, and the workers'
    start/done journal identifies which of the lost cells were actually
    mid-execution (at most ``jobs`` of them).  Those become *suspects*;
    every other lost cell is requeued intact, free of charge — blame never
    attaches by co-location, so the outcome does not depend on which chunks
    happened to share the broken pool.

    Suspects run once the ordinary queue drains, one at a time, alone in a
    single-worker pool: a break then has certain blame, and only there is
    retry budget charged (``attempt`` advances, which re-rolls the
    ``engine.cell`` fault token — mirroring how a real poison cell behaves
    the same way every time it runs alone).  A suspect past its budget
    becomes a crash record; with ``max_cell_retries=0`` every cell lost to
    a break fails fast instead.

    If a break leaves no journal evidence (a worker died before its first
    mark reached the file), lost multi-cell chunks are halved and lost
    singletons become suspects, so isolation still converges.
    """
    queue = list(chunks)
    suspects: list[tuple] = []
    while queue or suspects:
        if queue:
            round_chunks, queue = queue, []
            alone: Optional[tuple] = None
        else:
            alone = suspects.pop(0)
            round_chunks = [[alone]]
        crashed: Optional[BaseException] = None
        lost_chunks: list[list[tuple]] = []
        journal_fd, journal_path = tempfile.mkstemp(prefix="repro-cell-journal-")
        os.close(journal_fd)
        try:
            with ProcessPoolExecutor(
                max_workers=1 if alone is not None else jobs,
                initializer=initializer,
                initargs=initargs + (journal_path,),
            ) as pool:
                futures: dict[Future, list[tuple]] = {}
                for chunk in round_chunks:
                    try:
                        futures[pool.submit(task, chunk)] = chunk
                    except Exception as exc:
                        # The pool broke while we were still submitting (a
                        # worker died on an earlier chunk): everything not
                        # yet submitted is lost the same way the in-flight
                        # chunks are.
                        crashed = exc
                        lost_chunks.append(chunk)
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        try:
                            store(future.result())
                        except Exception as exc:
                            # A worker died: this chunk's results are gone,
                            # and the pool is broken — every still-pending
                            # chunk will fail the same way.  Collect them
                            # all and rebuild.
                            crashed = exc
                            lost_chunks.append(futures[future])
                    if crashed is not None:
                        for future in pending:
                            try:
                                store(future.result())
                            except Exception:
                                lost_chunks.append(futures[future])
                        break
            if crashed is None:
                continue
            counters.pool_restarts += 1
            if alone is not None:
                # The pool held nothing but this cell: the blame is certain,
                # and this is the only place retry budget is charged.
                if alone[-1] >= max_cell_retries:
                    store([crash_record(alone, crashed)])
                else:
                    suspects.append(alone[:-1] + (alone[-1] + 1,))
                    counters.cells_retried += 1
                continue
            lost_cells = [cell for chunk in lost_chunks for cell in chunk]
            if max_cell_retries <= 0:
                store([crash_record(c, crashed) for c in lost_cells])
                continue
            culprits = _read_journal(journal_path) & {c[0] for c in lost_cells}
            if culprits:
                for chunk in lost_chunks:
                    suspects.extend(c for c in chunk if c[0] in culprits)
                    keep = [c for c in chunk if c[0] not in culprits]
                    if keep:
                        queue.append(keep)
            else:
                for chunk in lost_chunks:
                    if len(chunk) == 1:
                        suspects.append(chunk[0])
                    else:
                        queue.extend(_split_chunk(chunk))
        finally:
            try:
                os.unlink(journal_path)
            except OSError:
                pass


def run_grid(
    instances: Iterable[IVCInstance],
    algorithms: Sequence[str],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    validate: bool = True,
    cell_timeout: Optional[float] = None,
    capture_starts: bool = False,
    fast_paths: Optional[bool] = None,
    log_path: str | Path | None = None,
    max_cell_retries: Optional[int] = None,
    resume_from: str | Path | None = None,
    context: Optional[ExecutionContext] = None,
    metrics_state: bool = False,
) -> GridResult:
    """Run every algorithm on every instance, one :class:`RunRecord` per cell.

    Parameters
    ----------
    instances:
        The suite, in run order; shipped to each worker once and reused.
    algorithms:
        Registry names (paper set or extensions).
    jobs:
        Worker processes; ``None`` or ``0`` means ``os.cpu_count()``, ``1``
        runs the identical code path in-process.
    chunk_size:
        Cells per task submission; defaults to an even ~4-chunks-per-worker
        split (load balancing vs. submission overhead).
    validate:
        Check every produced coloring (cheap, vectorized).
    cell_timeout:
        Optional per-cell wall-clock limit in seconds (``SIGALRM``-based;
        ignored on platforms without it).  Exceeding cells record
        ``status="timeout"``.
    capture_starts:
        Attach each coloring's start vector to its record so callers can
        rebuild :class:`~repro.core.coloring.Coloring` objects.
    fast_paths:
        Per-cell kernel fast-path override forwarded to
        :func:`~repro.core.algorithms.registry.color_with`: ``True``/``False``
        forces the vectorized kernels on/off in every worker, ``None``
        (default) follows the run context's
        :class:`~repro.runtime.config.RuntimeConfig` fast-path mode (the
        explicit argument always beats the config, which beats the
        environment).
    log_path:
        Stream records to this JSONL file as cells complete.
    max_cell_retries:
        Extra attempts each cell gets after crashing a pool it had all to
        itself (``jobs > 1`` only).  After a worker death the start/done
        journal identifies the cells that were mid-execution; those re-run
        alone in a rebuilt pool — where a crash has certain blame and
        charges this budget — while every other lost cell is requeued
        intact for free.  ``0`` restores fail-fast crash records for every
        lost cell; ``None`` (default) follows the run context's
        ``config.max_cell_retries``.
    resume_from:
        Path to an existing JSONL run log; its ``ok``/``timeout`` cells are
        adopted verbatim (not re-executed and *not* re-written to
        ``log_path``, so resuming with ``log_path == resume_from`` appends
        only the newly executed cells) and only missing/``error`` cells run.
    context:
        The :class:`ExecutionContext` governing the run.  Its (picklable)
        config is shipped to every worker, which rebuilds a context of its
        own around it; worker metrics snapshots are merged into
        :attr:`GridResult.metrics`.  ``None`` uses the ambient context.
    metrics_state:
        Keep raw histogram bucket state on :attr:`GridResult.metrics` so the
        snapshot can be merged again later (campaign harvests fold one
        snapshot per run session).  The default plain snapshot carries
        summaries only.

    Returns
    -------
    GridResult
        A ``list[RunRecord]`` in grid order — instance-major, then
        ``algorithms`` order, identical regardless of ``jobs`` — carrying
        ``pool_restarts`` / ``cells_retried`` / ``cells_resumed`` counters.
    """
    ctx = context if context is not None else get_context()
    instances = list(instances)
    names = list(algorithms)
    records: list[Optional[RunRecord]] = [None] * (len(instances) * len(names))
    result = GridResult()
    retries = (
        ctx.config.max_cell_retries if max_cell_retries is None else max_cell_retries
    )

    if resume_from is not None:
        for pos, record in _adopt_resumed(resume_from, instances, names).items():
            records[pos] = record
            result.cells_resumed += 1

    cells: list[Cell] = [
        (i * len(names) + j, i, name, 0)
        for i in range(len(instances))
        for j, name in enumerate(names)
        if records[i * len(names) + j] is None
    ]
    jobs = min(resolve_jobs(jobs), max(1, len(cells)))

    writer = RunLogWriter(log_path) if log_path is not None else None
    worker_snaps: dict[int, tuple[int, dict]] = {}  # pid -> (seq, snapshot)

    def store(payload) -> None:
        if isinstance(payload, dict):  # a chunk payload from _run_chunk
            if payload["metrics"] is not None:
                held = worker_snaps.get(payload["pid"])
                if held is None or payload["seq"] > held[0]:
                    worker_snaps[payload["pid"]] = (
                        payload["seq"],
                        payload["metrics"],
                    )
            pairs: Iterable[tuple[int, RunRecord]] = payload["pairs"]
        else:  # a bare pair list (crash records synthesized by the parent)
            pairs = payload
        for pos, record in pairs:
            records[pos] = record
            if writer is not None:
                writer.write(record)

    try:
        if not cells:
            pass  # fully resumed — nothing to execute
        elif jobs == 1:
            _init_worker(
                instances,
                validate,
                cell_timeout,
                capture_starts,
                fast_paths,
                context=ctx,
            )
            try:
                # Stream cell by cell (chunk_size 1 unless asked otherwise)
                # so the run log grows as cells complete — a killed serial
                # run leaves an adoptable prefix, same as a killed pool.
                for chunk in _chunked(cells, chunk_size or 1):
                    store(_run_chunk(chunk))
            finally:
                global _STATE
                _STATE = None
        else:
            if chunk_size is None:
                chunk_size = max(1, math.ceil(len(cells) / (jobs * 4)))
            run_supervised(
                _chunked(cells, chunk_size),
                task=_run_chunk,
                initializer=_init_worker,
                initargs=(instances, validate, cell_timeout, capture_starts,
                          fast_paths, ctx.config),
                jobs=jobs,
                max_cell_retries=max(0, int(retries)),
                store=store,
                crash_record=lambda cell, exc: _crash_record(
                    cell, instances, exc
                ),
                counters=result,
            )
    finally:
        if writer is not None:
            writer.close()

    assert all(r is not None for r in records)
    result.metrics = merge_snapshots(
        (snap for _, snap in worker_snaps.values()), include_state=metrics_state
    )
    result.extend(records)
    return result
