"""The batch execution engine: fan an (instance × algorithm) grid over workers.

The grid of a suite run is flattened into cells, chunked, and submitted to a
``concurrent.futures.ProcessPoolExecutor``.  The full instance list is shipped
to each worker exactly once (through the pool initializer), so workers reuse
constructed instances and geometry across all of their cells, and cache the
per-instance lower bound the first time any cell of that instance runs.

Failure isolation is per cell: an algorithm that raises — or exceeds the
optional per-cell time limit — yields an ``error``/``timeout``
:class:`~repro.engine.records.RunRecord` while every other cell proceeds.  A
worker process dying outright (segfault, OOM kill) costs only the cells of its
in-flight chunk, which are recorded as errors.

Serial execution is ``jobs=1`` of the same code path: the identical
initializer and chunk runner execute in-process, so parallel and serial runs
are byte-identical in everything but ``elapsed`` and ``worker``.
"""

from __future__ import annotations

import math
import os
import signal
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator, Optional, Sequence

from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance
from repro.engine.records import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from repro.engine.runlog import RunLogWriter

#: A cell is ``(position in the flattened grid, instance index, algorithm)``.
Cell = tuple[int, int, str]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds the per-cell time limit."""


@contextmanager
def _time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Interrupt the enclosed block after ``seconds`` via ``SIGALRM``.

    A no-op when no limit is set, off the main thread, or on platforms
    without ``SIGALRM`` (the engine then simply has no timeout support).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise CellTimeout(f"cell exceeded {seconds:g}s time limit")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class _WorkerState:
    """Per-worker-process state, installed by the pool initializer."""

    instances: Sequence[IVCInstance]
    validate: bool
    cell_timeout: Optional[float]
    capture_starts: bool
    fast_paths: Optional[bool] = None
    bounds: dict[int, int] = field(default_factory=dict)

    def lower_bound_of(self, index: int) -> int:
        if index not in self.bounds:
            self.bounds[index] = lower_bound(self.instances[index])
        return self.bounds[index]


_STATE: Optional[_WorkerState] = None


def _init_worker(
    instances: Sequence[IVCInstance],
    validate: bool,
    cell_timeout: Optional[float],
    capture_starts: bool,
    fast_paths: Optional[bool] = None,
) -> None:
    """Pool initializer: receive the instance list once per worker.

    Each worker lazily grows its own kernel substrate cache
    (:mod:`repro.kernels.substrate`) the first time a cell of a given shape
    runs, so repeated shapes in a suite reuse adjacency/offset tables within
    the worker for the whole run.
    """
    global _STATE
    _STATE = _WorkerState(
        instances=instances,
        validate=validate,
        cell_timeout=cell_timeout,
        capture_starts=capture_starts,
        fast_paths=fast_paths,
    )


def _run_cell(state: _WorkerState, pos: int, index: int, name: str) -> RunRecord:
    """Execute one (instance, algorithm) cell, never letting exceptions out."""
    from repro.core.algorithms.registry import color_with

    instance = state.instances[index]
    shape = tuple(instance.geometry.shape) if instance.geometry is not None else None
    base = dict(
        instance_index=index,
        instance=instance.name,
        shape=shape,
        algorithm=name,
        worker=f"pid-{os.getpid()}",
    )
    t0 = perf_counter()
    bound: Optional[int] = None
    try:
        bound = state.lower_bound_of(index)
        with _time_limit(state.cell_timeout):
            coloring = color_with(instance, name, fast=state.fast_paths)
            if state.validate:
                coloring.check()
        if coloring.maxcolor < bound:
            raise AssertionError(
                f"{name} beat the lower bound on {instance.name!r} — bound bug"
            )
    except CellTimeout as exc:
        return RunRecord(
            status=STATUS_TIMEOUT,
            lower_bound=bound,
            elapsed=perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
            **base,
        )
    except Exception as exc:
        return RunRecord(
            status=STATUS_ERROR,
            lower_bound=bound,
            elapsed=perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
            **base,
        )
    return RunRecord(
        status=STATUS_OK,
        maxcolor=coloring.maxcolor,
        lower_bound=bound,
        elapsed=coloring.elapsed,
        starts=tuple(int(s) for s in coloring.starts) if state.capture_starts else None,
        **base,
    )


def _run_chunk(cells: Sequence[Cell]) -> list[tuple[int, RunRecord]]:
    """Run a chunk of cells against the installed worker state."""
    assert _STATE is not None, "worker state missing — initializer did not run"
    return [(pos, _run_cell(_STATE, pos, index, name)) for pos, index, name in cells]


def _chunked(cells: Sequence[Cell], chunk_size: int) -> list[list[Cell]]:
    return [list(cells[i : i + chunk_size]) for i in range(0, len(cells), chunk_size)]


def _crash_records(cells: Iterable[Cell], instances: Sequence[IVCInstance], exc: BaseException) -> list[tuple[int, RunRecord]]:
    """Error records for every cell of a chunk whose worker died."""
    out = []
    for pos, index, name in cells:
        instance = instances[index]
        shape = tuple(instance.geometry.shape) if instance.geometry is not None else None
        out.append(
            (
                pos,
                RunRecord(
                    instance_index=index,
                    instance=instance.name,
                    shape=shape,
                    algorithm=name,
                    status=STATUS_ERROR,
                    error=f"worker crashed: {type(exc).__name__}: {exc}",
                ),
            )
        )
    return out


def run_grid(
    instances: Iterable[IVCInstance],
    algorithms: Sequence[str],
    *,
    jobs: Optional[int] = 1,
    chunk_size: Optional[int] = None,
    validate: bool = True,
    cell_timeout: Optional[float] = None,
    capture_starts: bool = False,
    fast_paths: Optional[bool] = None,
    log_path: str | Path | None = None,
) -> list[RunRecord]:
    """Run every algorithm on every instance, one :class:`RunRecord` per cell.

    Parameters
    ----------
    instances:
        The suite, in run order; shipped to each worker once and reused.
    algorithms:
        Registry names (paper set or extensions).
    jobs:
        Worker processes; ``None`` or ``0`` means ``os.cpu_count()``, ``1``
        runs the identical code path in-process.
    chunk_size:
        Cells per task submission; defaults to an even ~4-chunks-per-worker
        split (load balancing vs. submission overhead).
    validate:
        Check every produced coloring (cheap, vectorized).
    cell_timeout:
        Optional per-cell wall-clock limit in seconds (``SIGALRM``-based;
        ignored on platforms without it).  Exceeding cells record
        ``status="timeout"``.
    capture_starts:
        Attach each coloring's start vector to its record so callers can
        rebuild :class:`~repro.core.coloring.Coloring` objects.
    fast_paths:
        Per-cell kernel fast-path override forwarded to
        :func:`~repro.core.algorithms.registry.color_with`: ``True``/``False``
        forces the vectorized kernels on/off in every worker, ``None``
        (default) follows each worker's process-wide switch.
    log_path:
        Stream records to this JSONL file as cells complete.

    Returns
    -------
    list[RunRecord]
        In grid order: instance-major, then ``algorithms`` order — identical
        regardless of ``jobs``.
    """
    instances = list(instances)
    names = list(algorithms)
    cells: list[Cell] = [
        (i * len(names) + j, i, name)
        for i in range(len(instances))
        for j, name in enumerate(names)
    ]
    records: list[Optional[RunRecord]] = [None] * len(cells)
    jobs = min(resolve_jobs(jobs), max(1, len(cells)))

    writer = RunLogWriter(log_path) if log_path is not None else None

    def store(pairs: Iterable[tuple[int, RunRecord]]) -> None:
        for pos, record in pairs:
            records[pos] = record
            if writer is not None:
                writer.write(record)

    try:
        if jobs == 1:
            _init_worker(instances, validate, cell_timeout, capture_starts, fast_paths)
            try:
                store(_run_chunk(cells))
            finally:
                global _STATE
                _STATE = None
        else:
            if chunk_size is None:
                chunk_size = max(1, math.ceil(len(cells) / (jobs * 4)))
            chunks = _chunked(cells, chunk_size)
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_worker,
                initargs=(instances, validate, cell_timeout, capture_starts, fast_paths),
            ) as pool:
                futures = {pool.submit(_run_chunk, chunk): chunk for chunk in chunks}
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        chunk = futures[future]
                        try:
                            store(future.result())
                        except Exception as exc:
                            # The worker died mid-chunk (BrokenProcessPool &c):
                            # its cells become error records, the rest of the
                            # suite keeps going.
                            store(_crash_records(chunk, instances, exc))
    finally:
        if writer is not None:
            writer.close()

    assert all(r is not None for r in records)
    return records  # type: ignore[return-value]
