"""JSONL persistence for :class:`~repro.engine.records.RunRecord` streams.

One record per line, appended and flushed as cells complete, so a killed run
still leaves a readable prefix.  :func:`diff_run_logs` compares two logs cell
by cell for quality-regression checks between code revisions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Optional

from repro.engine.records import RunRecord


class RunLogWriter:
    """Append-mode JSONL writer, usable as a context manager.

    Parent directories are created on open; each :meth:`write` emits the full
    record line in a single buffered write and flushes it, so concurrent
    readers (``tail -f``, a monitoring job) see completed cells immediately
    and a killed process leaves at most one truncated trailing line — which
    :func:`read_run_log` tolerates.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = None

    def open(self) -> "RunLogWriter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a")
        return self

    def write(self, record: RunRecord) -> None:
        if self._handle is None:
            self.open()
        assert self._handle is not None
        self._handle.write(json.dumps(record.to_json()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunLogWriter":
        return self.open()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_run_log(path: str | Path, *, strict: bool = False) -> list[RunRecord]:
    """Load every record of a JSONL run log (blank lines skipped).

    A process killed mid-:meth:`RunLogWriter.write` (or a crash before the
    final flush reached disk) leaves a truncated last line.  By default that
    trailing partial line is silently dropped — the readable prefix is the
    run log — while a malformed line *before* the end still raises
    :class:`ValueError` (real corruption, not an interrupted append).  Pass
    ``strict=True`` to raise on any malformed line including the last.
    """
    lines = Path(path).read_text().splitlines()
    last_content = -1
    for idx, line in enumerate(lines):
        if line.strip():
            last_content = idx
    records: list[RunRecord] = []
    for idx, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(RunRecord.from_json(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if idx == last_content and not strict:
                break  # truncated trailing append — keep the clean prefix
            raise ValueError(
                f"corrupt run log {path}: line {idx + 1} is not a RunRecord ({exc})"
            ) from exc
    return records


def diff_run_logs(
    old: Iterable[RunRecord], new: Iterable[RunRecord]
) -> list[tuple[str, str, Optional[int], Optional[int]]]:
    """Cells whose outcome changed between two runs.

    Keyed by ``(instance name, algorithm)``; returns
    ``(instance, algorithm, old_maxcolor, new_maxcolor)`` tuples for cells
    present in both logs whose maxcolor (or status) differs — the regression
    diff between two revisions of the heuristics.
    """
    def index(records: Iterable[RunRecord]) -> dict[tuple[str, str], RunRecord]:
        return {(r.instance, r.algorithm): r for r in records}

    old_by_key = index(old)
    changed = []
    for key, new_rec in index(new).items():
        old_rec = old_by_key.get(key)
        if old_rec is None:
            continue
        if old_rec.maxcolor != new_rec.maxcolor or old_rec.status != new_rec.status:
            changed.append((key[0], key[1], old_rec.maxcolor, new_rec.maxcolor))
    return changed
