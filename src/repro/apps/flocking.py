"""Boids flocking simulation scheduled by stencil interval coloring.

The paper's introduction names bird-flocking simulations (Reynolds' boids)
as a motivating application: each boid steers by separation/alignment/
cohesion against neighbors within a perception radius.  Partitioning space
into regions at least twice that radius wide makes every interaction local
to a region and its 8 Moore neighbors.

Updates here are **in place**: a region task rewrites its own boids'
velocities from the *current* state of nearby boids.  Two neighboring
regions therefore race (one reads what the other writes), while regions two
apart never touch each other's perception range — the conflict graph is the
9-pt stencil, and a coloring orients a race-free task DAG.  For a fixed
coloring the DAG fixes every neighbor ordering, so the threaded execution is
bit-reproducible and equals the sequential creation-order execution (the
property the tests check).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stkde.runtime import task_dag_from_coloring


@dataclass
class FlockingSimulation:
    """A boids flock on a 2D rectangle with reflective walls.

    Parameters
    ----------
    positions, velocities:
        ``(N, 2)`` float arrays.
    radius:
        Perception radius; regions must be at least ``2 * radius`` wide.
    extent:
        ``(2, 2)`` per-axis bounds.
    separation, alignment, cohesion:
        Rule gains.
    max_speed:
        Velocity magnitude cap.
    """

    positions: np.ndarray
    velocities: np.ndarray
    radius: float
    extent: np.ndarray
    separation: float = 0.05
    alignment: float = 0.05
    cohesion: float = 0.01
    max_speed: float = 1.0
    grid_dims: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        if self.positions.shape != self.velocities.shape or self.positions.ndim != 2:
            raise ValueError("positions and velocities must both be (N, 2)")
        self.extent = np.ascontiguousarray(self.extent, dtype=np.float64)
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        lengths = self.extent[:, 1] - self.extent[:, 0]
        max_dims = np.maximum((lengths / (2.0 * self.radius)).astype(int), 1)
        if self.grid_dims is None:
            self.grid_dims = (int(max_dims[0]), int(max_dims[1]))
        if self.grid_dims[0] > max_dims[0] or self.grid_dims[1] > max_dims[1]:
            raise ValueError(
                f"regions {self.grid_dims} violate the 2x-radius rule (max {tuple(max_dims)})"
            )

    @property
    def num_boids(self) -> int:
        """Number of boids."""
        return len(self.positions)

    # --------------------------------------------------------------- regions
    def _assign_regions(self) -> np.ndarray:
        X, Y = self.grid_dims
        idx = np.empty((self.num_boids, 2), dtype=np.int64)
        for axis, dim in enumerate((X, Y)):
            lo, hi = self.extent[axis]
            scaled = (self.positions[:, axis] - lo) / (hi - lo) * dim
            idx[:, axis] = np.clip(scaled.astype(np.int64), 0, dim - 1)
        return idx[:, 0] * Y + idx[:, 1]

    def build_instance(self) -> tuple[IVCInstance, list[np.ndarray]]:
        """Current task graph: 9-pt stencil, weights = boids per region.

        Rebuilt every step since boids move between regions.
        """
        regions = self._assign_regions()
        num_regions = self.grid_dims[0] * self.grid_dims[1]
        counts = np.bincount(regions, minlength=num_regions)
        order = np.argsort(regions, kind="stable")
        splits = np.searchsorted(regions[order], np.arange(1, num_regions))
        members = list(np.split(order, splits))
        instance = IVCInstance.from_grid_2d(
            counts.reshape(self.grid_dims),
            name=f"flock-{self.grid_dims[0]}x{self.grid_dims[1]}",
        )
        return instance, members

    # ------------------------------------------------------------------ rules
    def _steer(self, ids: np.ndarray, neighbor_ids: np.ndarray) -> np.ndarray:
        """New velocities for ``ids`` from the current state of ``neighbor_ids``."""
        pos = self.positions[ids]
        vel = self.velocities[ids]
        npos = self.positions[neighbor_ids]
        nvel = self.velocities[neighbor_ids]
        delta = npos[None, :, :] - pos[:, None, :]
        dist_sq = (delta**2).sum(axis=2)
        mask = (dist_sq < self.radius**2) & (dist_sq > 0)
        counts = mask.sum(axis=1)
        steer = vel.copy()
        has = counts > 0
        if np.any(has):
            inv = np.where(mask, 1.0, 0.0)
            denom = np.maximum(counts, 1)[:, None]
            center = (inv[:, :, None] * npos[None, :, :]).sum(axis=1) / denom
            mean_vel = (inv[:, :, None] * nvel[None, :, :]).sum(axis=1) / denom
            away = -(inv[:, :, None] * delta).sum(axis=1) / denom
            steer = (
                vel
                + self.cohesion * (center - pos) * has[:, None]
                + self.alignment * (mean_vel - vel) * has[:, None]
                + self.separation * away * has[:, None]
            )
        speed = np.sqrt((steer**2).sum(axis=1, keepdims=True))
        factor = np.where(speed > self.max_speed, self.max_speed / np.maximum(speed, 1e-12), 1.0)
        return steer * factor

    def _region_neighborhood(self, region: int, members: list[np.ndarray]) -> np.ndarray:
        X, Y = self.grid_dims
        i, j = divmod(region, Y)
        parts = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                ni, nj = i + di, j + dj
                if 0 <= ni < X and 0 <= nj < Y:
                    parts.append(members[ni * Y + nj])
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def _update_region(self, region: int, members: list[np.ndarray]) -> None:
        """In-place velocity rewrite for one region (reads Moore neighbors)."""
        ids = members[region]
        if len(ids) == 0:
            return
        neighborhood = self._region_neighborhood(region, members)
        self.velocities[ids] = self._steer(ids, neighborhood)

    # -------------------------------------------------------------- execution
    def step_sequential(self, coloring: Coloring, members: list[np.ndarray], dt: float = 1.0) -> None:
        """Execute the colored DAG's creation order serially, then move."""
        dag = task_dag_from_coloring(coloring)
        for v in dag.creation_order:
            self._update_region(int(v), members)
        self._advance(dt)

    def step_threaded(
        self,
        coloring: Coloring,
        members: list[np.ndarray],
        dt: float = 1.0,
        num_workers: int = 4,
    ) -> None:
        """Execute the colored DAG on real threads, then move.

        Deterministic: the DAG serializes every pair of neighboring regions
        in creation order, and non-neighbors don't read each other's state.
        """
        coloring.check()
        dag = task_dag_from_coloring(coloring)
        n = coloring.instance.num_vertices
        indegree = dag.indegree.copy()
        lock = threading.Lock()
        done = threading.Event()
        active = [int(v) for v in dag.creation_order]
        remaining = [len(active)]
        if not active:
            done.set()
        with ThreadPoolExecutor(max_workers=num_workers) as pool:

            def run(v: int) -> None:
                self._update_region(v, members)
                newly_ready = []
                with lock:
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done.set()
                    for u in dag.successors[v]:
                        u = int(u)
                        indegree[u] -= 1
                        if indegree[u] == 0:
                            newly_ready.append(u)
                for u in newly_ready:
                    pool.submit(run, u)

            for v in active:
                if dag.indegree[v] == 0:
                    pool.submit(run, v)
            done.wait()
        self._advance(dt)

    def _advance(self, dt: float) -> None:
        """Move boids and reflect at the walls."""
        self.positions += dt * self.velocities
        for axis in range(2):
            lo, hi = self.extent[axis]
            below = self.positions[:, axis] < lo
            above = self.positions[:, axis] > hi
            self.positions[below, axis] = 2 * lo - self.positions[below, axis]
            self.positions[above, axis] = 2 * hi - self.positions[above, axis]
            self.velocities[below | above, axis] *= -1
        np.clip(self.positions, self.extent[:, 0], self.extent[:, 1], out=self.positions)

    # ------------------------------------------------------------- diagnostics
    def polarization(self) -> float:
        """Flock alignment metric in [0, 1]: norm of the mean heading."""
        speed = np.sqrt((self.velocities**2).sum(axis=1, keepdims=True))
        headings = self.velocities / np.maximum(speed, 1e-12)
        return float(np.sqrt((headings.mean(axis=0) ** 2).sum()))

    def copy(self) -> "FlockingSimulation":
        """Deep copy (for comparing execution strategies on identical state)."""
        return FlockingSimulation(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            radius=self.radius,
            extent=self.extent.copy(),
            separation=self.separation,
            alignment=self.alignment,
            cohesion=self.cohesion,
            max_speed=self.max_speed,
            grid_dims=self.grid_dims,
        )


def random_flock(
    num_boids: int,
    extent_size: float = 40.0,
    radius: float = 2.5,
    seed: int = 0,
) -> FlockingSimulation:
    """A random flock in a square box (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    extent = np.array([[0.0, extent_size], [0.0, extent_size]])
    positions = rng.uniform(0, extent_size, size=(num_boids, 2))
    velocities = rng.normal(scale=0.3, size=(num_boids, 2))
    return FlockingSimulation(
        positions=positions, velocities=velocities, radius=radius, extent=extent
    )
