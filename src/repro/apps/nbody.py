"""Short-range n-body solver scheduled by stencil interval coloring.

The setting of the paper's Figure 1: particles in a 2D box interact within a
cutoff radius; the box is partitioned rectilinearly into regions no smaller
than **twice the cutoff**, so a region's particles only interact with
particles of the region itself and its 8 Moore neighbors.  One region is one
task; forces are accumulated *symmetrically* (Newton's third law writes to
both particles), so tasks of neighboring regions write to shared particles
and must not run concurrently — the conflict graph is exactly a 9-pt
stencil.

Task weights are the per-region interaction-pair counts (the actual work),
refining the paper's point-count model.  Because force accumulation is
additive, any schedule that serializes neighbors produces the same total
forces, which the tests exploit by checking the threaded execution against
the O(N²) serial reference.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stkde.runtime import task_dag_from_coloring

#: Softening added to squared distances to keep forces finite.
SOFTENING = 1e-6


def _pair_force(delta: np.ndarray, dist_sq: np.ndarray, cutoff: float) -> np.ndarray:
    """Soft short-range repulsion: ``(1 - d/rc)² / d`` along ``delta``.

    Smoothly vanishes at the cutoff; purely repulsive, so the dynamics stay
    bounded.  Vectorized over pair arrays.
    """
    dist = np.sqrt(np.minimum(dist_sq, 4.0 * cutoff**2) + SOFTENING)
    mag = np.where(dist < cutoff, (1.0 - dist / cutoff) ** 2 / dist, 0.0)
    return delta * mag[..., None]


@dataclass
class NBodySystem:
    """Particles in a 2D periodic-free box with cutoff interactions.

    Parameters
    ----------
    positions:
        ``(N, 2)`` float array inside ``extent``.
    cutoff:
        Interaction radius; regions must be at least ``2 * cutoff`` wide.
    extent:
        ``(2, 2)`` per-axis ``(lo, hi)`` bounds.
    grid_dims:
        Region grid ``(X, Y)``; defaults to the finest legal decomposition.
    """

    positions: np.ndarray
    cutoff: float
    extent: np.ndarray
    grid_dims: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise ValueError("positions must be (N, 2)")
        self.extent = np.ascontiguousarray(self.extent, dtype=np.float64)
        if self.extent.shape != (2, 2):
            raise ValueError("extent must be (2, 2)")
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        lengths = self.extent[:, 1] - self.extent[:, 0]
        max_dims = np.maximum((lengths / (2.0 * self.cutoff)).astype(int), 1)
        if self.grid_dims is None:
            self.grid_dims = (int(max_dims[0]), int(max_dims[1]))
        if self.grid_dims[0] > max_dims[0] or self.grid_dims[1] > max_dims[1]:
            raise ValueError(
                f"regions {self.grid_dims} violate the 2x-cutoff rule (max {tuple(max_dims)})"
            )

    @property
    def num_particles(self) -> int:
        """Number of particles."""
        return len(self.positions)

    # ------------------------------------------------------------ partitioning
    @cached_property
    def particle_regions(self) -> np.ndarray:
        """Flat region id of every particle."""
        X, Y = self.grid_dims
        idx = np.empty((self.num_particles, 2), dtype=np.int64)
        for axis, dim in enumerate((X, Y)):
            lo, hi = self.extent[axis]
            scaled = (self.positions[:, axis] - lo) / (hi - lo) * dim
            idx[:, axis] = np.clip(scaled.astype(np.int64), 0, dim - 1)
        return idx[:, 0] * Y + idx[:, 1]

    @cached_property
    def region_particles(self) -> list[np.ndarray]:
        """Particle index arrays per region."""
        order = np.argsort(self.particle_regions, kind="stable")
        sorted_regions = self.particle_regions[order]
        num_regions = self.grid_dims[0] * self.grid_dims[1]
        splits = np.searchsorted(sorted_regions, np.arange(1, num_regions))
        return list(np.split(order, splits))

    @cached_property
    def instance(self) -> IVCInstance:
        """The 2DS-IVC task graph: weights are per-region pair counts.

        A region's work is the number of particle pairs it evaluates: pairs
        inside the region plus pairs against the four "forward" neighbor
        regions (each cross-region pair is owned by exactly one region).
        """
        X, Y = self.grid_dims
        counts = np.bincount(self.particle_regions, minlength=X * Y)
        grid = counts.reshape(X, Y)
        work = grid * (grid - 1) // 2
        # Forward neighbors (i, j+1), (i+1, j-1), (i+1, j), (i+1, j+1): each
        # cross-region pair is owned by exactly one region.
        for di, dj in ((0, 1), (1, -1), (1, 0), (1, 1)):
            i_lo, i_hi = max(0, -di), X - max(0, di)
            j_lo, j_hi = max(0, -dj), Y - max(0, dj)
            src = grid[i_lo:i_hi, j_lo:j_hi]
            dst = grid[i_lo + di : i_hi + di, j_lo + dj : j_hi + dj]
            work[i_lo:i_hi, j_lo:j_hi] += src * dst
        return IVCInstance.from_grid_2d(
            work, name=f"nbody-{X}x{Y}", metadata={"cutoff": self.cutoff}
        )

    # ----------------------------------------------------------------- forces
    def forces_serial(self) -> np.ndarray:
        """O(N²) reference force computation (all pairs within cutoff)."""
        pos = self.positions
        delta = pos[None, :, :] - pos[:, None, :]
        dist_sq = (delta**2).sum(axis=2)
        np.fill_diagonal(dist_sq, np.inf)
        forces = _pair_force(-delta, dist_sq, self.cutoff)
        return forces.sum(axis=1)

    def _region_task(self, region: int, forces: np.ndarray) -> None:
        """Accumulate the forces owned by one region (symmetric writes)."""
        X, Y = self.grid_dims
        i, j = divmod(region, Y)
        own = self.region_particles[region]
        if len(own) == 0:
            return
        # Intra-region pairs.
        self._accumulate_pairs(own, own, forces, same=True)
        # Forward neighbor regions (each cross pair evaluated exactly once).
        for di, dj in ((0, 1), (1, -1), (1, 0), (1, 1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < X and 0 <= nj < Y:
                other = self.region_particles[ni * Y + nj]
                if len(other):
                    self._accumulate_pairs(own, other, forces, same=False)

    def _accumulate_pairs(self, a_ids, b_ids, forces, same: bool) -> None:
        pos = self.positions
        delta = pos[b_ids][None, :, :] - pos[a_ids][:, None, :]
        dist_sq = (delta**2).sum(axis=2)
        if same:
            iu = np.triu_indices(len(a_ids), k=1)
            mask = np.zeros_like(dist_sq, dtype=bool)
            mask[iu] = True
        else:
            mask = np.ones_like(dist_sq, dtype=bool)
        mask &= dist_sq < self.cutoff**2
        ai, bi = np.nonzero(mask)
        if len(ai) == 0:
            return
        f = _pair_force(-delta[ai, bi], dist_sq[ai, bi], self.cutoff)
        np.add.at(forces, a_ids[ai], f)
        np.add.at(forces, b_ids[bi], -f)

    def forces_by_tasks(self, order: np.ndarray | None = None) -> np.ndarray:
        """Run every region task sequentially; equals the serial reference."""
        forces = np.zeros_like(self.positions)
        regions = order if order is not None else np.arange(self.instance.num_vertices)
        for region in regions:
            self._region_task(int(region), forces)
        return forces

    def forces_threaded(self, coloring: Coloring, num_workers: int = 4) -> np.ndarray:
        """Execute the colored task DAG on real threads (race-free writes).

        Neighboring regions share written particles, so the DAG serializes
        them; non-neighbors touch disjoint particles and run concurrently.
        """
        if coloring.instance.num_vertices != self.instance.num_vertices:
            raise ValueError("coloring does not match the region grid")
        coloring.check()
        dag = task_dag_from_coloring(coloring)
        n = self.instance.num_vertices
        forces = np.zeros_like(self.positions)
        indegree = dag.indegree.copy()
        lock = threading.Lock()
        done = threading.Event()
        remaining = [n]
        with ThreadPoolExecutor(max_workers=num_workers) as pool:

            def run(v: int) -> None:
                self._region_task(v, forces)
                newly_ready = []
                with lock:
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        done.set()
                    for u in dag.successors[v]:
                        u = int(u)
                        indegree[u] -= 1
                        if indegree[u] == 0:
                            newly_ready.append(u)
                for u in newly_ready:
                    pool.submit(run, u)

            if n == 0:
                done.set()
            for v in range(n):
                if dag.indegree[v] == 0:
                    pool.submit(run, v)
            done.wait()
        return forces

    def step(self, velocities: np.ndarray, dt: float, coloring: Coloring) -> np.ndarray:
        """One explicit Euler step using the colored parallel force pass.

        Returns the updated velocities; positions are updated in place and
        clamped to the extent.
        """
        forces = self.forces_threaded(coloring)
        velocities = velocities + dt * forces
        self.positions += dt * velocities
        np.clip(
            self.positions, self.extent[:, 0], self.extent[:, 1], out=self.positions
        )
        # Positions moved: invalidate the cached decomposition.
        self.__dict__.pop("particle_regions", None)
        self.__dict__.pop("region_particles", None)
        self.__dict__.pop("instance", None)
        return velocities
