"""Motivating applications from the paper's introduction.

Section I motivates stencil interval coloring with applications "where
objects are located in space and can impact the state of nearby objects" —
naming n-body solvers and bird-flocking simulations explicitly.  This
subpackage implements both on top of the coloring library:

* :mod:`~repro.apps.nbody` — short-range (cutoff) particle interactions
  with symmetric force accumulation; regions are 9-pt stencil tasks whose
  weights are pair-interaction counts.
* :mod:`~repro.apps.flocking` — a boids simulation whose in-place updates
  create read/write conflicts between Moore-neighbor regions.

Both expose the same pattern as the STKDE integration of Section VII: build
the region task graph, color it, and execute race-free on real threads via
the oriented task DAG.
"""

from repro.apps.flocking import FlockingSimulation
from repro.apps.nbody import NBodySystem

__all__ = ["FlockingSimulation", "NBodySystem"]
