"""Report builders for the paper's figures.

The benchmark files in ``benchmarks/`` are thin wrappers around these
functions, which assemble the text blocks (and data series) each figure
needs from a :class:`~repro.experiments.SuiteResult` or an STKDE
configuration.  Keeping them in the library makes the reports testable and
reusable from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.performance_profiles import (
    PerformanceProfile,
    profile_to_text,
)
from repro.analysis.regression import LinearFit, linear_fit
from repro.analysis.reporting import format_table
from repro.analysis.stats import (
    fraction_best,
    fraction_matching,
    mean_ratio_to,
    relative_slowdown,
    runtime_summary,
)
from repro.experiments import SuiteResult

#: The pure greedy colorings, for which the DAG's weighted critical path
#: equals maxcolor exactly.
PURE_FIRST_FIT = ("GLL", "GZO", "GLF", "GKF", "SGK")
#: The Figure 10 regression family: the pure greedies plus BDP (whose sweep
#: leaves it near-tight).  Raw BD is excluded — its maxcolor deliberately
#: over-counts its DAG depth (BD and BDP induce the same task graph).
FIRST_FIT_ALGORITHMS = PURE_FIRST_FIT + ("BDP",)


def suite_quality_report(result: SuiteResult, bound_label: str) -> str:
    """The Figure 5b/7b text block: profile + per-algorithm statistics."""
    prof = result.profile()
    lbs = [float(b) for b in result.lower_bounds]
    rows = []
    for name in result.algorithms:
        vals = [float(v) for v in result.maxcolors[name]]
        rows.append(
            (
                name,
                mean_ratio_to(vals, lbs),
                fraction_best(
                    {a: [float(v) for v in vs] for a, vs in result.maxcolors.items()},
                    name,
                ),
                fraction_matching(vals, lbs),
                float(np.sum(result.times[name])),
            )
        )
    return "\n".join(
        [
            f"instances: {result.num_instances}",
            "",
            profile_to_text(prof),
            "",
            format_table(
                (
                    "algorithm",
                    f"mean ratio to {bound_label}",
                    "ties best",
                    "provably optimal",
                    "total s",
                ),
                rows,
            ),
        ]
    )


def suite_runtime_report(result: SuiteResult) -> str:
    """The Figure 5a/7a text block: total/mean/max runtimes."""
    summary = runtime_summary(result.times)
    return format_table(
        ("algorithm", "total s", "mean ms", "max ms"),
        [
            (n, s["total"], s["mean"] * 1e3, s["max"] * 1e3)
            for n, s in summary.items()
        ],
    )


def per_dataset_report(result: SuiteResult, datasets: tuple[str, ...]) -> str:
    """The Figure 6/8 text block: one profile per dataset."""
    blocks = []
    for name in datasets:
        idx = result.indices_by_metadata("dataset", name)
        if not idx:
            continue
        sub = result.subset(idx)
        blocks.append(
            f"--- {name} ({sub.num_instances} instances) ---\n"
            + profile_to_text(sub.profile())
        )
    return "\n\n".join(blocks)


def bd_improvement_report(result: SuiteResult) -> str:
    """The §VI.B statistics block around BD/BDP and SGK."""
    lbs = [float(b) for b in result.lower_bounds]
    bd = np.array(result.maxcolors["BD"], dtype=float)
    bdp = np.array(result.maxcolors["BDP"], dtype=float)
    gain = (1 - bdp.sum() / bd.sum()) * 100
    return "\n".join(
        [
            f"BDP improves BD by {gain:.2f}% total colors (paper: ~2.49%)",
            f"SGK total-time overhead vs BDP: "
            f"{relative_slowdown(result.times, 'SGK', 'BDP'):.0f}% "
            "(paper: SGK slowest by 160-182%)",
            f"BDP mean ratio to clique bound: "
            f"{mean_ratio_to([float(v) for v in result.maxcolors['BDP']], lbs):.4f} "
            "(paper: ~1.03)",
        ]
    )


def three_d_statistics_report(result: SuiteResult) -> str:
    """The §VI.C headline statistics block (the Figure 7b extras)."""
    sgk = np.array(result.maxcolors["SGK"], dtype=float)
    glf = np.array(result.maxcolors["GLF"], dtype=float)
    bdp = np.array(result.maxcolors["BDP"], dtype=float)
    return "\n".join(
        [
            f"SGK vs GLF mean quality gain: {(1 - sgk.sum() / glf.sum()) * 100:.2f}% "
            "(paper: SGK ~0.57% better)",
            f"GLF speed advantage over SGK: "
            f"{relative_slowdown(result.times, 'SGK', 'GLF'):.0f}% slower SGK "
            "(paper: GLF 142% faster)",
            f"instances where BDP strictly beats SGK: "
            f"{float(np.mean(bdp < sgk)) * 100:.1f}% (paper: 18.1%)",
        ]
    )


def restrict_to_max_cells(result: SuiteResult, max_cells: int) -> SuiteResult:
    """Subset a suite to instances of at most ``max_cells`` vertices."""
    keep = [
        i
        for i, inst in enumerate(result.instances)
        if inst.num_vertices <= max_cells
    ]
    return result.subset(keep)


def vs_optimal_report(
    result: SuiteResult, label: str, time_limit: float = 5.0
) -> tuple[str, PerformanceProfile]:
    """The Figure 9a/9b text block: profile against MILP-proven optima.

    MILP-solves every instance of ``result`` (restrict with
    :func:`restrict_to_max_cells` first to keep it laptop-sized) and
    profiles the heuristics against the proven optima, exactly like §VI.D —
    the unsolved minority is excluded.  Requires real instances (a
    harvest-backed suite must rebuild them from its scenario spec first).
    """
    from repro.experiments import solve_suite_optimal

    solved, optima = solve_suite_optimal(result, time_limit=time_limit)
    sub = result.subset(solved)
    profile = sub.profile(best=[float(v) for v in optima])
    lines = [
        f"{label}: MILP solved {len(solved)}/{result.num_instances} instances "
        f"within {time_limit}s each (paper: 97.5% 2D / 83.1% 3D in a day)",
        "",
        profile_to_text(profile),
    ]
    lb_match = fraction_matching(
        [float(v) for v in optima], [float(b) for b in sub.lower_bounds]
    )
    lines += [
        "",
        f"max-clique bound == optimum on {lb_match * 100:.1f}% of solved "
        "instances (paper: ~95.7% 2D / ~97.4% 3D)",
    ]
    return "\n".join(lines), profile


def extension_report(result: SuiteResult) -> str:
    """The extension-heuristics table (future-work exploration bench)."""
    prof = result.profile()
    lbs = [float(b) for b in result.lower_bounds]
    rows = [
        (
            name,
            mean_ratio_to([float(v) for v in result.maxcolors[name]], lbs),
            float(np.sum(result.times[name])),
        )
        for name in result.algorithms
    ]
    return "\n".join(
        [
            f"instances: {result.num_instances}",
            "",
            profile_to_text(prof),
            "",
            format_table(("algorithm", "mean ratio to LB", "total s"), rows),
        ]
    )


def group_ratio_report(
    result: SuiteResult, group_key: str, note: str = ""
) -> str:
    """Total-colors-to-lower-bound ratios per metadata group × algorithm.

    One row per distinct ``metadata[group_key]`` value (in first-appearance
    order): for each algorithm, the summed maxcolors of the group's
    instances divided by the group's summed lower bounds.  This is the
    weight-regime ablation table — lower is better, and which algorithm
    family wins flips with the regime.
    """
    groups: list = []
    for inst in result.instances:
        value = inst.metadata.get(group_key)
        if value not in groups:
            groups.append(value)
    rows = []
    for value in groups:
        idx = result.indices_by_metadata(group_key, value)
        lb_total = sum(result.lower_bounds[i] for i in idx)
        rows.append(
            (
                value,
                *[
                    sum(result.maxcolors[name][i] for i in idx) / max(lb_total, 1)
                    for name in result.algorithms
                ],
            )
        )
    body = format_table((group_key, *result.algorithms), rows)
    return body + note


def scaling_report(result: SuiteResult, note: str = "") -> str:
    """Runtime growth per grid-side doubling (the complexity-claim table).

    Expects one instance per side with ``metadata["side"]`` set; reports
    per-algorithm milliseconds at each side plus the worst ratio between
    consecutive sides (cells quadruple per doubling, so a max ratio near 4
    means linear cost in cells/edges).
    """
    sides = sorted({int(inst.metadata["side"]) for inst in result.instances})
    index_of = {
        int(inst.metadata["side"]): i for i, inst in enumerate(result.instances)
    }
    rows = []
    for name in result.algorithms:
        times = [result.times[name][index_of[side]] for side in sides]
        ratios = [
            times[i + 1] / max(times[i], 1e-9) for i in range(len(sides) - 1)
        ]
        rows.append((name, *[t * 1e3 for t in times], max(ratios)))
    headers = ("algorithm", *(f"{s}x{s} ms" for s in sides), "max ratio/doubling")
    return format_table(headers, rows) + note


@dataclass(frozen=True)
class STKDEFigureRow:
    """One scatter point of a Figure 10 panel."""

    algorithm: str
    maxcolor: int
    makespan: float
    critical_path: float
    efficiency: float


@dataclass(frozen=True)
class STKDEFigure:
    """One Figure 10 panel: the scatter rows and both linear fits."""

    rows: tuple[STKDEFigureRow, ...]
    fit_first_fit: LinearFit
    fit_all: LinearFit
    total_work: float
    workers: int

    def to_text(self) -> str:
        table = format_table(
            ("algorithm", "maxcolor", "sim makespan", "critical path", "efficiency"),
            [
                (r.algorithm, r.maxcolor, r.makespan, r.critical_path, r.efficiency)
                for r in self.rows
            ],
        )
        return "\n".join(
            [
                table,
                "",
                f"total work {self.total_work:.0f} on P={self.workers} workers "
                f"(work-bound floor {self.total_work / self.workers:.0f})",
                f"linear fit, first-fit colorings: slope={self.fit_first_fit.slope:.4g} "
                f"r={self.fit_first_fit.rvalue:.3f}",
                f"linear fit, all colorings (BD outlier included): "
                f"slope={self.fit_all.slope:.4g} r={self.fit_all.rvalue:.3f}",
            ]
        )


def stkde_figure(instance, workers: int = 6, costs=None) -> STKDEFigure:
    """Run every coloring algorithm through the runtime simulator.

    The Figure 10 panel for one STKDE task-graph instance.
    """
    from repro.core.algorithms.registry import ALGORITHMS, color_with
    from repro.stkde.runtime import default_costs, simulate_schedule

    if costs is None:
        costs = default_costs(instance, per_point=1.0, overhead=0.02)
    rows = []
    for name in ALGORITHMS:
        coloring = color_with(instance, name)
        trace = simulate_schedule(coloring, num_workers=workers, costs=costs)
        rows.append(
            STKDEFigureRow(
                algorithm=name,
                maxcolor=coloring.maxcolor,
                makespan=trace.makespan,
                critical_path=trace.critical_path,
                efficiency=trace.parallel_efficiency,
            )
        )
    by_name = {r.algorithm: r for r in rows}
    ff = [by_name[a] for a in FIRST_FIT_ALGORITHMS if a in by_name]
    fit_ff = linear_fit([r.maxcolor for r in ff], [r.makespan for r in ff])
    fit_all = linear_fit([r.maxcolor for r in rows], [r.makespan for r in rows])
    active = instance.weights > 0
    total_work = float(np.asarray(costs)[active].sum())
    return STKDEFigure(
        rows=tuple(rows),
        fit_first_fit=fit_ff,
        fit_all=fit_all,
        total_work=total_work,
        workers=workers,
    )
