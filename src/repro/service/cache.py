"""Content-addressed result cache with LRU eviction and disk spill tiers.

Entries are keyed by :func:`~repro.service.protocol.content_key`, so a hit is
*definitionally* the correct coloring — the key commits to the stencil kind,
shape, weights, and algorithm, and every registry algorithm is deterministic.

The in-memory tier is a plain LRU of :class:`CacheEntry` values.  Two spill
backends exist below it:

* **JSONL file** (``spill_path``) — the single-process layout: evicted
  entries are appended to one JSONL file (flushed per append — the same
  append-safety contract as the engine run log) and indexed by byte offset;
  a memory miss that hits the index seeks, re-parses, and promotes.  The
  file is append-only and content-addressed, so a restart warm-starts from
  it via :meth:`ResultCache.load_spill`.
* **Shared directory** (``spill_dir``) — the cross-worker L2 tier behind
  ``stencil-ivc serve --workers N``: every entry is its own
  ``<key>.json`` file, written *write-through* on first insert via a
  temp-file + ``os.replace`` rename, so a write is atomic and a reader
  never sees a half-written entry.  The router's content-key hashing makes
  each worker the single writer for its keys, and because any worker may
  *read* any key, a cold or freshly restarted worker warm-starts from its
  siblings' results.

Corruption tolerance (both backends): a torn or corrupt spill entry (a
server killed mid-write, disk trouble, an injected ``cache.spill.write``
fault) is never fatal — the read degrades to a cache miss and the entry is
recomputed, and :meth:`load_spill` skips damaged entries while indexing the
rest.  Every such skip is *counted* (``spill_read_errors`` /
``spill_load_skipped`` in :meth:`stats`), so silent corruption shows up in
``/metrics`` instead of vanishing.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.resilience.faults import draw


@dataclass(frozen=True)
class CacheEntry:
    """One cached coloring: the start vector and its summary stats."""

    starts: np.ndarray
    maxcolor: int
    algorithm: str
    compute_seconds: float = 0.0

    def to_json(self, key: str) -> dict:
        return {
            "key": key,
            "starts": np.asarray(self.starts).ravel().tolist(),
            "shape": list(np.asarray(self.starts).shape),
            "maxcolor": int(self.maxcolor),
            "algorithm": self.algorithm,
            "compute_seconds": float(self.compute_seconds),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "CacheEntry":
        starts = np.asarray(obj["starts"], dtype=np.int64)
        shape = obj.get("shape")
        if shape:
            starts = starts.reshape(tuple(int(s) for s in shape))
        return cls(
            starts=starts,
            maxcolor=int(obj["maxcolor"]),
            algorithm=obj["algorithm"],
            compute_seconds=float(obj.get("compute_seconds", 0.0)),
        )


class ResultCache:
    """Thread-safe LRU of colorings with optional disk spill.

    ``capacity=0`` disables caching entirely (every :meth:`get` is a miss
    and :meth:`put` is a no-op) — the configuration the service benchmark
    uses for its uncached baseline.

    ``spill_dir`` selects the shared-directory L2 backend (one atomic
    file per key, write-through, readable by sibling workers) instead of
    the single-process JSONL ``spill_path`` backend; the two are mutually
    exclusive.
    """

    def __init__(
        self,
        capacity: int = 512,
        spill_path: Optional[str | Path] = None,
        max_spill_entries: int = 100_000,
        *,
        spill_dir: Optional[str | Path] = None,
    ) -> None:
        self.capacity = int(capacity)
        if spill_path and spill_dir:
            raise ValueError("spill_path and spill_dir are mutually exclusive")
        self.spill_path = Path(spill_path) if spill_path else None
        self.spill_dir = Path(spill_dir) if spill_dir else None
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._dir_written: set[str] = set()
        self.max_spill_entries = int(max_spill_entries)
        self._items: OrderedDict[str, CacheEntry] = OrderedDict()
        self._spill_index: dict[str, int] = {}
        self._spill_handle = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_hits = 0
        self.spilled = 0
        self.spill_read_errors = 0
        self.spill_load_skipped = 0

    # ------------------------------------------------------------------ tiers
    def get(self, key: str) -> Optional[CacheEntry]:
        """The cached entry for ``key``, or ``None`` (counted as a miss)."""
        return self._lookup(key, count_miss=True)

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Like :meth:`get` but an absence is *not* counted as a miss.

        The server's cache fast path probes here before admitting a
        request to the batcher; a fast-path miss falls through to the
        batcher's own :meth:`get`, which counts it exactly once.
        """
        return self._lookup(key, count_miss=False)

    def _lookup(self, key: str, *, count_miss: bool) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._items.get(key)
            if entry is not None:
                self.hits += 1
                self._items.move_to_end(key)
                return entry
            offset = self._spill_index.get(key)
        if self.spill_dir is not None:
            entry = self._read_dir(key)
        elif offset is not None:
            entry = self._read_spilled(key, offset)
        else:
            entry = None
        with self._lock:
            if entry is None:
                if count_miss:
                    self.misses += 1
                return None
            self.hits += 1
            self.spill_hits += 1
        self.put(key, entry)  # promote back to the memory tier
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry, spilling LRU victims to disk.

        With a shared ``spill_dir``, entries are written through on first
        insert instead of on eviction, so sibling workers (and a restarted
        self) can read them while they are still hot here.
        """
        if self.capacity <= 0:
            return
        victims: list[tuple[str, CacheEntry]] = []
        with self._lock:
            self._items[key] = entry
            self._items.move_to_end(key)
            while len(self._items) > self.capacity:
                victims.append(self._items.popitem(last=False))
                self.evictions += 1
        if self.spill_dir is not None:
            self._spill_dir(key, entry)
            return  # victims were already written through on insert
        for victim_key, victim in victims:
            self._spill(victim_key, victim)

    # ------------------------------------------------------------------ spill
    def _spill(self, key: str, entry: CacheEntry) -> None:
        if self.spill_path is None:
            return
        with self._lock:
            if key in self._spill_index or len(self._spill_index) >= self.max_spill_entries:
                return
            if self._spill_handle is None:
                self.spill_path.parent.mkdir(parents=True, exist_ok=True)
                self._spill_handle = self.spill_path.open("a")
            offset = self._spill_handle.tell()
            line = json.dumps(entry.to_json(key)) + "\n"
            fault = draw("cache.spill.write", key)
            if fault is not None and fault.kind == "corrupt":
                line = line[: max(1, len(line) // 2)] + "\n"
            elif fault is not None and fault.kind == "torn":
                line = line[: max(1, len(line) // 2)]
            self._spill_handle.write(line)
            self._spill_handle.flush()
            self._spill_index[key] = offset
            self.spilled += 1

    def _spill_dir(self, key: str, entry: CacheEntry) -> None:
        """Write-through one entry to the shared directory, atomically.

        The file is written under a worker-private temp name and moved into
        place with ``os.replace``, so sibling workers reading concurrently
        either see the whole entry or no file at all — never a torn one.
        Injected ``cache.spill.write`` faults corrupt the *content* (the
        rename itself stays atomic), exercising the reader's degradation.
        """
        assert self.spill_dir is not None
        with self._lock:
            if key in self._dir_written or len(self._dir_written) >= self.max_spill_entries:
                return
            self._dir_written.add(key)
        payload = json.dumps(entry.to_json(key))
        fault = draw("cache.spill.write", key)
        if fault is not None and fault.kind in ("corrupt", "torn"):
            payload = payload[: max(1, len(payload) // 2)]
        final = self.spill_dir / f"{key}.json"
        tmp = self.spill_dir / f".{key}.{os.getpid()}.tmp"
        try:
            tmp.write_text(payload)
            os.replace(tmp, final)
            with self._lock:
                self.spilled += 1
        except OSError:
            # Disk trouble degrades to "not spilled"; forget the key so a
            # later insert retries the write instead of assuming it landed.
            with self._lock:
                self._dir_written.discard(key)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover
                pass

    def _read_dir(self, key: str) -> Optional[CacheEntry]:
        """Read one entry from the shared directory; damage degrades to a miss."""
        assert self.spill_dir is not None
        path = self.spill_dir / f"{key}.json"
        try:
            text = path.read_text()
        except OSError:
            return None  # absent (or unreadable): a plain miss, not corruption
        try:
            obj = json.loads(text)
            if obj.get("key") != key:
                raise ValueError("spill file holds a different key")
            return CacheEntry.from_json(obj)
        except (json.JSONDecodeError, KeyError, ValueError, TypeError):
            with self._lock:
                self.spill_read_errors += 1
            try:  # drop the damaged file so the single writer can rewrite it
                path.unlink(missing_ok=True)
                with self._lock:
                    self._dir_written.discard(key)
            except OSError:  # pragma: no cover
                pass
            return None

    def _read_spilled(self, key: str, offset: int) -> Optional[CacheEntry]:
        if self.spill_path is None or not self.spill_path.exists():
            return None
        try:
            with self.spill_path.open() as handle:
                handle.seek(offset)
                obj = json.loads(handle.readline())
            if obj.get("key") != key:
                raise ValueError(f"spill line at {offset} holds a different key")
            return CacheEntry.from_json(obj)
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            # Torn/corrupt line: degrade to a miss (the entry is recomputed)
            # but count it so corruption is visible in stats()/metrics.
            with self._lock:
                self.spill_read_errors += 1
            return None

    def load_spill(self) -> int:
        """Index an existing spill file (warm start); returns entries indexed.

        Damaged lines — a truncated tail from a server killed mid-spill, or
        corrupt interior lines — are skipped (and counted in
        ``spill_load_skipped``) while every parseable entry is indexed;
        later duplicates of a key win, matching append order.

        With a shared ``spill_dir`` the directory *is* the index — this
        just enumerates ``*.json`` files (so ``max_spill_entries``
        accounting survives a restart) without parsing them; damage is
        detected, counted, and healed lazily on first read.
        """
        if self.spill_dir is not None:
            indexed = 0
            with self._lock:
                for path in self.spill_dir.glob("*.json"):
                    self._dir_written.add(path.stem)
                    indexed += 1
            return indexed
        if self.spill_path is None or not self.spill_path.exists():
            return 0
        indexed = 0
        with self._lock:
            with self.spill_path.open() as handle:
                while True:
                    offset = handle.tell()
                    line = handle.readline()
                    if not line:
                        break
                    if not line.strip():
                        continue
                    try:
                        obj = json.loads(line)
                        key = obj["key"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        self.spill_load_skipped += 1
                        continue  # damaged line — keep indexing the rest
                    self._spill_index[str(key)] = offset
                    indexed += 1
        return indexed

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._spill_handle is not None:
                self._spill_handle.close()
                self._spill_handle = None

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def stats(self) -> dict:
        """Counters and occupancy for the metrics snapshot."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "spill_hits": self.spill_hits,
                "spilled": self.spilled,
                "spill_read_errors": self.spill_read_errors,
                "spill_load_skipped": self.spill_load_skipped,
                "size": len(self._items),
                "capacity": self.capacity,
                "spill_index_size": (
                    len(self._dir_written)
                    if self.spill_dir is not None
                    else len(self._spill_index)
                ),
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
