"""Compatibility re-export of the metrics layer, which now lives in
:mod:`repro.obs.metrics`.

The registry was hoisted out of the service so engine workers and kernel
substrate caches can emit counters without importing the service package.
Import from :mod:`repro.obs` in new code; this module stays so existing
``from repro.service.metrics import MetricsRegistry`` call sites keep
working.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
]
