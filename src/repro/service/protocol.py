"""Typed request/response protocol of the online coloring service.

Wire format: newline-delimited JSON (one message per line) over a stream
transport.  Every request carries an ``op`` plus an optional client-chosen
``id`` echoed back in the response; responses carry a ``status``:

========== ============================================================
``op``      meaning
========== ============================================================
``color``   color a weight grid with a registry algorithm
``metrics`` snapshot the server's metrics registry (+ cache/substrate)
``ping``    liveness probe
``shutdown`` ask the server to drain and stop (used by tests/CI)
========== ============================================================

``status`` is one of ``ok``, ``error`` (algorithm raised / unknown),
``invalid`` (malformed request), ``timeout`` (deadline expired), or
``overloaded`` (admission queue full — backpressure, retry later).

Content addressing
------------------
:func:`content_key` canonically hashes ``(stencil kind, grid shape, weight
bytes, algorithm)``.  Options that cannot change the resulting coloring —
``fast`` (kernels are bit-identical to the reference), ``validate``,
deadlines, request ids — are deliberately *excluded*, so a cache keyed by
:func:`content_key` serves every equivalent request regardless of how it was
phrased.  Weights are canonicalized to C-contiguous ``int64`` before
hashing, so lists, ``int32`` arrays, and Fortran-ordered arrays of equal
content collide (as they must).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.runtime.fingerprint import content_key

#: Upper bound on one encoded message line (guards the server's readline).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: Response statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_INVALID = "invalid"
STATUS_TIMEOUT = "timeout"
STATUS_OVERLOADED = "overloaded"


class ProtocolError(ValueError):
    """A message that does not parse as a valid protocol frame."""


# content_key (imported above, re-exported for existing callers) moved to
# repro.runtime.fingerprint so the kernel substrate shares the same
# canonicalization; the digests are byte-identical, so spill files written
# by older servers still warm-start a new one.


@dataclass(frozen=True)
class ColorRequest:
    """One coloring request, decoded and validated.

    Attributes
    ----------
    weights:
        The 2D or 3D ``int64`` weight grid.
    algorithm:
        Registry name of the heuristic to run.
    fast:
        Kernel fast-path override forwarded to
        :func:`~repro.core.algorithms.registry.color_with` (``None`` follows
        the process switch).  Does not affect the coloring, only speed.
    validate:
        Run :meth:`~repro.core.coloring.Coloring.check` on the result before
        serving it.
    timeout:
        Client deadline in seconds from admission; expired requests are
        answered ``timeout`` without being computed.
    request_id:
        Client-chosen correlation id, echoed verbatim.
    """

    weights: np.ndarray
    algorithm: str
    fast: Optional[bool] = None
    validate: bool = False
    timeout: Optional[float] = None
    request_id: str = ""
    key: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.key:
            object.__setattr__(self, "key", content_key(self.weights, self.algorithm))

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(s) for s in self.weights.shape)

    @property
    def group(self) -> tuple:
        """The micro-batching group: same shape, same algorithm."""
        return (self.shape, self.algorithm)


@dataclass(frozen=True)
class ServedResult:
    """The outcome of one request, as resolved by the batcher.

    ``source`` records how the result was produced: ``computed`` (a kernel
    run), ``cache`` (content-addressed cache hit), or ``coalesced``
    (deduplicated against an identical request in the same micro-batch).
    """

    status: str
    starts: Optional[np.ndarray] = None
    maxcolor: Optional[int] = None
    source: str = ""
    compute_seconds: float = 0.0
    batch_size: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


# ------------------------------------------------------------------ encoding
def encode_message(message: dict[str, Any]) -> bytes:
    """One JSON message as a newline-terminated UTF-8 line."""
    data = json.dumps(message, separators=(",", ":")).encode()
    if len(data) + 1 > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_MESSAGE_BYTES} limit"
        )
    return data + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a message dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def request_to_wire(request: ColorRequest) -> dict[str, Any]:
    """A ``color`` op message for this request."""
    message: dict[str, Any] = {
        "op": "color",
        "id": request.request_id,
        "shape": list(request.shape),
        "weights": np.ascontiguousarray(request.weights, dtype=np.int64).ravel().tolist(),
        "algorithm": request.algorithm,
    }
    options: dict[str, Any] = {}
    if request.fast is not None:
        options["fast"] = bool(request.fast)
    if request.validate:
        options["validate"] = True
    if options:
        message["options"] = options
    if request.timeout is not None:
        message["timeout_ms"] = request.timeout * 1000.0
    return message


def request_from_wire(message: dict[str, Any]) -> ColorRequest:
    """Validate and decode a ``color`` op message.

    Raises
    ------
    ProtocolError
        On missing/ill-typed fields, non-2D/3D shapes, shape/weight length
        mismatches, or negative weights.
    """
    shape = message.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(s, int) and s > 0 for s in shape
    ):
        raise ProtocolError("'shape' must be a list of positive integers")
    if len(shape) not in (2, 3):
        raise ProtocolError(f"expected a 2D or 3D shape, got {len(shape)} dims")
    weights = message.get("weights")
    if not isinstance(weights, list):
        raise ProtocolError("'weights' must be a flat list of integers")
    expected = int(np.prod([int(s) for s in shape]))
    if len(weights) != expected:
        raise ProtocolError(
            f"expected {expected} weights for shape {tuple(shape)}, got {len(weights)}"
        )
    try:
        arr = np.asarray(weights, dtype=np.int64).reshape(tuple(shape))
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"weights are not int64 grid data: {exc}") from None
    if arr.size and arr.min() < 0:
        raise ProtocolError("weights must be non-negative")
    algorithm = message.get("algorithm")
    if not isinstance(algorithm, str) or not algorithm:
        raise ProtocolError("'algorithm' must be a non-empty string")
    options = message.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be an object")
    fast = options.get("fast")
    if fast is not None and not isinstance(fast, bool):
        raise ProtocolError("option 'fast' must be a boolean")
    validate = bool(options.get("validate", False))
    timeout_ms = message.get("timeout_ms")
    timeout: Optional[float] = None
    if timeout_ms is not None:
        if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
            raise ProtocolError("'timeout_ms' must be a positive number")
        timeout = float(timeout_ms) / 1000.0
    request_id = message.get("id", "")
    if not isinstance(request_id, str):
        request_id = str(request_id)
    return ColorRequest(
        weights=arr,
        algorithm=algorithm,
        fast=fast,
        validate=validate,
        timeout=timeout,
        request_id=request_id,
    )


def result_to_wire(
    result: ServedResult, request_id: str, extra: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """A response message for ``result`` (status-dependent fields)."""
    message: dict[str, Any] = {"id": request_id, "status": result.status}
    if result.ok:
        assert result.starts is not None
        message["starts"] = np.asarray(result.starts).ravel().tolist()
        message["maxcolor"] = int(result.maxcolor or 0)
        message["source"] = result.source
        message["compute_ms"] = result.compute_seconds * 1000.0
        message["batch_size"] = result.batch_size
    elif result.error:
        message["error"] = result.error
    if extra:
        message.update(extra)
    return message
