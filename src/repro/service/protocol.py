"""Typed request/response protocol of the online coloring service.

Wire format: newline-delimited JSON (one message per line) over a stream
transport.  Every request carries an ``op`` plus an optional client-chosen
``id`` echoed back in the response; responses carry a ``status``:

========== ============================================================
``op``      meaning
========== ============================================================
``color``   color a weight grid with a registry algorithm
``recolor`` seed or delta-update a server-held recolor session
``metrics`` snapshot the server's metrics registry (+ cache/substrate)
``ping``    liveness probe
``shutdown`` ask the server to drain and stop (used by tests/CI)
========== ============================================================

``status`` is one of ``ok``, ``error`` (algorithm raised / unknown),
``invalid`` (malformed request), ``timeout`` (deadline expired), or
``overloaded`` (admission queue full — backpressure, retry later).

The ``recolor`` op has two forms sharing one decoder
(:func:`recolor_from_wire`): a **seed** (``session`` + ``shape`` +
``weights`` + ``algorithm`` — the server colors the grid, stores it under
the session id, and answers with the full starts) and a **delta**
(``session`` + ``delta: {idx, weights}`` — *absolute* new weights at flat
indices, so a retried delta is idempotent; the server patches the held
coloring through :mod:`repro.incremental` and answers with only the
changed cells).  A delta naming a session the server no longer holds is
answered ``invalid`` with ``code: "unknown-session"`` on the *open*
connection — it is a state miss, not a protocol breach, and the client
recovers by re-seeding.

Versioning
----------
Canonical request frames carry ``"api": 1`` (:data:`PROTOCOL_API_VERSION`)
and mirror :func:`repro.api.color`'s vocabulary: a top-level ``runtime``
(``"auto"`` / ``"kernels"`` / ``"reference"`` / ``"tiled"``), an optional
``tiles`` tile-shape hint routing the request through the out-of-core
tiler, and a top-level ``validate``.  Legacy frames — no ``api`` field,
``options.fast`` instead of ``runtime`` — are accepted unchanged forever;
an ``api`` value other than ``1`` is refused as ``invalid`` rather than
half-understood.  ``docs/service.md`` tabulates the mapping.

Content addressing
------------------
:func:`content_key` canonically hashes ``(stencil kind, grid shape, weight
bytes, algorithm)``.  Options that cannot change the resulting coloring —
``fast`` (kernels are bit-identical to the reference), ``validate``,
deadlines, request ids — are deliberately *excluded*, so a cache keyed by
:func:`content_key` serves every equivalent request regardless of how it was
phrased.  Weights are canonicalized to C-contiguous ``int64`` before
hashing, so lists, ``int32`` arrays, and Fortran-ordered arrays of equal
content collide (as they must).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.runtime.fingerprint import content_key

#: Upper bound on one encoded message line (guards the server's readline).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: The canonical request-frame version this build speaks (``"api"`` field).
PROTOCOL_API_VERSION = 1

#: ``runtime`` values a canonical frame may carry, and the ``fast``
#: preference each maps onto (``"tiled"`` routes through the tiler instead).
_WIRE_RUNTIMES: dict[str, Optional[bool]] = {
    "auto": None,
    "kernels": True,
    "reference": False,
    "tiled": None,
}

#: Response statuses.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_INVALID = "invalid"
STATUS_TIMEOUT = "timeout"
STATUS_OVERLOADED = "overloaded"


class ProtocolError(ValueError):
    """A message that does not parse as a valid protocol frame."""


# content_key (imported above, re-exported for existing callers) moved to
# repro.runtime.fingerprint so the kernel substrate shares the same
# canonicalization; the digests are byte-identical, so spill files written
# by older servers still warm-start a new one.


@dataclass(frozen=True)
class ColorRequest:
    """One coloring request, decoded and validated.

    Attributes
    ----------
    weights:
        The 2D or 3D ``int64`` weight grid.
    algorithm:
        Registry name of the heuristic to run.
    fast:
        Kernel fast-path override forwarded to
        :func:`~repro.core.algorithms.registry.color_with` (``None`` follows
        the process switch).  Does not affect the coloring, only speed.
    validate:
        Run :meth:`~repro.core.coloring.Coloring.check` on the result before
        serving it.
    timeout:
        Client deadline in seconds from admission; expired requests are
        answered ``timeout`` without being computed.
    request_id:
        Client-chosen correlation id, echoed verbatim.
    tiled:
        Route through the out-of-core tiler (:mod:`repro.tiling`) instead
        of the monolithic kernels.  GLL only; the result is bit-identical,
        so tiled and monolithic requests share cache entries by design.
    tile_shape:
        Optional per-axis tile-shape hint for tiled requests (the
        ``tiles`` wire field); ``None`` lets the server's config derive it.
    """

    weights: np.ndarray
    algorithm: str
    fast: Optional[bool] = None
    validate: bool = False
    timeout: Optional[float] = None
    request_id: str = ""
    tiled: bool = False
    tile_shape: Optional[tuple[int, ...]] = None
    key: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.key:
            object.__setattr__(self, "key", content_key(self.weights, self.algorithm))

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(s) for s in self.weights.shape)

    @property
    def group(self) -> tuple:
        """The micro-batching group: same shape, same algorithm."""
        return (self.shape, self.algorithm)


#: Wire error code answered to a delta whose session the server lost.
UNKNOWN_SESSION_CODE = "unknown-session"


@dataclass(frozen=True)
class RecolorRequest:
    """One decoded ``recolor`` op, in either of its two forms.

    *Seed* form: ``weights`` is the full grid (``algorithm`` names the
    heuristic); *delta* form: ``delta_idx`` / ``delta_weights`` carry the
    sparse update — absolute new weights at flat C-order indices, so
    re-sending the same delta after a connection loss is harmless.
    """

    session: str
    request_id: str = ""
    weights: Optional[np.ndarray] = None  # seed form: the full new grid
    algorithm: str = "GLL"
    delta_idx: Optional[np.ndarray] = None  # delta form: flat indices
    delta_weights: Optional[np.ndarray] = None  # absolute new weights

    @property
    def is_seed(self) -> bool:
        return self.weights is not None


def _decode_grid(message: dict[str, Any]) -> np.ndarray:
    """The ``shape`` + flat ``weights`` fields as a grid array (shared by
    the ``color`` and seed-``recolor`` decoders)."""
    shape = message.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(s, int) and s > 0 for s in shape
    ):
        raise ProtocolError("'shape' must be a list of positive integers")
    if len(shape) not in (2, 3):
        raise ProtocolError(f"expected a 2D or 3D shape, got {len(shape)} dims")
    weights = message.get("weights")
    if not isinstance(weights, list):
        raise ProtocolError("'weights' must be a flat list of integers")
    expected = int(np.prod([int(s) for s in shape]))
    if len(weights) != expected:
        raise ProtocolError(
            f"expected {expected} weights for shape {tuple(shape)}, got {len(weights)}"
        )
    try:
        return np.asarray(weights, dtype=np.int64).reshape(tuple(shape))
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"weights are not int64 grid data: {exc}") from None


def recolor_session_fields(message: dict[str, Any]) -> tuple[str, str]:
    """``(session, request_id)`` of a recolor message, validated.

    Shared by the NDJSON decoder and the binary frame decoder so both
    wires enforce the same session-id discipline.
    """
    api = message.get("api")
    if api is not None and api != PROTOCOL_API_VERSION:
        raise ProtocolError(
            f"unsupported api version {api!r} (this server speaks "
            f"{PROTOCOL_API_VERSION})"
        )
    session = message.get("session")
    if not isinstance(session, str) or not session:
        raise ProtocolError("'session' must be a non-empty string")
    request_id = message.get("id", "")
    if not isinstance(request_id, str):
        request_id = str(request_id)
    return session, request_id


def recolor_from_arrays(
    message: dict[str, Any],
    *,
    weights: Optional[np.ndarray] = None,
    delta_idx: Optional[np.ndarray] = None,
    delta_weights: Optional[np.ndarray] = None,
) -> RecolorRequest:
    """Build a :class:`RecolorRequest` from decoded arrays + header fields.

    The back half shared by both wires — the NDJSON decoder builds the
    arrays from JSON lists, the binary decoder from the payload buffer —
    so a recolor op means exactly the same thing on either wire.
    """
    session, request_id = recolor_session_fields(message)
    if weights is not None:
        if delta_idx is not None or delta_weights is not None:
            raise ProtocolError("a recolor op is a seed or a delta, not both")
        if weights.size and weights.min() < 0:
            raise ProtocolError("weights must be non-negative")
        algorithm = message.get("algorithm", "GLL")
        if not isinstance(algorithm, str) or not algorithm:
            raise ProtocolError("'algorithm' must be a non-empty string")
        return RecolorRequest(
            session=session,
            request_id=request_id,
            weights=weights,
            algorithm=algorithm,
        )
    if delta_idx is None or delta_weights is None:
        raise ProtocolError(
            "recolor needs 'weights' (seed form) or 'delta' (delta form)"
        )
    if delta_idx.shape != delta_weights.shape or delta_idx.ndim != 1:
        raise ProtocolError("delta idx and weights must be equal-length vectors")
    if delta_idx.size and delta_idx.min() < 0:
        raise ProtocolError("delta indices must be non-negative")
    if delta_weights.size and delta_weights.min() < 0:
        raise ProtocolError("delta weights must be non-negative")
    return RecolorRequest(
        session=session,
        request_id=request_id,
        delta_idx=delta_idx,
        delta_weights=delta_weights,
    )


def recolor_from_wire(message: dict[str, Any]) -> RecolorRequest:
    """Validate and decode a ``recolor`` op NDJSON message (either form)."""
    if "weights" in message or "shape" in message:
        return recolor_from_arrays(message, weights=_decode_grid(message))
    delta = message.get("delta")
    if not isinstance(delta, dict):
        raise ProtocolError(
            "recolor needs 'weights' (seed form) or 'delta' (delta form)"
        )
    idx = delta.get("idx")
    new = delta.get("weights")
    if not isinstance(idx, list) or not isinstance(new, list):
        raise ProtocolError("'delta' must carry 'idx' and 'weights' lists")
    try:
        idx_arr = np.asarray(idx, dtype=np.int64)
        new_arr = np.asarray(new, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ProtocolError(f"delta is not int64 data: {exc}") from None
    if idx_arr.ndim != 1 or new_arr.ndim != 1:
        raise ProtocolError("delta idx and weights must be flat lists")
    return recolor_from_arrays(
        message, delta_idx=idx_arr, delta_weights=new_arr
    )


def recolor_to_wire(request: RecolorRequest) -> dict[str, Any]:
    """The canonical NDJSON message for a recolor request (either form)."""
    message: dict[str, Any] = {
        "api": PROTOCOL_API_VERSION,
        "op": "recolor",
        "id": request.request_id,
        "session": request.session,
    }
    if request.is_seed:
        message["shape"] = [int(s) for s in request.weights.shape]
        message["weights"] = (
            np.ascontiguousarray(request.weights, dtype=np.int64).ravel().tolist()
        )
        message["algorithm"] = request.algorithm
    else:
        message["delta"] = {
            "idx": np.asarray(request.delta_idx, dtype=np.int64).tolist(),
            "weights": np.asarray(request.delta_weights, dtype=np.int64).tolist(),
        }
    return message


@dataclass(frozen=True)
class ServedResult:
    """The outcome of one request, as resolved by the batcher.

    ``source`` records how the result was produced: ``computed`` (a kernel
    run), ``cache`` (content-addressed cache hit), or ``coalesced``
    (deduplicated against an identical request in the same micro-batch).
    """

    status: str
    starts: Optional[np.ndarray] = None
    maxcolor: Optional[int] = None
    source: str = ""
    compute_seconds: float = 0.0
    batch_size: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


# ------------------------------------------------------------------ encoding
def encode_message(message: dict[str, Any]) -> bytes:
    """One JSON message as a newline-terminated UTF-8 line."""
    data = json.dumps(message, separators=(",", ":")).encode()
    if len(data) + 1 > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_MESSAGE_BYTES} limit"
        )
    return data + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line into a message dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def request_to_wire(request: ColorRequest) -> dict[str, Any]:
    """A canonical (``"api": 1``) ``color`` op message for this request.

    Servers since the same protocol version accept this shape; older
    servers need the legacy shape (no ``api`` field, ``options.fast``),
    which :func:`request_from_wire` still decodes but this encoder no
    longer emits.
    """
    message: dict[str, Any] = {
        "api": PROTOCOL_API_VERSION,
        "op": "color",
        "id": request.request_id,
        "shape": list(request.shape),
        "weights": np.ascontiguousarray(request.weights, dtype=np.int64).ravel().tolist(),
        "algorithm": request.algorithm,
    }
    if request.tiled:
        message["runtime"] = "tiled"
    elif request.fast is not None:
        message["runtime"] = "kernels" if request.fast else "reference"
    if request.tile_shape is not None:
        message["tiles"] = list(request.tile_shape)
    if request.validate:
        message["validate"] = True
    if request.timeout is not None:
        message["timeout_ms"] = request.timeout * 1000.0
    return message


def request_from_wire(message: dict[str, Any]) -> ColorRequest:
    """Validate and decode a ``color`` op message.

    Both frame generations decode here: canonical ``"api": 1`` frames
    (top-level ``runtime`` / ``tiles`` / ``validate``) and legacy frames
    (no ``api``, ``options.fast`` / ``options.validate``).  When a frame
    mixes both vocabularies the canonical fields win.

    Raises
    ------
    ProtocolError
        On missing/ill-typed fields, an unsupported ``api`` version,
        non-2D/3D shapes, shape/weight length mismatches, or negative
        weights.
    """
    api = message.get("api")
    if api is not None and api != PROTOCOL_API_VERSION:
        raise ProtocolError(
            f"unsupported api version {api!r} (this server speaks "
            f"{PROTOCOL_API_VERSION})"
        )
    return request_from_fields(_decode_grid(message), message)


def request_from_fields(arr: np.ndarray, message: dict[str, Any]) -> ColorRequest:
    """Build a :class:`ColorRequest` from a decoded weight array + fields.

    The shared back half of request decoding: the NDJSON decoder
    (:func:`request_from_wire`) builds ``arr`` from the ``weights`` list,
    the binary decoder (:func:`repro.service.frames.decode_color_request`)
    from the raw payload buffer — both then validate the remaining fields
    here, so a request means exactly the same thing on either wire.
    """
    shape = [int(s) for s in arr.shape]
    if arr.size and arr.min() < 0:
        raise ProtocolError("weights must be non-negative")
    algorithm = message.get("algorithm")
    if not isinstance(algorithm, str) or not algorithm:
        raise ProtocolError("'algorithm' must be a non-empty string")
    options = message.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError("'options' must be an object")
    fast = options.get("fast")
    if fast is not None and not isinstance(fast, bool):
        raise ProtocolError("option 'fast' must be a boolean")
    validate = bool(options.get("validate", False))
    tiled = False
    tile_shape: Optional[tuple[int, ...]] = None
    runtime = message.get("runtime")
    if runtime is not None:
        if not isinstance(runtime, str) or runtime not in _WIRE_RUNTIMES:
            raise ProtocolError(
                f"'runtime' must be one of {sorted(_WIRE_RUNTIMES)}, got {runtime!r}"
            )
        tiled = runtime == "tiled"
        fast = _WIRE_RUNTIMES[runtime]
    tiles = message.get("tiles")
    if tiles is not None:
        if (
            not isinstance(tiles, list)
            or len(tiles) != len(shape)
            or not all(isinstance(t, int) and t > 0 for t in tiles)
        ):
            raise ProtocolError(
                "'tiles' must be a list of positive per-axis tile dims "
                "matching the grid rank"
            )
        tile_shape = tuple(tiles)
        tiled = True
    if tiled and algorithm != "GLL":
        raise ProtocolError(
            f"tiled coloring reproduces the GLL scan only, got {algorithm!r}"
        )
    if "validate" in message:
        validate = bool(message["validate"])
    timeout_ms = message.get("timeout_ms")
    timeout: Optional[float] = None
    if timeout_ms is not None:
        if not isinstance(timeout_ms, (int, float)) or timeout_ms <= 0:
            raise ProtocolError("'timeout_ms' must be a positive number")
        timeout = float(timeout_ms) / 1000.0
    request_id = message.get("id", "")
    if not isinstance(request_id, str):
        request_id = str(request_id)
    return ColorRequest(
        weights=arr,
        algorithm=algorithm,
        fast=fast,
        validate=validate,
        timeout=timeout,
        request_id=request_id,
        tiled=tiled,
        tile_shape=tile_shape,
    )


def result_to_wire(
    result: ServedResult, request_id: str, extra: Optional[dict[str, Any]] = None
) -> dict[str, Any]:
    """A response message for ``result`` (status-dependent fields)."""
    message: dict[str, Any] = {"id": request_id, "status": result.status}
    if result.ok:
        assert result.starts is not None
        message["starts"] = np.asarray(result.starts).ravel().tolist()
        message["maxcolor"] = int(result.maxcolor or 0)
        message["source"] = result.source
        message["compute_ms"] = result.compute_seconds * 1000.0
        message["batch_size"] = result.batch_size
    elif result.error:
        message["error"] = result.error
    if extra:
        message.update(extra)
    return message
