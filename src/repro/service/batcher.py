"""Shape-batched request dispatch: the service's micro-batching core.

Queued :class:`~repro.service.protocol.ColorRequest`\\ s are grouped by
``(grid shape, algorithm)``.  The dispatcher waits a short *batch window*
after work arrives so concurrent requests for the same group accumulate,
then takes up to ``max_batch`` of the oldest group and executes them as one
unit on a worker thread:

1. requests whose deadline already expired are answered ``timeout`` without
   touching the kernels;
2. identical requests (same content key) are *coalesced* — one computation
   fans out to all of them;
3. remaining unique keys probe the content-addressed result cache;
4. only true misses build an :class:`~repro.core.problem.IVCInstance` and run
   :func:`~repro.core.algorithms.registry.color_with` — and because every
   instance in the batch shares its shape, the per-shape substrate LRU
   (:mod:`repro.kernels.substrate`) means one geometry/CSR/neighbor-table
   build serves the entire batch.

Results are therefore bit-identical to a direct ``color_with`` call by
construction: the batcher never merges *computations*, only the shape-level
preprocessing and equal-content requests.

**Degraded mode.**  A kernel fast path raising mid-computation does not fail
the request: the batcher falls back to the generic slow path
(``fast=False``), which is differentially tested to produce the identical
coloring, and counts the event in the ``degraded_total`` metric.  Only a
request that *explicitly* pinned ``fast=True``/``False`` skips the fallback
(there is nothing different left to try).

**Shutdown.**  Requests still queued when the batcher stops are answered
``overloaded`` (a retry-later signal — a restarted server will serve them);
requests in flight when a drain deadline expires are answered ``timeout``.
Neither is ever silently dropped.

Concurrency: group selection runs on the event loop; batch execution runs in
a ``ThreadPoolExecutor`` bounded by ``compute_threads`` slots, so several
groups can compute in parallel while new requests keep queueing.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import inject
from repro.runtime.context import ExecutionContext, get_context, use_context
from repro.service.cache import CacheEntry, ResultCache
from repro.service.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    ColorRequest,
    ServedResult,
)


@dataclass
class _Pending:
    """One queued request plus its resolution future and timing marks."""

    request: ColorRequest
    future: asyncio.Future
    enqueued_at: float
    deadline: Optional[float]


class MicroBatcher:
    """Groups queued requests by ``(shape, algorithm)`` and batch-executes.

    Parameters
    ----------
    cache:
        The content-addressed result cache (may have ``capacity=0``).
    metrics:
        Registry receiving queue/batch/compute observations.
    max_batch:
        Largest number of requests dispatched as one batch.
    batch_window:
        Seconds the dispatcher lingers after work arrives so a batch can
        fill; ``0`` dispatches immediately (the unbatched baseline).
    compute_threads:
        Worker threads executing batches (and the cap on in-flight batches).
    context:
        The :class:`~repro.runtime.context.ExecutionContext` the batcher
        computes under.  ``run_in_executor`` does not propagate the ambient
        contextvar onto compute threads, so each batch re-enters it
        explicitly — that is how batched colorings share the substrate
        caches and fast-path config with every other call path.  ``None``
        captures the ambient context at construction.
    """

    def __init__(
        self,
        cache: ResultCache,
        metrics: MetricsRegistry,
        *,
        max_batch: int = 32,
        batch_window: float = 0.002,
        compute_threads: int = 1,
        context: Optional[ExecutionContext] = None,
    ) -> None:
        self.cache = cache
        self.metrics = metrics
        self.context = context if context is not None else get_context()
        self.max_batch = max(1, int(max_batch))
        self.batch_window = max(0.0, float(batch_window))
        self.compute_threads = max(1, int(compute_threads))
        self._groups: "OrderedDict[tuple, deque[_Pending]]" = OrderedDict()
        self._seq = 0
        self._depth = 0
        self._inflight = 0
        self._closed = False
        self._wake: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._tasks: set[asyncio.Task] = set()
        self._inflight_pendings: set[int] = set()
        self._pendings_by_id: dict[int, _Pending] = {}

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._slots = asyncio.Semaphore(self.compute_threads)
        self._executor = ThreadPoolExecutor(
            max_workers=self.compute_threads, thread_name_prefix="color-batch"
        )
        self._dispatcher = asyncio.create_task(self._run(), name="micro-batcher")

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every queued and in-flight request has resolved."""
        assert self._idle is not None
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop dispatching; optionally drain queued work first.

        A drain deadline expiring with work still outstanding never hangs
        the stop: queued requests are answered ``overloaded``, in-flight
        requests ``timeout``, and the executor is released without waiting
        for a wedged compute thread.
        """
        self._closed = True
        drained = await self.drain(timeout) if drain else self._idle.is_set()
        if self._dispatcher is not None:
            self._wake.set()
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        self._fail_all("service shutting down", status=STATUS_OVERLOADED)
        self._timeout_inflight("drain deadline expired during shutdown")
        if self._executor is not None:
            # Only wait for compute threads after a clean drain; a wedged
            # batch must not turn stop() into a hang.
            self._executor.shutdown(wait=drained, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------- admission
    @property
    def depth(self) -> int:
        """Requests queued but not yet dispatched (backpressure signal)."""
        return self._depth

    def submit(self, request: ColorRequest) -> asyncio.Future:
        """Enqueue a request; resolves to a :class:`ServedResult`.

        The caller (the server) enforces the admission limit *before*
        calling; ``submit`` itself never rejects.
        """
        if self._closed:
            raise RuntimeError("batcher is stopped")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        now = time.monotonic()
        pending = _Pending(
            request=request,
            future=future,
            enqueued_at=now,
            deadline=now + request.timeout if request.timeout else None,
        )
        self._groups.setdefault(request.group, deque()).append(pending)
        self._depth += 1
        self.metrics.gauge("queue_depth").set(self._depth)
        self._idle.clear()
        self._wake.set()
        return future

    # ------------------------------------------------------------- dispatcher
    async def _run(self) -> None:
        assert self._wake is not None and self._slots is not None
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.batch_window > 0 and self._depth > 0:
                await asyncio.sleep(self.batch_window)
            while self._depth > 0:
                await self._slots.acquire()
                batch = self._take_batch()
                if not batch:
                    self._slots.release()
                    break
                self._inflight += 1
                self.metrics.gauge("inflight_batches").set(self._inflight)
                task = loop.create_task(self._dispatch(batch))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)

    def _take_batch(self) -> list[_Pending]:
        """Up to ``max_batch`` requests of the group with the oldest head."""
        best_key = None
        best_age = float("inf")
        for key, queue in self._groups.items():
            if queue and queue[0].enqueued_at < best_age:
                best_age = queue[0].enqueued_at
                best_key = key
        if best_key is None:
            return []
        queue = self._groups[best_key]
        batch = []
        while queue and len(batch) < self.max_batch:
            batch.append(queue.popleft())
        if not queue:
            del self._groups[best_key]
        self._depth -= len(batch)
        self.metrics.gauge("queue_depth").set(self._depth)
        for pending in batch:
            self._inflight_pendings.add(id(pending))
            self._pendings_by_id[id(pending)] = pending
        return batch

    async def _dispatch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                self._executor, self._execute_batch, batch
            )
        except Exception as exc:  # worker infrastructure failure
            outcomes = [
                ServedResult(status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}")
                for _ in batch
            ]
        finally:
            self._slots.release()
            self._inflight -= 1
            self.metrics.gauge("inflight_batches").set(self._inflight)
            if self._depth == 0 and self._inflight == 0:
                self._idle.set()
        for pending, outcome in zip(batch, outcomes):
            self._inflight_pendings.discard(id(pending))
            self._pendings_by_id.pop(id(pending), None)
            if not pending.future.done():
                pending.future.set_result(outcome)

    def _fail_all(self, reason: str, status: str = STATUS_ERROR) -> None:
        """Answer every still-queued request with ``status`` (never drop)."""
        for queue in self._groups.values():
            for pending in queue:
                if not pending.future.done():
                    pending.future.set_result(
                        ServedResult(status=status, error=reason)
                    )
        self._groups.clear()
        self._depth = 0

    def _timeout_inflight(self, reason: str) -> None:
        """Answer requests whose batch is still computing with ``timeout``.

        Used when a drain deadline expires at shutdown: the computation may
        finish later (its ``set_result`` is guarded by ``future.done()``),
        but the waiting client gets a definitive answer now.
        """
        for pending_id in list(self._inflight_pendings):
            pending = self._pendings_by_id.get(pending_id)
            if pending is not None and not pending.future.done():
                self.metrics.counter("request_timeouts").inc()
                pending.future.set_result(
                    ServedResult(status=STATUS_TIMEOUT, error=reason)
                )

    # ---------------------------------------------------------- batch compute
    def _execute_batch(self, batch: list[_Pending]) -> list[ServedResult]:
        """Run one shape/algorithm batch on a worker thread (see module doc).

        Runs under the batcher's context (``run_in_executor`` threads do not
        inherit the event loop's contextvars, so it is re-entered here).
        """
        with use_context(self.context):
            return self._execute_batch_in_context(batch)

    def _execute_batch_in_context(self, batch: list[_Pending]) -> list[ServedResult]:
        now = time.monotonic()
        queue_wait = self.metrics.histogram("queue_wait")
        for pending in batch:
            queue_wait.observe(now - pending.enqueued_at)
        self.metrics.counter("batches_dispatched").inc()
        self.metrics.histogram("batch_size").observe(len(batch))

        live: list[_Pending] = []
        results: dict[int, ServedResult] = {}
        for idx, pending in enumerate(batch):
            if pending.deadline is not None and now > pending.deadline:
                self.metrics.counter("request_timeouts").inc()
                results[idx] = ServedResult(
                    status=STATUS_TIMEOUT,
                    error="deadline expired while queued",
                )
            else:
                live.append(pending)

        # Coalesce identical content; probe the cache once per unique key.
        by_key: "OrderedDict[str, list[int]]" = OrderedDict()
        for idx, pending in enumerate(batch):
            if idx in results:
                continue
            by_key.setdefault(pending.request.key, []).append(idx)

        batch_size = len(live)
        for key, indices in by_key.items():
            primary = batch[indices[0]]
            entry = self.cache.get(key)
            if entry is not None:
                self.metrics.counter("cache_hits").inc(len(indices))
                base = ServedResult(
                    status=STATUS_OK,
                    starts=entry.starts,
                    maxcolor=entry.maxcolor,
                    source="cache",
                    compute_seconds=entry.compute_seconds,
                    batch_size=batch_size,
                )
            else:
                self.metrics.counter("cache_misses").inc()
                base = self._compute(primary.request, batch_size)
                if base.ok:
                    self.cache.put(
                        key,
                        CacheEntry(
                            starts=base.starts,
                            maxcolor=base.maxcolor,
                            algorithm=primary.request.algorithm,
                            compute_seconds=base.compute_seconds,
                        ),
                    )
            results[indices[0]] = base
            for extra_idx in indices[1:]:
                self.metrics.counter("requests_coalesced").inc()
                results[extra_idx] = ServedResult(
                    status=base.status,
                    starts=base.starts,
                    maxcolor=base.maxcolor,
                    source="coalesced" if base.source == "computed" else base.source,
                    compute_seconds=base.compute_seconds,
                    batch_size=batch_size,
                    error=base.error,
                )
        return [results[idx] for idx in range(len(batch))]

    def _compute(self, request: ColorRequest, batch_size: int) -> ServedResult:
        """One true kernel run; the only place colorings are produced.

        The primary attempt honours the request's ``fast`` preference (and
        the ``service.compute`` fault site).  If it raises and the request
        did not pin ``fast`` explicitly, the batcher *degrades*: it retries
        on the generic slow path (``fast=False``), which is differentially
        tested to produce the identical coloring, and counts the event in
        ``degraded_total``.
        """
        from repro.core.algorithms.registry import color_with
        from repro.core.problem import IVCInstance

        if request.tiled:
            return self._compute_tiled(request, batch_size)
        t0 = time.perf_counter()
        degraded = False
        try:
            if request.weights.ndim == 2:
                instance = IVCInstance.from_grid_2d(request.weights)
            else:
                instance = IVCInstance.from_grid_3d(request.weights)
            try:
                inject("service.compute", request.key)
                coloring = color_with(
                    instance, request.algorithm, fast=request.fast,
                    context=self.context,
                )
            except Exception:
                if request.fast is not None:
                    raise  # the caller pinned a path; nothing left to try
                degraded = True
                coloring = color_with(
                    instance, request.algorithm, fast=False, context=self.context
                )
            if request.validate:
                coloring.check()
        except Exception as exc:
            self.metrics.counter("compute_errors").inc()
            return ServedResult(
                status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
            )
        if degraded:
            self.metrics.counter("degraded_total").inc()
        elapsed = time.perf_counter() - t0
        self.metrics.histogram("compute_seconds").observe(elapsed)
        return ServedResult(
            status=STATUS_OK,
            starts=np.asarray(coloring.starts, dtype=np.int64),
            maxcolor=int(coloring.maxcolor),
            source="degraded" if degraded else "computed",
            compute_seconds=elapsed,
            batch_size=batch_size,
        )

    def _compute_tiled(self, request: ColorRequest, batch_size: int) -> ServedResult:
        """One tiler run for an ``api: 1`` request carrying a ``tiles`` hint.

        Bit-identical to the monolithic path by the tiler's seam invariant,
        so the result lands in the same content-addressed cache entry a
        monolithic request for this grid would produce or consume.
        """
        from repro.tiling import color_tiled

        t0 = time.perf_counter()
        try:
            inject("service.compute", request.key)
            tiled = color_tiled(
                request.weights,
                tile_shape=request.tile_shape,
                context=self.context,
            )
        except Exception as exc:
            self.metrics.counter("compute_errors").inc()
            return ServedResult(
                status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
            )
        elapsed = time.perf_counter() - t0
        self.metrics.counter("tiled_requests").inc()
        self.metrics.histogram("compute_seconds").observe(elapsed)
        return ServedResult(
            status=STATUS_OK,
            starts=np.asarray(tiled.starts).ravel(),
            maxcolor=int(tiled.maxcolor),
            source="computed",
            compute_seconds=elapsed,
            batch_size=batch_size,
        )
