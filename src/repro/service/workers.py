"""The multi-process worker pool behind ``stencil-ivc serve --workers N``.

Each worker is a full :class:`~repro.service.server.ColoringService` in its
own *spawned* process — own event loop, own GIL, own in-memory result
cache — listening on an ephemeral port it reports back through a pipe.
The pool is the supervised layer underneath the router
(:mod:`repro.service.router`):

* **Blame-isolated restarts** — :meth:`WorkerPool.ensure_alive` respawns a
  dead worker slot without touching its siblings; the slot keeps its
  ``worker_id`` and gains a restart count, so ``/metrics`` shows *which*
  worker died and how often, not just that something did.
* **Shared L2 warm start** — every worker gets the same ``spill_dir``
  (the cross-worker cache tier of :class:`~repro.service.cache.ResultCache`)
  and starts with ``warm_start=True``, so a freshly restarted worker
  serves its siblings' cached results from its first request.
* **Fault parity** — workers are spawned with the parent's environment,
  so ``REPRO_*`` runtime settings and ``REPRO_FAULTS`` fault plans apply
  inside each worker exactly as they would in a single-process server.
  A programmatic ``ServerConfig.runtime`` survives the spawn pickle too
  (rebuilt from its ``asdict`` form in the child).
* **Durable sessions** — the shared ``spill_dir`` also holds the recolor
  session journals (:mod:`repro.service.durability`), so a restarted
  worker — or a sibling taking over after failover — rebuilds a dead
  worker's sessions by journal replay instead of bouncing clients.

The pool is transport-agnostic: it spawns, watches, and stops processes.
Routing requests to workers is the router's job.
"""

from __future__ import annotations

import multiprocessing as mp
import tempfile
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Optional

from repro.service.server import ServerConfig

#: How long one worker may take to bind its port before startup fails.
WORKER_START_TIMEOUT = 30.0


def _worker_main(conn, config_fields: dict) -> None:
    """Entry point of one spawned worker process.

    Rebuilds the runtime from the (inherited) environment — the same
    ``ExecutionContext.from_env()`` + ``install_faults()`` sequence the CLI
    runs — then serves a :class:`ColoringService` until a shutdown op,
    reporting the bound port through ``conn`` once listening.
    """
    import asyncio

    from repro.runtime.config import RuntimeConfig
    from repro.runtime.context import ExecutionContext, set_default_context

    context = ExecutionContext.from_env()
    set_default_context(context)
    context.install_faults()

    from repro.service.server import run_service

    # asdict() flattened any programmatic RuntimeConfig (and its nested
    # tiling/incremental/durability configs) into plain dicts for the spawn
    # pickle; rebuild it so workers honor the parent's explicit runtime
    # instead of silently falling back to the environment.
    runtime = config_fields.get("runtime")
    if isinstance(runtime, dict):
        config_fields = {**config_fields, "runtime": RuntimeConfig(**runtime)}
    config = ServerConfig(**config_fields)

    def ready(service) -> None:
        conn.send(service.port)

    try:
        asyncio.run(run_service(config, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover - parent teardown
        pass
    finally:
        conn.close()


@dataclass
class WorkerHandle:
    """One pool slot: a stable identity over possibly many processes."""

    index: int
    worker_id: str
    process: mp.Process
    host: str
    port: int
    restarts: int = 0
    started_at: float = field(default_factory=time.monotonic)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def alive(self) -> bool:
        return self.process.is_alive()


class WorkerPool:
    """N supervised :class:`ColoringService` processes sharing one L2 dir.

    ``spill_dir=None`` makes the pool create (and own) a temporary shared
    directory; passing a path keeps the L2 tier across pool lifetimes.
    """

    def __init__(
        self,
        base_config: Optional[ServerConfig] = None,
        workers: int = 2,
        *,
        spill_dir: Optional[str] = None,
    ) -> None:
        self.base_config = base_config or ServerConfig()
        if self.base_config.spill_path:
            raise ValueError(
                "worker pools use the shared spill_dir tier, not spill_path"
            )
        self.workers = max(1, int(workers))
        self._owned_dir: Optional[tempfile.TemporaryDirectory] = None
        if spill_dir is None:
            self._owned_dir = tempfile.TemporaryDirectory(prefix="ivc-l2-")
            spill_dir = self._owned_dir.name
        self.spill_dir = spill_dir
        self.handles: list[WorkerHandle] = []
        self.total_restarts = 0
        self._ctx = mp.get_context("spawn")

    # -------------------------------------------------------------- lifecycle
    def _worker_config(self, index: int) -> ServerConfig:
        return replace(
            self.base_config,
            host="127.0.0.1",
            port=0,
            spill_dir=self.spill_dir,
            worker_id=f"w{index}",
            warm_start=True,  # restarted workers re-read the shared L2 tier
        )

    def _spawn(self, index: int, restarts: int = 0) -> WorkerHandle:
        config = self._worker_config(index)
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, asdict(config)),
            name=f"ivc-{config.worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(WORKER_START_TIMEOUT):
            process.terminate()
            raise RuntimeError(
                f"worker {config.worker_id} failed to report a port within "
                f"{WORKER_START_TIMEOUT}s"
            )
        port = int(parent_conn.recv())
        parent_conn.close()
        return WorkerHandle(
            index=index,
            worker_id=config.worker_id,
            process=process,
            host=config.host,
            port=port,
            restarts=restarts,
        )

    def start(self) -> "WorkerPool":
        self.handles = [self._spawn(i) for i in range(self.workers)]
        return self

    def ensure_alive(self, index: int) -> bool:
        """Respawn slot ``index`` if its process died; True if it restarted.

        The new process keeps the slot's ``worker_id`` (identity names the
        slot, not the pid) and warm-starts from the shared L2 directory.
        """
        handle = self.handles[index]
        if handle.alive():
            return False
        handle.process.join(timeout=0.1)
        self.handles[index] = self._spawn(index, restarts=handle.restarts + 1)
        self.total_restarts += 1
        return True

    def dead_slots(self) -> list[int]:
        return [h.index for h in self.handles if not h.alive()]

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain of every worker, escalating to terminate."""
        from repro.service.client import ServiceClient, ServiceError

        for handle in self.handles:
            if not handle.alive():
                continue
            try:
                with ServiceClient(
                    handle.host, handle.port, timeout=timeout, wire="ndjson"
                ) as client:
                    client.shutdown()
            except (ServiceError, OSError):
                pass  # a dead or wedged worker is terminated below
        deadline = time.monotonic() + timeout
        for handle in self.handles:
            handle.process.join(max(0.1, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
        if self._owned_dir is not None:
            self._owned_dir.cleanup()
            self._owned_dir = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
