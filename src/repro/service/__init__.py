"""Online coloring service: shape-batched serving of coloring requests.

The paper's motivating STKDE application computes colorings *on demand* as
analysts re-bin point data — a serving workload.  This package is the online
front end over the batch engine and vectorized kernels:

* :mod:`~repro.service.protocol` — typed request/response messages and the
  canonical :func:`~repro.service.protocol.content_key` hash;
* :mod:`~repro.service.cache` — content-addressed LRU result cache with
  optional JSONL disk spill;
* :mod:`~repro.service.batcher` — micro-batching by ``(shape, algorithm)``
  so one substrate build serves a whole batch, with request coalescing;
* :mod:`~repro.service.server` — the asyncio TCP server: bounded admission
  queue, per-request deadlines, graceful drain;
* :mod:`~repro.service.client` — sync and asyncio clients;
* :mod:`~repro.service.loadgen` — the repeated-shape load generator with
  served-vs-direct verification;
* :mod:`~repro.service.metrics` — counters/gauges/latency histograms
  snapshotted over the wire.

Served colorings are bit-identical to direct
:func:`~repro.core.algorithms.registry.color_with` calls: batching shares
preprocessing, never computations.
"""

from repro.service.batcher import MicroBatcher
from repro.service.cache import CacheEntry, ResultCache
from repro.service.client import (
    AsyncServiceClient,
    ColorResponse,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.loadgen import (
    LoadgenReport,
    build_workload,
    parse_shapes,
    run_loadgen,
    run_loadgen_async,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.protocol import (
    PROTOCOL_API_VERSION,
    ColorRequest,
    ProtocolError,
    ServedResult,
    content_key,
)
from repro.service.server import ColoringService, ServerConfig, ServerThread

__all__ = [
    "AsyncServiceClient",
    "CacheEntry",
    "ColorRequest",
    "ColorResponse",
    "ColoringService",
    "Counter",
    "Gauge",
    "Histogram",
    "LoadgenReport",
    "MetricsRegistry",
    "MicroBatcher",
    "PROTOCOL_API_VERSION",
    "ProtocolError",
    "ResultCache",
    "ServedResult",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "build_workload",
    "content_key",
    "parse_shapes",
    "run_loadgen",
    "run_loadgen_async",
]
