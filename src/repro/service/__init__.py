"""Online coloring service: shape-batched serving of coloring requests.

The paper's motivating STKDE application computes colorings *on demand* as
analysts re-bin point data — a serving workload.  This package is the online
front end over the batch engine and vectorized kernels:

* :mod:`~repro.service.protocol` — typed request/response messages and the
  canonical :func:`~repro.service.protocol.content_key` hash;
* :mod:`~repro.service.frames` — the binary wire codec (raw little-endian
  arrays, routing key in a fixed preamble), negotiated per connection with
  NDJSON as the forever-compatible fallback;
* :mod:`~repro.service.cache` — content-addressed LRU result cache with
  JSONL spill or the cross-worker shared-directory L2 tier;
* :mod:`~repro.service.batcher` — micro-batching by ``(shape, algorithm)``
  so one substrate build serves a whole batch, with request coalescing;
* :mod:`~repro.service.server` — the asyncio TCP server: bounded admission
  queue, per-request deadlines, graceful drain;
* :mod:`~repro.service.workers` — the supervised multi-process
  :class:`~repro.service.workers.WorkerPool` sharing one L2 directory;
* :mod:`~repro.service.router` — the accept/route front process: stable
  content-key (rendezvous) routing, failover, merged fleet metrics;
* :mod:`~repro.service.client` — sync and asyncio clients with automatic
  wire negotiation;
* :mod:`~repro.service.loadgen` — the repeated-shape load generator
  (uniform or zipf-skewed) with served-vs-direct verification;
* :mod:`~repro.service.metrics` — counters/gauges/latency histograms
  snapshotted over the wire.

Served colorings are bit-identical to direct
:func:`~repro.core.algorithms.registry.color_with` calls: batching shares
preprocessing, never computations.
"""

from repro.service.batcher import MicroBatcher
from repro.service.cache import CacheEntry, ResultCache
from repro.service.client import (
    AsyncServiceClient,
    ColorResponse,
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.frames import (
    FRAME_VERSION,
    SUPPORTED_FRAME_VERSIONS,
    Frame,
    FrameError,
    TornFrameError,
)
from repro.service.loadgen import (
    LoadgenReport,
    build_workload,
    parse_shapes,
    run_loadgen,
    run_loadgen_async,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.protocol import (
    PROTOCOL_API_VERSION,
    ColorRequest,
    ProtocolError,
    ServedResult,
    content_key,
)
from repro.service.router import ColoringRouter, RouterConfig, RouterThread
from repro.service.server import ColoringService, ServerConfig, ServerThread
from repro.service.workers import WorkerPool

__all__ = [
    "AsyncServiceClient",
    "CacheEntry",
    "ColorRequest",
    "ColorResponse",
    "ColoringRouter",
    "ColoringService",
    "Counter",
    "FRAME_VERSION",
    "Frame",
    "FrameError",
    "Gauge",
    "Histogram",
    "LoadgenReport",
    "MetricsRegistry",
    "MicroBatcher",
    "PROTOCOL_API_VERSION",
    "ProtocolError",
    "ResultCache",
    "RouterConfig",
    "RouterThread",
    "SUPPORTED_FRAME_VERSIONS",
    "ServedResult",
    "ServerConfig",
    "ServerThread",
    "ServiceClient",
    "ServiceConnectionError",
    "ServiceError",
    "TornFrameError",
    "WorkerPool",
    "build_workload",
    "content_key",
    "parse_shapes",
    "run_loadgen",
    "run_loadgen_async",
]
