"""The asyncio coloring server: admission control, deadlines, graceful drain.

:class:`ColoringService` ties the protocol, cache, micro-batcher, and metrics
together behind a line-delimited JSON TCP endpoint:

* **Admission control / backpressure** — a request arriving while the batcher
  queue already holds ``queue_limit`` requests is answered ``overloaded``
  immediately instead of being buffered without bound; clients treat that as
  a retry-later signal.
* **Deadlines** — every request gets ``timeout`` (client-supplied, capped by
  the server default); expiry while queued or computing yields a ``timeout``
  response and the computation's result, if it still completes, only warms
  the cache.
* **Graceful drain** — shutdown closes the listener, lets queued requests
  finish (bounded by ``drain_timeout``), flushes responses, then stops the
  batcher and closes the cache spill.

:class:`ServerThread` runs the whole service on a private event loop in a
daemon thread — the harness used by the benchmark, the load generator's
``--spawn`` mode, and the tests.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext, get_context
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache
from repro.resilience.faults import inject
from repro.service.frames import (
    FRAME_MAGIC,
    OP_COLOR,
    OP_HELLO,
    OP_METRICS,
    OP_PING,
    OP_RECOLOR,
    OP_RESPONSE,
    OP_SHUTDOWN,
    PAYLOAD_DTYPE,
    SUPPORTED_FRAME_VERSIONS,
    Frame,
    FrameError,
    TornFrameError,
    decode_color_request,
    decode_recolor_request,
    encode_frame,
    encode_hello_ok,
    encode_recolor_result,
    encode_result,
    read_frame_async,
)
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    STATUS_ERROR,
    STATUS_INVALID,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    UNKNOWN_SESSION_CODE,
    ColorRequest,
    ProtocolError,
    RecolorRequest,
    ServedResult,
    decode_message,
    encode_message,
    recolor_from_wire,
    request_from_wire,
    result_to_wire,
)
from repro.service.durability import SessionDurability
from repro.service.sessions import SessionStore, UnknownSessionError


@dataclass
class ServerConfig:
    """Tunables of one :class:`ColoringService` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off `service.port`
    max_batch: int = 32
    batch_window: float = 0.002  # seconds the batcher lingers to fill a batch
    queue_limit: int = 256  # admission cap; beyond it requests are rejected
    cache_size: int = 512  # result-cache entries (0 disables caching)
    spill_path: Optional[str] = None  # JSONL disk spill for evicted entries
    spill_dir: Optional[str] = None  # shared-directory L2 tier (multi-worker)
    worker_id: str = "w0"  # identity stamped on responses and /metrics
    compute_threads: int = 1
    default_timeout: float = 30.0  # per-request deadline cap, seconds
    drain_timeout: float = 30.0  # graceful-shutdown budget, seconds
    warm_start: bool = False  # index an existing spill file on startup
    runtime: Optional[RuntimeConfig] = None  # None = inherit the ambient context's
    extra_metadata: dict = field(default_factory=dict)


class ColoringService:
    """The online coloring service (see module docstring).

    The service computes under an :class:`ExecutionContext` of its own: by
    default a *child* of the ambient context — same substrate caches (so
    direct callers and the service share per-shape geometry), but a fresh
    metrics registry so ``/metrics`` reports this service alone.  A
    ``config.runtime`` override instead builds an independent context around
    that :class:`RuntimeConfig`; an explicit ``context=`` wins over both.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        *,
        context: Optional[ExecutionContext] = None,
    ) -> None:
        self.config = config or ServerConfig()
        if context is not None:
            self.context = context
        elif self.config.runtime is not None:
            self.context = ExecutionContext(self.config.runtime)
        else:
            self.context = get_context().child(metrics=MetricsRegistry())
        self.metrics = self.context.metrics
        self.cache = ResultCache(
            capacity=self.config.cache_size,
            spill_path=self.config.spill_path,
            spill_dir=self.config.spill_dir,
        )
        self.batcher = MicroBatcher(
            self.cache,
            self.metrics,
            max_batch=self.config.max_batch,
            batch_window=self.config.batch_window,
            compute_threads=self.config.compute_threads,
            context=self.context,
        )
        incr = self.context.config.incremental
        dura = self.context.config.durability
        self.durability: Optional[SessionDurability] = None
        if dura.enabled and self.config.spill_dir:
            # Sessions journal under the *shared* spill directory so a
            # restarted or sibling worker sees them — the same tier the
            # result cache uses for L2 entries (different file suffixes,
            # own `sessions/` subdirectory: no collisions).
            self.durability = SessionDurability(
                Path(self.config.spill_dir) / "sessions",
                dura,
                metrics=self.metrics,
            )
        self.sessions = SessionStore(
            limit=incr.session_limit,
            ttl=incr.session_ttl,
            metrics=self.metrics,
            recovery=(
                self.durability.recover if self.durability is not None else None
            ),
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._recolor_lock: Optional[asyncio.Lock] = None
        self._started_at = 0.0

    # -------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self.config.warm_start:
            indexed = self.cache.load_spill()
            if indexed:
                self.metrics.counter("spill_warm_entries").inc(indexed)
        await self.batcher.start()
        self._shutdown_requested = asyncio.Event()
        self._recolor_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_MESSAGE_BYTES,
        )
        self._started_at = time.monotonic()

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`request_shutdown`) arrives."""
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def stop(self) -> None:
        """Graceful drain: stop accepting, finish queued work, close.

        The whole drain shares one ``drain_timeout`` budget.  If it expires
        with requests still queued or in flight, the batcher answers them
        (``overloaded`` / ``timeout``) rather than hanging the stop, and the
        expiry is counted in the ``drain_expired`` metric.  Connection
        handlers then get a short grace period to flush those responses;
        handlers still open after it — keep-alive clients idling in a read,
        which would otherwise hold the stop until *they* hang up — are
        cancelled.
        """
        deadline = time.monotonic() + self.config.drain_timeout
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        remaining = max(0.0, deadline - time.monotonic())
        drained = await self.batcher.drain(remaining)
        if not drained:
            self.metrics.counter("drain_expired").inc()
        await self.batcher.stop(drain=False, timeout=0.0)
        if self._connections:
            _done, lingering = await asyncio.wait(self._connections, timeout=1.0)
            for task in lingering:
                task.cancel()
            if lingering:
                await asyncio.wait(lingering, timeout=1.0)
        self.cache.close()

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Sniff the wire format off the first two bytes, then serve.

        Binary frames open with the magic ``0xA9 0x27``; every NDJSON
        message opens with ``{``.  The sniffed bytes are handed to the
        chosen loop so nothing is lost — one connection speaks exactly one
        format for its lifetime.
        """
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            try:
                first = await reader.readexactly(2)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:  # died after a single byte: torn, counted
                    self.metrics.counter("torn_lines").inc()
                return
            if first == FRAME_MAGIC:
                await self._serve_binary(reader, writer, first)
            else:
                await self._serve_ndjson(reader, writer, first)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_ndjson(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pending: bytes,
    ) -> None:
        """The line-delimited JSON loop (``pending`` = sniffed bytes).

        A connection dying mid-line is tolerated the way the run-log
        reader tolerates a torn trailing line: the fragment is discarded
        and counted (``torn_lines``), never parsed or logged as an error.
        """
        while True:
            newline = pending.find(b"\n")
            if newline >= 0:
                line, pending = pending[: newline + 1], pending[newline + 1 :]
            else:
                try:
                    rest = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            {"id": "", "status": STATUS_INVALID,
                             "error": "message exceeds size limit"}
                        )
                    )
                    await writer.drain()
                    break
                if not rest:
                    if pending.strip():
                        self.metrics.counter("torn_lines").inc()
                    break
                line, pending = pending + rest, b""
                if not line.endswith(b"\n"):
                    self.metrics.counter("torn_lines").inc()
                    break
            response = await self._handle_message(line)
            writer.write(encode_message(response))
            await writer.drain()
            if response.get("op_effect") == "shutdown":
                break

    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        """The binary-frames loop (``first`` = sniffed magic bytes).

        A peer killed mid-frame surfaces as the typed
        :class:`~repro.service.frames.TornFrameError`, is counted in
        ``torn_frames``, and closes the connection quietly.  Any other
        framing error is answered once (the stream position is untrusted
        afterwards) and also closes the connection.
        """
        self.metrics.counter("binary_connections").inc()
        while True:
            try:
                frame = await read_frame_async(reader, first=first)
            except TornFrameError:
                self.metrics.counter("torn_frames").inc()
                break
            except FrameError as exc:
                self.metrics.counter("protocol_errors").inc()
                writer.write(
                    encode_frame(
                        OP_RESPONSE,
                        {"id": "", "status": STATUS_INVALID, "error": str(exc)},
                    )
                )
                await writer.drain()
                break
            first = b""
            if frame is None:
                break  # clean EOF at a frame boundary
            response, shutdown = await self._handle_frame(frame)
            writer.write(response)
            await writer.drain()
            if shutdown:
                break

    async def _handle_message(self, line: bytes) -> dict:
        try:
            message = decode_message(line)
        except ProtocolError as exc:
            self.metrics.counter("protocol_errors").inc()
            return {"id": "", "status": STATUS_INVALID, "error": str(exc)}
        op = message.get("op")
        request_id = str(message.get("id", ""))
        if op == "ping":
            return {"id": request_id, "status": "ok", "op_echo": "ping"}
        if op == "metrics":
            include_state = bool(message.get("state"))
            return {
                "id": request_id,
                "status": "ok",
                "metrics": self.snapshot(include_state=include_state),
            }
        if op == "shutdown":
            self.request_shutdown()
            return {"id": request_id, "status": "ok", "op_effect": "shutdown"}
        if op == "color":
            return await self._handle_color(message, request_id)
        if op == "recolor":
            try:
                request = recolor_from_wire(message)
            except ProtocolError as exc:
                self.metrics.counter("invalid_requests").inc()
                return {
                    "id": request_id,
                    "status": STATUS_INVALID,
                    "error": str(exc),
                }
            header, starts, changed = await self._serve_recolor(request)
            if starts is not None:
                header["starts"] = starts.ravel().tolist()
            if changed is not None:
                idx, new = changed
                header["changed"] = int(idx.size)
                header["changed_idx"] = idx.tolist()
                header["changed_starts"] = new.tolist()
            return header
        self.metrics.counter("protocol_errors").inc()
        return {
            "id": request_id,
            "status": STATUS_INVALID,
            "error": f"unknown op {op!r}",
        }

    async def _handle_color(self, message: dict, request_id: str) -> dict:
        self.metrics.counter("requests_total").inc()
        try:
            request = request_from_wire(message)
        except ProtocolError as exc:
            self.metrics.counter("invalid_requests").inc()
            return {"id": request_id, "status": STATUS_INVALID, "error": str(exc)}
        result, total = await self._serve_color(request)
        return result_to_wire(
            result,
            request_id,
            extra={"total_ms": total * 1000.0, "worker": self.config.worker_id},
        )

    # -------------------------------------------------------- binary frames
    async def _handle_frame(self, frame: Frame) -> tuple[bytes, bool]:
        """Serve one decoded frame; returns ``(response bytes, shutdown?)``.

        The op vocabulary mirrors :meth:`_handle_message` exactly — same
        counters, same status strings — so the two wires are two encodings
        of one protocol, not two protocols.
        """
        request_id = frame.request_id
        if frame.opcode == OP_HELLO:
            return encode_hello_ok(self.config.worker_id), False
        if frame.opcode == OP_PING:
            return (
                encode_frame(
                    OP_RESPONSE,
                    {"id": request_id, "status": "ok", "op_echo": "ping"},
                ),
                False,
            )
        if frame.opcode == OP_METRICS:
            include_state = bool(frame.header.get("state"))
            return (
                encode_frame(
                    OP_RESPONSE,
                    {
                        "id": request_id,
                        "status": "ok",
                        "metrics": self.snapshot(include_state=include_state),
                    },
                ),
                False,
            )
        if frame.opcode == OP_SHUTDOWN:
            self.request_shutdown()
            return (
                encode_frame(
                    OP_RESPONSE,
                    {"id": request_id, "status": "ok", "op_effect": "shutdown"},
                ),
                True,
            )
        if frame.opcode == OP_RECOLOR:
            try:
                request = decode_recolor_request(frame)
            except ProtocolError as exc:
                self.metrics.counter("invalid_requests").inc()
                return (
                    encode_frame(
                        OP_RESPONSE,
                        {
                            "id": request_id,
                            "status": STATUS_INVALID,
                            "error": str(exc),
                        },
                    ),
                    False,
                )
            header, starts, changed = await self._serve_recolor(request)
            if changed is not None:
                idx, new = changed
                return (
                    encode_recolor_result(
                        header, changed_idx=idx, changed_starts=new
                    ),
                    False,
                )
            return encode_recolor_result(header, starts=starts), False
        if frame.opcode == OP_COLOR:
            self.metrics.counter("requests_total").inc()
            hot = self._frame_fast_path(frame)
            if hot is not None:
                return hot, False
            try:
                request = decode_color_request(frame)
            except ProtocolError as exc:
                self.metrics.counter("invalid_requests").inc()
                return (
                    encode_frame(
                        OP_RESPONSE,
                        {
                            "id": request_id,
                            "status": STATUS_INVALID,
                            "error": str(exc),
                        },
                    ),
                    False,
                )
            result, total = await self._serve_color(request)
            return (
                encode_result(
                    result,
                    request_id,
                    extra={
                        "total_ms": total * 1000.0,
                        "worker": self.config.worker_id,
                    },
                    key=request.key,
                ),
                False,
            )
        self.metrics.counter("protocol_errors").inc()
        return (
            encode_frame(
                OP_RESPONSE,
                {
                    "id": request_id,
                    "status": STATUS_INVALID,
                    "error": f"unexpected opcode {frame.opcode}",
                },
            ),
            False,
        )

    def _frame_fast_path(self, frame: Frame) -> Optional[bytes]:
        """Answer a hot binary request straight off its payload bytes.

        A frame's payload *is* the canonical C-order ``int64`` weight
        bytes, so the content key can be hashed without reconstructing or
        validating the array — identical bytes are identical weights, and
        cached entries only ever exist for weights that validated when
        they were first computed.  Anything irregular (odd header, wrong
        payload length, cache miss) returns ``None`` and falls through to
        the full decode path, which is the validator.
        """
        from repro.runtime.fingerprint import content_key_from_bytes

        header = frame.header
        shape = header.get("shape")
        algorithm = header.get("algorithm")
        if (
            not isinstance(shape, list)
            or len(shape) not in (2, 3)
            or not all(isinstance(s, int) and s > 0 for s in shape)
            or not isinstance(algorithm, str)
            or header.get("dtype", PAYLOAD_DTYPE) != PAYLOAD_DTYPE
        ):
            return None
        cells = 1
        for s in shape:
            cells *= s
        if len(frame.payload) != cells * 8:
            return None
        key = content_key_from_bytes(frame.payload, tuple(shape), algorithm)
        entry = self.cache.peek(key)
        if entry is None:
            return None
        self.metrics.counter("cache_hits").inc()
        self.metrics.counter("fastpath_hits").inc()
        self.metrics.counter("responses_ok").inc()
        self.metrics.histogram("request_latency").observe(0.0)
        result = ServedResult(
            status=STATUS_OK,
            starts=entry.starts,
            maxcolor=entry.maxcolor,
            source="cache",
            compute_seconds=entry.compute_seconds,
        )
        return encode_result(
            result,
            frame.request_id,
            extra={"total_ms": 0.0, "worker": self.config.worker_id},
            key=key,
        )

    # ------------------------------------------------------- shared color path
    async def _serve_color(self, request: ColorRequest) -> tuple[ServedResult, float]:
        """Admission, deadline, and compute for one parsed request.

        Shared by both wire formats.  A content-key hit in the result
        cache is answered *here* — before admission control and without
        paying the batch window — which is what lets hot cached traffic
        run at wire speed while misses still batch normally.
        """
        from repro.core.algorithms.registry import REGISTRY, UnknownAlgorithmError

        received = time.monotonic()
        result = await self._resolve_color(request, REGISTRY, UnknownAlgorithmError)
        total = time.monotonic() - received
        self.metrics.histogram("request_latency").observe(total)
        if result.ok:
            self.metrics.counter("responses_ok").inc()
        elif result.status == STATUS_ERROR:
            self.metrics.counter("request_errors").inc()
        return result, total

    async def _resolve_color(
        self, request: ColorRequest, registry, unknown_error
    ) -> ServedResult:
        try:
            registry.get(request.algorithm)  # cheap pre-admission validation
        except unknown_error as exc:
            return ServedResult(status=STATUS_ERROR, error=str(exc))

        # Cache fast path: peek (not get — a fast-path absence must not
        # double-count the miss the batcher will count) and answer hot keys
        # without touching the queue.
        entry = self.cache.peek(request.key)
        if entry is not None:
            self.metrics.counter("cache_hits").inc()
            self.metrics.counter("fastpath_hits").inc()
            return ServedResult(
                status=STATUS_OK,
                starts=entry.starts,
                maxcolor=entry.maxcolor,
                source="cache",
                compute_seconds=entry.compute_seconds,
            )

        # Admission control: bounded queue, immediate backpressure beyond it.
        if self.batcher.depth >= self.config.queue_limit:
            self.metrics.counter("rejected_overload").inc()
            return ServedResult(
                status=STATUS_OVERLOADED,
                error=f"queue full ({self.config.queue_limit} requests)",
            )

        timeout = min(
            request.timeout or self.config.default_timeout,
            self.config.default_timeout,
        )
        if request.timeout is None:
            request = replace(request, timeout=timeout)
        future = self.batcher.submit(request)
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.metrics.counter("request_timeouts").inc()
            return ServedResult(
                status=STATUS_TIMEOUT, error=f"deadline of {timeout:.3f}s expired"
            )

    # ------------------------------------------------------- recolor sessions
    async def _serve_recolor(
        self, request: RecolorRequest
    ) -> tuple[dict, Optional[np.ndarray], Optional[tuple]]:
        """Serve one recolor op; ``(header, full starts?, (idx, starts)?)``.

        Wire-agnostic: the NDJSON handler JSON-encodes the arrays, the
        binary handler ships them as payload bytes.  A seed colors the grid
        from scratch and stores the session; a delta patches the held
        coloring through :func:`repro.incremental.recolor_grid` and answers
        with only the cells whose start changed.  An unknown/expired
        session is a typed ``invalid`` answer (``code: "unknown-session"``)
        on the live connection — state loss is recoverable, so it must not
        cost the client its transport.

        The ``service.recolor`` fault site is drawn *before* any session
        state is mutated, so an injected error leaves the session exactly
        as the previous delta committed it — a client retry (deltas carry
        absolute weights) is then idempotent.  One lock serializes recolor
        computes: deltas are causally ordered per session, and cross-session
        fairness is not worth racing commits for.

        With durability active (``--spill-dir`` + ``DurabilityConfig``),
        every delta is journaled *before* it is acknowledged — a failed
        append answers ``error`` and the client's idempotent re-send
        journals again — and an unknown session first attempts journal/
        checkpoint replay (``session_recoveries``/``journal_replay_seconds``
        in ``/metrics``, ``recovered: true`` on the response) before the
        typed error is emitted, making worker crashes and router failover
        invisible to a mid-stream client.
        """
        from repro.incremental.engine import full_recolor, recolor_grid

        self.metrics.counter("requests_total").inc()
        received = time.monotonic()
        loop = asyncio.get_running_loop()
        rid = request.request_id
        base = {"id": rid, "session": request.session,
                "worker": self.config.worker_id}
        assert self._recolor_lock is not None
        try:
            async with self._recolor_lock:
                if request.is_seed:
                    inject("service.recolor", f"{request.session}#seed")
                    weights = request.weights
                    starts = await loop.run_in_executor(
                        None,
                        lambda: full_recolor(
                            weights, request.algorithm, context=self.context
                        ),
                    )
                    maxcolor = int((starts + weights).max()) if weights.size else 0
                    session = self.sessions.open(
                        request.session, request.algorithm, weights, starts,
                        maxcolor,
                    )
                    if self.durability is not None:
                        # WAL the seed before acknowledging it: a failed
                        # journal write fails the seed (the client retries)
                        # rather than leaving an unrecoverable session.
                        await loop.run_in_executor(
                            None, self.durability.record_seed, session
                        )
                    header = {
                        **base,
                        "status": STATUS_OK,
                        "mode": "seed",
                        "algorithm": request.algorithm,
                        "shape": [int(s) for s in weights.shape],
                        "maxcolor": maxcolor,
                    }
                    self._finish_recolor(received, ok=True)
                    return header, starts, None

                lookup_started = time.perf_counter()
                try:
                    # Recovery-aware lookup: an unknown session first gets
                    # a journal/checkpoint replay (run in the executor —
                    # it does full numpy recolors) before the typed error.
                    session, recovered = await loop.run_in_executor(
                        None, self.sessions.get_or_recover, request.session
                    )
                except UnknownSessionError as exc:
                    self.metrics.counter("recolor_unknown_sessions").inc()
                    header = {
                        **base,
                        "status": STATUS_INVALID,
                        "code": UNKNOWN_SESSION_CODE,
                        "error": str(exc),
                    }
                    return header, None, None
                if recovered:
                    self.metrics.histogram("journal_replay_seconds").observe(
                        time.perf_counter() - lookup_started
                    )
                    base["recovered"] = True
                n = session.weights.size
                idx = request.delta_idx
                if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= n):
                    self.metrics.counter("invalid_requests").inc()
                    header = {
                        **base,
                        "status": STATUS_INVALID,
                        "error": f"delta indices out of range [0, {n})",
                    }
                    return header, None, None
                inject(
                    "service.recolor",
                    f"{request.session}#{session.deltas_applied}",
                )
                new_weights = session.weights.copy()
                new_weights.ravel()[idx] = request.delta_weights
                old_starts = session.starts
                outcome = await loop.run_in_executor(
                    None,
                    lambda: recolor_grid(
                        new_weights,
                        old_starts,
                        idx,
                        algorithm=session.algorithm,
                        context=self.context,
                    ),
                )
                changed_idx = np.flatnonzero(
                    outcome.starts.ravel() != old_starts.ravel()
                )
                changed_starts = outcome.starts.ravel()[changed_idx]
                if self.durability is not None:
                    # WAL-before-ack: journal the delta before committing
                    # it.  A failed append raises into the generic error
                    # answer below; the session is untouched and the
                    # client's re-send (absolute weights) is idempotent.
                    seq = session.deltas_applied + 1
                    await loop.run_in_executor(
                        None,
                        lambda: self.durability.record_delta(
                            request.session, seq, idx, request.delta_weights
                        ),
                    )
                self.sessions.commit(
                    session, new_weights, outcome.starts, outcome.maxcolor
                )
                if self.durability is not None:
                    # Compaction is best-effort and never fails the delta:
                    # a skipped/corrupt checkpoint just leaves the journal
                    # longer for the next replay.
                    try:
                        await loop.run_in_executor(
                            None, self.durability.maybe_checkpoint, session
                        )
                    except Exception:
                        self.metrics.counter("checkpoint_write_errors").inc()
                header = {
                    **base,
                    "status": STATUS_OK,
                    "mode": outcome.mode,
                    "maxcolor": outcome.maxcolor,
                    "deltas_applied": session.deltas_applied,
                    "recolor": outcome.stats(),
                }
                self._finish_recolor(received, ok=True)
                return header, None, (changed_idx, changed_starts)
        except Exception as exc:
            self._finish_recolor(received, ok=False)
            header = {
                **base,
                "status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}",
            }
            return header, None, None

    def _finish_recolor(self, received: float, *, ok: bool) -> None:
        total = time.monotonic() - received
        self.metrics.histogram("request_latency").observe(total)
        if ok:
            self.metrics.counter("responses_ok").inc()
        else:
            self.metrics.counter("request_errors").inc()

    # ---------------------------------------------------------------- metrics
    def snapshot(self, include_state: bool = False) -> dict:
        """Metrics + cache + substrate-cache state, JSON-serializable.

        ``include_state=True`` carries mergeable histogram state — the form
        the router requests from each worker so it can fold per-worker
        snapshots into one fleet view with ``merge_snapshots``.
        """
        from repro.kernels.substrate import substrate_stats

        snap = self.metrics.snapshot(include_state=include_state)
        snap["cache"] = self.cache.stats()
        snap["sessions"] = self.sessions.stats()
        if self.durability is not None:
            snap["sessions"]["durability"] = self.durability.stats()
        snap["substrate"] = substrate_stats(self.context)
        snap["server"] = {
            "worker_id": self.config.worker_id,
            "wire_protocols": ["ndjson"]
            + [f"frames/v{v}" for v in SUPPORTED_FRAME_VERSIONS],
            "uptime_seconds": time.monotonic() - self._started_at,
            "queue_depth": self.batcher.depth,
            "queue_limit": self.config.queue_limit,
            "max_batch": self.config.max_batch,
            "batch_window_ms": self.config.batch_window * 1000.0,
            "compute_threads": self.config.compute_threads,
            "cache_size": self.config.cache_size,
            **self.config.extra_metadata,
        }
        return snap


async def run_service(config: ServerConfig, *, ready=None) -> None:
    """Start a service and serve until a shutdown op (CLI entry)."""
    service = ColoringService(config)
    await service.start()
    if ready is not None:
        ready(service)
    await service.serve_until_shutdown()


class ServerThread:
    """A :class:`ColoringService` on a private event loop in a daemon thread.

    ``start()`` blocks until the listener is bound and returns the port;
    ``stop()`` requests a graceful drain and joins the thread.  Used by the
    benchmark, tests, and ``stencil-ivc loadgen --spawn``.
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.service: Optional[ColoringService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.service is not None
        return self.service.port

    @property
    def host(self) -> str:
        return self.config.host

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="coloring-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("coloring service failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"coloring service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.service = ColoringService(self.config)
            await self.service.start()
        except BaseException as exc:  # startup failure: surface to starter
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.service.serve_until_shutdown()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.service is not None:
            try:
                self._loop.call_soon_threadsafe(self.service.request_shutdown)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
