"""Binary wire frames: the service's high-throughput alternative to NDJSON.

NDJSON round-trips every ``int64`` weight and start value through decimal
text — fine for a demo, ruinous for a tier serving thousands of grids per
second.  A binary frame ships the same request/response vocabulary as the
JSON protocol (:mod:`repro.service.protocol`) but with the bulk array data
as raw little-endian bytes and a fixed preamble the router can parse
without touching JSON at all.

Frame layout (all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       2     magic  0xA9 0x27  (the 9-pt / 27-pt stencils)
    2       1     frame version (currently 1)
    3       1     flags  (bit 0: one sacrificial ``\\n`` follows the frame)
    4       1     opcode (hello/color/metrics/ping/shutdown/response)
    5       20    routing key: raw ``content_key`` digest bytes (zeros if n/a)
    25      4     header length H
    29      8     payload length P
    37      H     header: compact UTF-8 JSON object
    37+H    P     payload: raw array bytes (C-order ``<i8``)

The 37-byte preamble carries everything the accept/route front process
needs — opcode and routing key — so the router forwards frames without
decoding headers or weights.  The header mirrors the NDJSON message of the
same operation minus the bulk field (``weights`` on requests, ``starts``
on responses), which lives in the payload instead.  Decoded binary
requests are *object-identical* to decoded NDJSON requests: both paths
build the weight array and then run through the same
:func:`~repro.service.protocol.request_from_fields` validation.

Negotiation
-----------
A client that wants binary frames opens the connection by sending a
``hello`` frame (with the sacrificial-newline flag set, and a header
padded so the raw bytes contain no ``0x0A``).  A frames-speaking server
answers with a ``response`` frame listing the frame versions it speaks and
its ``worker_id``; the connection is then binary for its lifetime.  A
pre-frames server reads the hello as one garbage NDJSON line and answers
with a JSON ``invalid`` message — the client sees ``{`` instead of the
magic, discards that line, and falls back to NDJSON on the same
connection.  NDJSON therefore remains the forever-compatible fallback; no
server version ever breaks an old client or vice versa.

Torn frames
-----------
A peer killed mid-frame is an expected event, not a stack trace:
truncation at any byte raises the typed :class:`TornFrameError` (a
:class:`FrameError`, itself a
:class:`~repro.service.protocol.ProtocolError`), which the server counts
in the ``torn_frames`` metric and treats as end-of-connection — mirroring
the torn-trailing-line tolerance of the JSONL run-log reader.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import struct
from typing import Any, NamedTuple, Optional

import numpy as np

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_API_VERSION,
    ColorRequest,
    ProtocolError,
    RecolorRequest,
    ServedResult,
    recolor_from_arrays,
    request_from_fields,
)

#: First bytes of every frame; chosen so no frame can be mistaken for the
#: start of a JSON message (NDJSON lines begin with ``{``).
FRAME_MAGIC = b"\xa9\x27"

#: The frame format version this build speaks.
FRAME_VERSION = 1

#: All frame versions this build can decode (negotiated via ``hello``).
SUPPORTED_FRAME_VERSIONS = (1,)

#: Flag bit: one sacrificial ``\n`` byte follows the frame (set on hello
#: frames so a pre-frames server's ``readline`` terminates).
FLAG_TRAILING_NEWLINE = 0x01

#: Opcodes (one byte in the preamble; ``OP_RESPONSE`` covers every reply).
OP_HELLO = 0
OP_COLOR = 1
OP_METRICS = 2
OP_PING = 3
OP_SHUTDOWN = 4
OP_RESPONSE = 5
OP_RECOLOR = 6

_OPCODES = (
    OP_HELLO,
    OP_COLOR,
    OP_METRICS,
    OP_PING,
    OP_SHUTDOWN,
    OP_RESPONSE,
    OP_RECOLOR,
)

#: Preamble: magic, version, flags, opcode, routing key, header len, payload len.
_PREAMBLE = struct.Struct("<2sBBB20sIQ")

#: Size of the fixed preamble in bytes.
PREAMBLE_SIZE = _PREAMBLE.size  # 37

#: Upper bound on the JSON header of one frame (the bulk data is payload).
MAX_HEADER_BYTES = 1 << 20

#: Raw-key length (hex ``content_key`` digests are 20 bytes / 40 hex chars).
KEY_SIZE = 20

_ZERO_KEY = b"\x00" * KEY_SIZE

#: Array dtype every payload uses (documented in headers as ``dtype``).
PAYLOAD_DTYPE = "<i8"


class FrameError(ProtocolError):
    """Bytes that do not parse as a valid frame (magic, version, bounds)."""


class TornFrameError(FrameError):
    """A frame truncated mid-read — the peer died or was killed mid-send."""


class Frame(NamedTuple):
    """One decoded frame: preamble fields plus header dict and raw payload."""

    opcode: int
    flags: int
    key: str  # hex routing key ("" when the preamble key is all zeros)
    header: dict
    payload: bytes

    @property
    def request_id(self) -> str:
        return str(self.header.get("id", ""))


def _key_bytes(key: str) -> bytes:
    if not key:
        return _ZERO_KEY
    raw = bytes.fromhex(key)
    if len(raw) != KEY_SIZE:
        raise FrameError(f"routing key must be {KEY_SIZE} bytes, got {len(raw)}")
    return raw


# ------------------------------------------------------------------- encoding
def encode_frame(
    opcode: int,
    header: dict[str, Any],
    payload: bytes = b"",
    *,
    key: str = "",
    flags: int = 0,
) -> bytes:
    """One wire-ready frame: preamble + JSON header + raw payload."""
    if opcode not in _OPCODES:
        raise FrameError(f"unknown opcode {opcode!r}")
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    if len(header_bytes) > MAX_HEADER_BYTES:
        raise FrameError(
            f"header of {len(header_bytes)} bytes exceeds the "
            f"{MAX_HEADER_BYTES} limit"
        )
    if len(payload) > MAX_MESSAGE_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES} limit"
        )
    preamble = _PREAMBLE.pack(
        FRAME_MAGIC,
        FRAME_VERSION,
        flags,
        opcode,
        _key_bytes(key),
        len(header_bytes),
        len(payload),
    )
    tail = b"\n" if flags & FLAG_TRAILING_NEWLINE else b""
    return preamble + header_bytes + payload + tail


def encode_hello() -> bytes:
    """The client's opening negotiation frame.

    Padded so the raw bytes contain no ``0x0A`` except the sacrificial
    trailing newline — a pre-frames server reads exactly one garbage line
    and answers with a JSON ``invalid`` message the client recognizes as
    "fall back to NDJSON".
    """
    header = {
        "op": "hello",
        "frames": list(SUPPORTED_FRAME_VERSIONS),
        "api": PROTOCOL_API_VERSION,
    }
    # Pad the header with spaces to a fixed 64 bytes: the header-length
    # field then never encodes to 0x0A, and JSON itself has no newlines.
    header_bytes = json.dumps(header, separators=(",", ":")).ljust(64).encode()
    preamble = _PREAMBLE.pack(
        FRAME_MAGIC, FRAME_VERSION, FLAG_TRAILING_NEWLINE, OP_HELLO,
        _ZERO_KEY, len(header_bytes), 0,
    )
    assert b"\n" not in preamble + header_bytes, "hello must be newline-free"
    return preamble + header_bytes + b"\n"


def encode_hello_ok(worker_id: str = "") -> bytes:
    """The server's negotiation reply: versions spoken plus identity."""
    header = {
        "status": "ok",
        "op_echo": "hello",
        "frames": list(SUPPORTED_FRAME_VERSIONS),
        "api": PROTOCOL_API_VERSION,
    }
    if worker_id:
        header["worker_id"] = worker_id
    return encode_frame(OP_RESPONSE, header)


def encode_color_request(request: ColorRequest) -> bytes:
    """A ``color`` frame: options in the header, raw weight bytes as payload.

    The preamble carries the request's content key so a router can route
    on it without decoding anything.
    """
    from repro.runtime.fingerprint import canonical_weights

    header: dict[str, Any] = {
        "api": PROTOCOL_API_VERSION,
        "op": "color",
        "id": request.request_id,
        "shape": list(request.shape),
        "algorithm": request.algorithm,
        "dtype": PAYLOAD_DTYPE,
    }
    if request.tiled:
        header["runtime"] = "tiled"
    elif request.fast is not None:
        header["runtime"] = "kernels" if request.fast else "reference"
    if request.tile_shape is not None:
        header["tiles"] = list(request.tile_shape)
    if request.validate:
        header["validate"] = True
    if request.timeout is not None:
        header["timeout_ms"] = request.timeout * 1000.0
    payload = canonical_weights(request.weights).tobytes()
    return encode_frame(OP_COLOR, header, payload, key=request.key)


def decode_color_request(frame: Frame) -> ColorRequest:
    """Validate and decode a ``color`` frame into a :class:`ColorRequest`.

    Builds the weight array straight off the payload buffer, then runs the
    *same* field validation as the NDJSON decoder
    (:func:`~repro.service.protocol.request_from_fields`), so a request is
    decoded identically regardless of which wire carried it.  The content
    key is always recomputed from the weights — the preamble key is a
    routing hint, never trusted for cache identity.
    """
    header = frame.header
    api = header.get("api")
    if api is not None and api != PROTOCOL_API_VERSION:
        raise ProtocolError(
            f"unsupported api version {api!r} (this server speaks "
            f"{PROTOCOL_API_VERSION})"
        )
    shape = header.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(s, int) and s > 0 for s in shape
    ):
        raise ProtocolError("'shape' must be a list of positive integers")
    if len(shape) not in (2, 3):
        raise ProtocolError(f"expected a 2D or 3D shape, got {len(shape)} dims")
    dtype = header.get("dtype", PAYLOAD_DTYPE)
    if dtype != PAYLOAD_DTYPE:
        raise ProtocolError(
            f"unsupported payload dtype {dtype!r} (this server speaks "
            f"{PAYLOAD_DTYPE!r})"
        )
    expected = int(np.prod([int(s) for s in shape])) * 8
    if len(frame.payload) != expected:
        raise ProtocolError(
            f"expected {expected} payload bytes for shape {tuple(shape)}, "
            f"got {len(frame.payload)}"
        )
    # .copy() detaches from the network buffer and yields a writable,
    # C-contiguous array — the same object shape the NDJSON path builds.
    arr = (
        np.frombuffer(frame.payload, dtype=PAYLOAD_DTYPE)
        .reshape(tuple(shape))
        .copy()
    )
    return request_from_fields(arr, header)


def session_routing_key(session: str) -> str:
    """The preamble routing key for a recolor session (hex, 20 bytes).

    ``color`` frames route by content key so identical grids land on one
    worker's cache; ``recolor`` ops must instead route by *session* — every
    seed and delta of one session has to reach the worker holding (or able
    to journal-recover) its state.  Hashing the client-chosen session id to
    the fixed :data:`KEY_SIZE` keeps arbitrary-length ids out of the
    preamble while the router's rendezvous ranking stays deterministic.
    """
    return hashlib.blake2b(session.encode(), digest_size=KEY_SIZE).hexdigest()


def encode_recolor_request(request: RecolorRequest) -> bytes:
    """A ``recolor`` frame, in either of the op's two forms.

    Seed form: the header carries ``shape`` + ``algorithm`` and the payload
    is the raw C-order weight bytes — byte-identical to a ``color``
    payload.  Delta form: the header carries ``"delta": K`` and the payload
    is ``K`` flat indices followed by ``K`` absolute new weights, both raw
    ``<i8``.

    Both forms stamp :func:`session_routing_key` into the preamble, so a
    router forwards the whole session to one rendezvous-chosen worker (and
    to the same sibling on failover, where journal replay picks it up).
    A delta answer may carry ``"recovered": true`` in its header when the
    serving worker rebuilt the session from its journal first.
    """
    header: dict[str, Any] = {
        "api": PROTOCOL_API_VERSION,
        "op": "recolor",
        "id": request.request_id,
        "session": request.session,
        "dtype": PAYLOAD_DTYPE,
    }
    if request.is_seed:
        header["shape"] = [int(s) for s in request.weights.shape]
        header["algorithm"] = request.algorithm
        payload = np.ascontiguousarray(
            request.weights, dtype=PAYLOAD_DTYPE
        ).tobytes()
    else:
        idx = np.ascontiguousarray(request.delta_idx, dtype=PAYLOAD_DTYPE)
        new = np.ascontiguousarray(request.delta_weights, dtype=PAYLOAD_DTYPE)
        header["delta"] = int(idx.size)
        payload = idx.tobytes() + new.tobytes()
    return encode_frame(
        OP_RECOLOR, header, payload, key=session_routing_key(request.session)
    )


def decode_recolor_request(frame: Frame) -> RecolorRequest:
    """Validate and decode a ``recolor`` frame (either form).

    Array building is the only wire-specific part; the field validation is
    the shared :func:`~repro.service.protocol.recolor_from_arrays`, so a
    recolor op decodes identically on either wire.
    """
    header = frame.header
    dtype = header.get("dtype", PAYLOAD_DTYPE)
    if dtype != PAYLOAD_DTYPE:
        raise ProtocolError(
            f"unsupported payload dtype {dtype!r} (this server speaks "
            f"{PAYLOAD_DTYPE!r})"
        )
    if "shape" in header:
        shape = header.get("shape")
        if not isinstance(shape, list) or not all(
            isinstance(s, int) and s > 0 for s in shape
        ):
            raise ProtocolError("'shape' must be a list of positive integers")
        if len(shape) not in (2, 3):
            raise ProtocolError(
                f"expected a 2D or 3D shape, got {len(shape)} dims"
            )
        expected = int(np.prod([int(s) for s in shape])) * 8
        if len(frame.payload) != expected:
            raise ProtocolError(
                f"expected {expected} payload bytes for shape {tuple(shape)}, "
                f"got {len(frame.payload)}"
            )
        arr = (
            np.frombuffer(frame.payload, dtype=PAYLOAD_DTYPE)
            .reshape(tuple(shape))
            .copy()
        )
        return recolor_from_arrays(header, weights=arr)
    count = header.get("delta")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError("'delta' must be the non-negative update count")
    if len(frame.payload) != count * 16:
        raise ProtocolError(
            f"expected {count * 16} payload bytes for a {count}-cell delta, "
            f"got {len(frame.payload)}"
        )
    flat = np.frombuffer(frame.payload, dtype=PAYLOAD_DTYPE)
    return recolor_from_arrays(
        header,
        delta_idx=flat[:count].copy(),
        delta_weights=flat[count:].copy(),
    )


def encode_recolor_result(
    header: dict[str, Any],
    *,
    starts: Optional[np.ndarray] = None,
    changed_idx: Optional[np.ndarray] = None,
    changed_starts: Optional[np.ndarray] = None,
) -> bytes:
    """A response frame for a recolor op.

    A seed answer ships the full ``starts`` as payload (the ordinary
    response shape); a delta answer ships ``changed_idx ++ changed_starts``
    with ``"changed": K`` in the header so
    :func:`response_to_message` can split the concatenation back apart.
    """
    header = dict(header)
    payload = b""
    if starts is not None:
        header["dtype"] = PAYLOAD_DTYPE
        payload = np.ascontiguousarray(
            np.asarray(starts).ravel(), dtype=PAYLOAD_DTYPE
        ).tobytes()
    elif changed_idx is not None:
        assert changed_starts is not None
        idx = np.ascontiguousarray(changed_idx, dtype=PAYLOAD_DTYPE)
        new = np.ascontiguousarray(changed_starts, dtype=PAYLOAD_DTYPE)
        header["dtype"] = PAYLOAD_DTYPE
        header["changed"] = int(idx.size)
        payload = idx.tobytes() + new.tobytes()
    return encode_frame(OP_RESPONSE, header, payload)


def encode_result(
    result: ServedResult,
    request_id: str,
    extra: Optional[dict[str, Any]] = None,
    *,
    key: str = "",
) -> bytes:
    """A ``response`` frame for one served result (starts as payload)."""
    header: dict[str, Any] = {"id": request_id, "status": result.status}
    payload = b""
    if result.ok:
        assert result.starts is not None
        starts = np.ascontiguousarray(
            np.asarray(result.starts).ravel(), dtype=PAYLOAD_DTYPE
        )
        payload = starts.tobytes()
        header["dtype"] = PAYLOAD_DTYPE
        header["maxcolor"] = int(result.maxcolor or 0)
        header["source"] = result.source
        header["compute_ms"] = result.compute_seconds * 1000.0
        header["batch_size"] = result.batch_size
    elif result.error:
        header["error"] = result.error
    if extra:
        header.update(extra)
    return encode_frame(OP_RESPONSE, header, payload, key=key)


def response_to_message(frame: Frame) -> dict[str, Any]:
    """A response frame as the equivalent NDJSON message dict.

    The payload (if any) becomes a ``starts`` ndarray — downstream client
    code reshapes it exactly as it reshapes the JSON list.  A recolor-delta
    response (``"changed": K`` in the header) instead splits its payload
    into ``changed_idx`` / ``changed_starts`` arrays of ``K`` values each.
    """
    message = dict(frame.header)
    if frame.payload:
        if len(frame.payload) % 8:
            raise FrameError(
                f"response payload of {len(frame.payload)} bytes is not a "
                "whole number of int64 values"
            )
        if "changed" in message:
            count = int(message["changed"])
            if len(frame.payload) != count * 16:
                raise FrameError(
                    f"changed-cells payload of {len(frame.payload)} bytes "
                    f"does not hold {count} (idx, start) pairs"
                )
            flat = np.frombuffer(frame.payload, dtype=PAYLOAD_DTYPE)
            message["changed_idx"] = flat[:count]
            message["changed_starts"] = flat[count:]
        else:
            message["starts"] = np.frombuffer(frame.payload, dtype=PAYLOAD_DTYPE)
    elif "changed" in message and int(message["changed"]) == 0:
        empty = np.empty(0, dtype=np.int64)
        message["changed_idx"] = empty
        message["changed_starts"] = empty
    return message


# ------------------------------------------------------------------- decoding
def decode_preamble(raw: bytes) -> tuple[int, int, int, str, int, int]:
    """``(version, flags, opcode, key_hex, header_len, payload_len)``.

    Raises :class:`FrameError` on a bad magic, unsupported version, unknown
    opcode, or out-of-bounds lengths.
    """
    if len(raw) != PREAMBLE_SIZE:
        raise TornFrameError(
            f"preamble truncated: {len(raw)} of {PREAMBLE_SIZE} bytes"
        )
    magic, version, flags, opcode, key_raw, header_len, payload_len = (
        _PREAMBLE.unpack(raw)
    )
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version not in SUPPORTED_FRAME_VERSIONS:
        raise FrameError(
            f"unsupported frame version {version} (this build speaks "
            f"{list(SUPPORTED_FRAME_VERSIONS)})"
        )
    if opcode not in _OPCODES:
        raise FrameError(f"unknown opcode {opcode}")
    if header_len > MAX_HEADER_BYTES:
        raise FrameError(
            f"header of {header_len} bytes exceeds the {MAX_HEADER_BYTES} limit"
        )
    if payload_len > MAX_MESSAGE_BYTES:
        raise FrameError(
            f"payload of {payload_len} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES} limit"
        )
    key = "" if key_raw == _ZERO_KEY else key_raw.hex()
    return version, flags, opcode, key, header_len, payload_len


def _parse_header(raw: bytes) -> dict:
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame header: {exc}") from None
    if not isinstance(header, dict):
        raise FrameError("frame header must be a JSON object")
    return header


def decode_frame(raw: bytes) -> Frame:
    """Decode one complete frame from a byte string (tests, fuzzing)."""
    _version, flags, opcode, key, header_len, payload_len = decode_preamble(
        raw[:PREAMBLE_SIZE]
    )
    end = PREAMBLE_SIZE + header_len + payload_len
    if len(raw) < end:
        raise TornFrameError(
            f"frame truncated: {len(raw)} of {end} bytes"
        )
    header = _parse_header(raw[PREAMBLE_SIZE:PREAMBLE_SIZE + header_len])
    payload = raw[PREAMBLE_SIZE + header_len:end]
    return Frame(opcode, flags, key, header, payload)


def _read_exact(stream, count: int, what: str) -> bytes:
    """Exactly ``count`` bytes from a blocking file object, or a typed error."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise TornFrameError(
                f"{what} truncated: {count - remaining} of {count} bytes"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream, *, first: bytes = b"") -> Optional[Frame]:
    """Read one frame from a blocking buffered stream.

    ``first`` is any preamble prefix already consumed (connection sniffing
    hands the first bytes over).  Returns ``None`` on a clean EOF at a
    frame boundary; raises :class:`TornFrameError` on truncation anywhere
    else.
    """
    head = bytes(first)
    if not head:
        head = stream.read(PREAMBLE_SIZE)
        if not head:
            return None  # clean EOF between frames
    if len(head) < PREAMBLE_SIZE:
        head += _read_exact(stream, PREAMBLE_SIZE - len(head), "preamble")
    _version, flags, opcode, key, header_len, payload_len = decode_preamble(head)
    header = _parse_header(_read_exact(stream, header_len, "header"))
    payload = _read_exact(stream, payload_len, "payload")
    if flags & FLAG_TRAILING_NEWLINE:
        _read_exact(stream, 1, "trailing newline")
    return Frame(opcode, flags, key, header, payload)


async def read_frame_async(
    reader: asyncio.StreamReader, *, first: bytes = b""
) -> Optional[Frame]:
    """Asyncio twin of :func:`read_frame` (same EOF/truncation contract)."""
    head = bytes(first)
    try:
        if not head:
            head = await reader.readexactly(PREAMBLE_SIZE)
        elif len(head) < PREAMBLE_SIZE:
            head += await reader.readexactly(PREAMBLE_SIZE - len(head))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not first:
            return None  # clean EOF between frames
        raise TornFrameError(
            f"preamble truncated: {len(first) + len(exc.partial)} of "
            f"{PREAMBLE_SIZE} bytes"
        ) from None
    _version, flags, opcode, key, header_len, payload_len = decode_preamble(head)
    tail = 1 if flags & FLAG_TRAILING_NEWLINE else 0
    try:
        body = await reader.readexactly(header_len + payload_len + tail)
    except asyncio.IncompleteReadError as exc:
        raise TornFrameError(
            f"frame body truncated ({len(exc.partial)} of "
            f"{exc.expected} bytes remaining)"
        ) from None
    header_raw = body[:header_len]
    payload = body[header_len : header_len + payload_len]
    return Frame(opcode, flags, key, _parse_header(header_raw), payload)


class frame_timeout:
    """``asyncio.timeout`` with a Python 3.10 fallback.

    The hot serving paths bound every frame read with a deadline;
    ``asyncio.wait_for`` wraps the awaitable in a fresh Task per call,
    which at thousands of frames per second is real CPU.  On 3.11+ this
    *is* ``asyncio.timeout``; on 3.10 a minimal cancellation-timer
    equivalent stands in (an external cancellation that races the timer
    within the window is reported as a timeout — acceptable for frame
    reads, where both unwind the connection the same way).
    """

    def __new__(cls, delay: Optional[float]):
        native = getattr(asyncio, "timeout", None)
        if native is not None:
            return native(delay)
        return super().__new__(cls)

    def __init__(self, delay: Optional[float]) -> None:
        self._delay = delay
        self._timer: Optional[asyncio.TimerHandle] = None
        self._task: Optional[asyncio.Task] = None
        self._fired = False

    async def __aenter__(self) -> "frame_timeout":
        self._task = asyncio.current_task()
        if self._delay is not None:
            self._timer = asyncio.get_running_loop().call_later(
                self._delay, self._fire
            )
        return self

    def _fire(self) -> None:
        self._fired = True
        assert self._task is not None
        self._task.cancel()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        if self._timer is not None:
            self._timer.cancel()
        if self._fired and exc_type is asyncio.CancelledError:
            raise TimeoutError from exc
        return False
