"""Clients for the coloring service: blocking sockets and asyncio streams.

:class:`ServiceClient` is the simple synchronous client (CLI, tests,
benchmark baselines): one socket, one request in flight.
:class:`AsyncServiceClient` is the asyncio variant the load generator uses to
keep many requests in flight across connections.

Both speak either wire format of the service.  With ``wire="auto"`` (the
default) a client opens every connection with a binary ``hello`` frame
(:mod:`repro.service.frames`): a frames-speaking server answers in frames
and the connection is binary for its lifetime; a pre-frames server answers
the hello with one JSON ``invalid`` line and the client silently falls
back to NDJSON on the same connection.  ``wire="ndjson"`` skips the
handshake; ``wire="binary"`` makes a fallback an error.  The negotiated
format is exposed as :attr:`ServiceClient.wire` and both return
:class:`ColorResponse` objects either way.
Service-level outcomes (``error``, ``timeout``, ``overloaded``…) are
reported in :attr:`ColorResponse.status` so callers can count and retry
without exception plumbing.  Transport failures — a dropped TCP connection,
a refused reconnect, a read timeout — are wrapped into a typed
:class:`ServiceConnectionError` carrying the host, port, and request id
instead of leaking raw ``OSError`` subclasses.

Both clients optionally *self-heal*: constructed with a
:class:`~repro.resilience.retry.RetryPolicy`, a failed round trip tears
down the dead socket, backs off (exponential + seeded jitter), reconnects,
and re-sends — safe because every request is content-addressed and
idempotent: re-asking for the same coloring returns the same bits, at worst
re-hitting the server's result cache.  ``retries_used`` counts the budget
spent.

Chaos hooks: each round-trip attempt passes through the ``client.send`` /
``client.recv`` fault sites (:mod:`repro.resilience.faults`) with token
``"<request-id>#<attempt>"`` — ``drop`` severs the connection before the
write or before the read, ``partial`` sends a torn frame then severs,
``slow`` delays the attempt.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.resilience.faults import draw
from repro.resilience.retry import RetryPolicy
from repro.service.frames import (
    FRAME_MAGIC,
    FRAME_VERSION,
    OP_COLOR,
    OP_METRICS,
    OP_PING,
    OP_SHUTDOWN,
    FrameError,
    TornFrameError,
    encode_color_request,
    encode_frame,
    encode_hello,
    encode_recolor_request,
    frame_timeout,
    read_frame,
    read_frame_async,
    response_to_message,
)
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    STATUS_INVALID,
    STATUS_OK,
    UNKNOWN_SESSION_CODE,
    ColorRequest,
    ProtocolError,
    RecolorRequest,
    decode_message,
    encode_message,
    recolor_to_wire,
    request_to_wire,
)

#: Accepted values of the clients' ``wire`` argument.
WIRE_MODES = ("auto", "binary", "ndjson")


def _check_wire(wire: str) -> str:
    if wire not in WIRE_MODES:
        raise ValueError(f"wire must be one of {WIRE_MODES}, got {wire!r}")
    return wire


class ServiceError(RuntimeError):
    """Transport or framing failure talking to the service."""


class ServiceConnectionError(ServiceError):
    """A broken, refused, or timed-out connection to the service.

    Carries :attr:`host`, :attr:`port`, and the :attr:`request_id` in
    flight when the transport failed, so callers can log and retry without
    parsing message strings.
    """

    def __init__(self, message: str, *, host: str, port: int, request_id: str = ""):
        detail = f"{message} (server {host}:{port}"
        if request_id:
            detail += f", request {request_id!r}"
        detail += ")"
        super().__init__(detail)
        self.host = host
        self.port = port
        self.request_id = request_id


@dataclass(frozen=True)
class ColorResponse:
    """One decoded ``color`` response.

    ``starts`` is reshaped to the request's grid shape; ``latency`` is the
    client-side wall time of the round trip in seconds.
    """

    status: str
    starts: Optional[np.ndarray] = None
    maxcolor: Optional[int] = None
    source: str = ""
    compute_ms: float = 0.0
    total_ms: float = 0.0
    batch_size: int = 0
    error: Optional[str] = None
    latency: float = 0.0
    request_id: str = ""
    worker: str = ""  # identity of the worker that served the response
    raw: dict = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def cached(self) -> bool:
        """Whether the result was served without a fresh computation."""
        return self.source in ("cache", "coalesced")


def _decode_color_response(
    message: dict[str, Any], shape: tuple[int, ...], latency: float
) -> ColorResponse:
    starts = None
    if message.get("starts") is not None:
        starts = np.asarray(message["starts"], dtype=np.int64).reshape(shape)
    return ColorResponse(
        status=str(message.get("status", "error")),
        starts=starts,
        maxcolor=message.get("maxcolor"),
        source=str(message.get("source", "")),
        compute_ms=float(message.get("compute_ms", 0.0)),
        total_ms=float(message.get("total_ms", 0.0)),
        batch_size=int(message.get("batch_size", 0)),
        error=message.get("error"),
        latency=latency,
        request_id=str(message.get("id", "")),
        worker=str(message.get("worker", "")),
        raw=message,
    )


@dataclass(frozen=True)
class RecolorResponse:
    """One decoded ``recolor`` response (seed or delta form).

    A seed answer carries the grid-shaped ``starts``; a delta answer
    carries the sparse ``changed_idx`` / ``changed_starts`` pair plus the
    server's delta provenance in ``recolor`` (cells dirtied, recomputed,
    changed, fallback reason...).  An unknown/expired session surfaces as
    ``status == "invalid"`` with :attr:`unknown_session` true — a state
    miss the caller (or :meth:`ServiceClient.recolor_delta` itself, via
    ``reseed=True``) recovers from by re-seeding.
    """

    status: str
    session: str = ""
    mode: str = ""  # "seed" | "incremental" | "fallback"
    starts: Optional[np.ndarray] = None
    changed_idx: Optional[np.ndarray] = None
    changed_starts: Optional[np.ndarray] = None
    maxcolor: Optional[int] = None
    recolor: dict = field(default_factory=dict)
    error: Optional[str] = None
    code: str = ""
    latency: float = 0.0
    request_id: str = ""
    worker: str = ""
    recovered: bool = False  # server rebuilt the session by journal replay
    raw: dict = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def unknown_session(self) -> bool:
        return self.status == STATUS_INVALID and self.code == UNKNOWN_SESSION_CODE


@dataclass
class _SessionMirror:
    """The client's local copy of one server-held recolor session.

    Kept in lock-step with the server by applying each acknowledged delta,
    it is what makes recovery cheap: on an ``unknown-session`` answer the
    client re-seeds from the mirror instead of refetching anything.
    """

    algorithm: str
    weights: np.ndarray
    starts: np.ndarray
    maxcolor: int


def _decode_recolor_response(
    message: dict[str, Any],
    shape: Optional[tuple[int, ...]],
    latency: float,
) -> RecolorResponse:
    starts = None
    if message.get("starts") is not None:
        starts = np.asarray(message["starts"], dtype=np.int64)
        if shape is not None:
            starts = starts.reshape(shape)
    changed_idx = changed_starts = None
    if message.get("changed_idx") is not None:
        changed_idx = np.asarray(message["changed_idx"], dtype=np.int64)
        changed_starts = np.asarray(message["changed_starts"], dtype=np.int64)
    return RecolorResponse(
        status=str(message.get("status", "error")),
        session=str(message.get("session", "")),
        mode=str(message.get("mode", "")),
        starts=starts,
        changed_idx=changed_idx,
        changed_starts=changed_starts,
        maxcolor=message.get("maxcolor"),
        recolor=message.get("recolor") or {},
        error=message.get("error"),
        code=str(message.get("code", "")),
        latency=latency,
        request_id=str(message.get("id", "")),
        worker=str(message.get("worker", "")),
        recovered=bool(message.get("recovered", False)),
        raw=message,
    )


def _build_request(
    weights, algorithm: str, fast, validate: bool, timeout, request_id: str,
    tiles=None,
) -> ColorRequest:
    arr = np.ascontiguousarray(weights, dtype=np.int64)
    return ColorRequest(
        weights=arr,
        algorithm=algorithm,
        fast=fast,
        validate=validate,
        timeout=timeout,
        request_id=request_id,
        tiled=tiles is not None,
        tile_shape=tuple(int(t) for t in tiles) if tiles is not None else None,
    )


#: Transport-level exceptions wrapped into :class:`ServiceConnectionError`.
#: ``socket.timeout``/``TimeoutError`` and the ``Connection*`` family are all
#: ``OSError`` subclasses; ``asyncio.TimeoutError`` is separate before 3.11.
_TRANSPORT_ERRORS = (OSError, asyncio.TimeoutError, TimeoutError)

#: Bounded budget for the last-resort mirror re-seed loop of
#: :meth:`ServiceClient.recolor_delta`.  One attempt loses the race against
#: a worker restart window (the re-seeded session dies with the next crash
#: before the delta lands); three attempts with backoff rides it out.
RESEED_ATTEMPTS = 3

#: Base delay (seconds) of the re-seed loop's jittered exponential backoff.
RESEED_BACKOFF = 0.05


class PreparedColorRequest:
    """A color request encoded once, sendable many times.

    The interactive STKDE pattern re-requests the same few grids over and
    over; re-canonicalizing, re-hashing, and re-serializing an unchanged
    grid on every send is pure waste.  ``prepare_color_request`` pays those
    costs once — both wire encodings are cached lazily on first use — and
    :meth:`ServiceClient.color_prepared` then sends pre-built bytes.
    Responses decode exactly as for :meth:`ServiceClient.color`; the server
    cannot tell the difference.
    """

    __slots__ = ("request", "_binary", "_ndjson")

    def __init__(self, request: ColorRequest):
        self.request = request
        self._binary: Optional[bytes] = None
        self._ndjson: Optional[bytes] = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.request.shape

    @property
    def request_id(self) -> str:
        return self.request.request_id

    @property
    def key(self) -> str:
        return self.request.key

    def wire_bytes(self, wire: str) -> bytes:
        if wire == "binary":
            if self._binary is None:
                self._binary = encode_color_request(self.request)
            return self._binary
        if self._ndjson is None:
            self._ndjson = encode_message(request_to_wire(self.request))
        return self._ndjson


def prepare_color_request(
    weights,
    algorithm: str = "BDP",
    *,
    fast: Optional[bool] = None,
    validate: bool = False,
    timeout: Optional[float] = None,
    request_id: str = "",
    tiles: Optional[tuple[int, ...]] = None,
) -> PreparedColorRequest:
    """Build and pre-encode a color request for repeated sending.

    Client-independent: one prepared request can be sent through any
    number of (sync or async) clients on either wire format.
    """
    return PreparedColorRequest(
        _build_request(weights, algorithm, fast, validate, timeout, request_id, tiles)
    )


class ServiceClient:
    """Blocking one-request-at-a-time client over a TCP socket.

    ``retry`` enables transparent reconnect-and-retry of failed round trips
    (see the module docstring); ``retry_seed`` seeds the backoff jitter so
    chaos runs stay reproducible.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        *,
        retry: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        wire: str = "auto",
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries_used = 0
        self.wire_preference = _check_wire(wire)
        self.wire = "ndjson"  # per-connection; settled during connect()
        self.server_worker_id = ""  # from the hello reply (binary only)
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._recolor_mirrors: dict[str, _SessionMirror] = {}
        self.reseeds_used = 0  # mirror re-seed attempts (last-resort path)

    # -------------------------------------------------------------- transport
    def connect(self) -> "ServiceClient":
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        self.wire = "ndjson"
        if self.wire_preference != "ndjson":
            self._negotiate()
        return self

    def _negotiate(self) -> None:
        """Hello handshake: binary if the server answers in frames.

        A pre-frames server reads the hello as one garbage NDJSON line and
        replies with a JSON ``invalid`` message — recognized by its first
        byte (``{``, never the frame magic), discarded, and the connection
        continues as NDJSON.  Only ``wire="binary"`` makes that an error.
        """
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(encode_hello())
            first = self._file.read(1)
            if first == FRAME_MAGIC[:1]:
                frame = read_frame(self._file, first=first)
                header = frame.header if frame is not None else {}
                if header.get("status") == STATUS_OK and FRAME_VERSION in header.get(
                    "frames", ()
                ):
                    self.wire = "binary"
                    self.server_worker_id = str(header.get("worker_id", ""))
                    return
            elif first:
                self._file.readline(MAX_MESSAGE_BYTES)  # the JSON 'invalid' reply
        except (FrameError, *_TRANSPORT_ERRORS) as exc:
            raise self._connection_error(
                f"wire negotiation failed: {type(exc).__name__}: {exc}", "hello"
            ) from exc
        if self.wire_preference == "binary":
            raise self._connection_error(
                "server does not speak binary frames", "hello"
            )

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _connection_error(
        self, message: str, request_id: str
    ) -> ServiceConnectionError:
        self.close()  # a dead socket must not be reused by the next attempt
        return ServiceConnectionError(
            message, host=self.host, port=self.port, request_id=request_id
        )

    def _encode_for_wire(
        self, message: dict[str, Any], request: Optional[ColorRequest]
    ) -> bytes:
        """The outgoing bytes for one op under the negotiated wire format.

        A color ``request`` is encoded directly — raw weight bytes on the
        binary wire, the JSON weights list only when NDJSON is actually
        in use — so binary connections never pay JSON array serialization.
        A :class:`PreparedColorRequest` reuses its cached encoding.
        """
        if isinstance(request, PreparedColorRequest):
            return request.wire_bytes(self.wire)
        if isinstance(request, RecolorRequest):
            if self.wire == "binary":
                return encode_recolor_request(request)
            return encode_message(recolor_to_wire(request))
        if request is not None:
            if self.wire == "binary":
                return encode_color_request(request)
            return encode_message(request_to_wire(request))
        if self.wire == "binary":
            return self._encode_op_frame(message)
        return encode_message(message)

    def _encode_op_frame(self, message: dict[str, Any]) -> bytes:
        op = message.get("op")
        request_id = str(message.get("id", ""))
        if op == "ping":
            return encode_frame(OP_PING, {"id": request_id})
        if op == "metrics":
            header: dict[str, Any] = {"id": request_id}
            if message.get("state"):
                header["state"] = True
            return encode_frame(OP_METRICS, header)
        if op == "shutdown":
            return encode_frame(OP_SHUTDOWN, {"id": request_id})
        if op == "color":
            # A caller handed us a raw NDJSON color message.  Reframe it
            # without validating — the server is the validator on either
            # wire, so a bad message must still reach it and come back as
            # a typed ``invalid`` response, not a client-side exception.
            try:
                weights = np.asarray(message.get("weights", []), dtype=np.int64)
            except (TypeError, ValueError, OverflowError) as exc:
                raise ServiceError(
                    f"color message cannot ride the binary wire: {exc}"
                ) from None
            header = {k: v for k, v in message.items() if k != "weights"}
            header.setdefault("shape", list(weights.shape))
            payload = np.ascontiguousarray(weights, dtype="<i8").tobytes()
            return encode_frame(OP_COLOR, header, payload)
        raise ServiceError(f"op {op!r} has no binary frame encoding")

    def _roundtrip(
        self,
        message: dict[str, Any],
        request_id: str = "",
        fault_token: str = "",
        request: Optional[ColorRequest | PreparedColorRequest] = None,
    ) -> dict[str, Any]:
        try:
            if self._sock is None:
                self.connect()
            assert self._sock is not None and self._file is not None
            payload = self._encode_for_wire(message, request)
            fault = draw("client.send", fault_token)
            if fault is not None:
                if fault.kind == "partial":
                    self._sock.sendall(payload[: max(1, len(payload) // 2)])
                    raise BrokenPipeError("injected partial write")
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before send")
                if fault.kind == "slow":
                    time.sleep(fault.delay)
            self._sock.sendall(payload)
            fault = draw("client.recv", fault_token)
            if fault is not None:
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before read")
                if fault.kind == "slow":
                    time.sleep(fault.delay)
            if self.wire == "binary":
                return self._read_response_frame(request_id)
            line = self._file.readline(MAX_MESSAGE_BYTES)
        except _TRANSPORT_ERRORS as exc:
            raise self._connection_error(
                f"{type(exc).__name__}: {exc}", request_id
            ) from exc
        if not line:
            raise self._connection_error("connection closed by server", request_id)
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None

    def _read_response_frame(self, request_id: str) -> dict[str, Any]:
        """One response frame as a message dict (torn = retryable)."""
        try:
            frame = read_frame(self._file)
        except TornFrameError as exc:
            # The server died mid-send; content-addressed requests are
            # idempotent, so surface this as a retryable connection error.
            raise self._connection_error(
                f"torn response frame: {exc}", request_id
            ) from None
        except FrameError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None
        if frame is None:
            raise self._connection_error("connection closed by server", request_id)
        return response_to_message(frame)

    def _call(
        self,
        message: dict[str, Any],
        request_id: str = "",
        request: Optional[ColorRequest | PreparedColorRequest] = None,
    ) -> dict[str, Any]:
        """One logical round trip, retried under the client's policy."""
        attempt = 0
        while True:
            token = f"{request_id or message.get('op', '')}#{attempt}"
            try:
                return self._roundtrip(
                    message, request_id, fault_token=token, request=request
                )
            except ServiceConnectionError:
                if self.retry is None or not self.retry.should_retry(attempt):
                    raise
                self.retries_used += 1
                time.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1

    # -------------------------------------------------------------------- ops
    def ping(self) -> float:
        """Round-trip a ping; returns the latency in seconds."""
        t0 = time.perf_counter()
        response = self._call({"op": "ping", "id": "ping"}, "ping")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"ping failed: {response}")
        return time.perf_counter() - t0

    def color(
        self,
        weights,
        algorithm: str = "BDP",
        *,
        fast: Optional[bool] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        request_id: str = "",
        tiles: Optional[tuple[int, ...]] = None,
    ) -> ColorResponse:
        """Request a coloring; returns a :class:`ColorResponse`.

        ``tiles`` asks the server to run the request through the
        out-of-core tiler with that tile shape (GLL only; the coloring is
        bit-identical to a monolithic request for the same grid).
        """
        request = _build_request(
            weights, algorithm, fast, validate, timeout, request_id, tiles
        )
        t0 = time.perf_counter()
        message = self._call({"op": "color"}, request_id, request=request)
        return _decode_color_response(
            message, request.shape, time.perf_counter() - t0
        )

    def color_prepared(self, prepared: PreparedColorRequest) -> ColorResponse:
        """Send a :func:`prepare_color_request` product; decode the reply."""
        t0 = time.perf_counter()
        message = self._call(
            {"op": "color"}, prepared.request_id, request=prepared
        )
        return _decode_color_response(
            message, prepared.shape, time.perf_counter() - t0
        )

    # ------------------------------------------------------ recolor sessions
    def recolor_open(
        self,
        session: str,
        weights,
        algorithm: str = "GLL",
        *,
        request_id: str = "",
    ) -> RecolorResponse:
        """Seed (or re-seed) a server-held recolor session.

        The server colors ``weights`` from scratch, stores the grid under
        ``session``, and returns the full starts; the client keeps a local
        mirror so later deltas can verify and recover without refetching.
        Re-seeding an existing session is idempotent.
        """
        arr = np.ascontiguousarray(weights, dtype=np.int64)
        request = RecolorRequest(
            session=session,
            request_id=request_id or f"{session}/seed",
            weights=arr,
            algorithm=algorithm,
        )
        t0 = time.perf_counter()
        message = self._call(
            recolor_to_wire(request), request.request_id, request=request
        )
        response = _decode_recolor_response(
            message, tuple(arr.shape), time.perf_counter() - t0
        )
        if response.ok and response.starts is not None:
            self._recolor_mirrors[session] = _SessionMirror(
                algorithm=algorithm,
                weights=arr.copy(),
                starts=response.starts.copy(),
                maxcolor=int(response.maxcolor or 0),
            )
        return response

    def recolor_delta(
        self,
        session: str,
        idx,
        new_weights,
        *,
        request_id: str = "",
        reseed: bool = True,
    ) -> RecolorResponse:
        """Stream one sparse weight delta into a seeded session.

        ``idx`` are flat C-order cell indices, ``new_weights`` their
        *absolute* new weights — absolute so a delta re-sent after a
        connection loss or an injected server error is idempotent.

        Recovery order on an ``unknown-session`` answer: the *server* gets
        the first shot — a durability-enabled worker replays the session's
        journal before ever answering unknown-session (``recovered: true``
        rides on the response), so this client usually never sees one.
        Only when the server genuinely has nothing (durability off, journal
        gone) does ``reseed=True`` fall back to re-seeding from the local
        mirror — a bounded loop of :data:`RESEED_ATTEMPTS` tries with
        jittered exponential backoff, because a single immediate re-send
        loses the race against a worker restart window.  Attempts are
        counted in :attr:`reseeds_used`.  The mirror is updated from each
        acknowledged delta's changed cells.
        """
        mirror = self._recolor_mirrors.get(session)
        idx_arr = np.asarray(idx, dtype=np.int64).ravel()
        new_arr = np.asarray(new_weights, dtype=np.int64).ravel()
        request = RecolorRequest(
            session=session,
            request_id=request_id or f"{session}/delta",
            delta_idx=idx_arr,
            delta_weights=new_arr,
        )
        t0 = time.perf_counter()
        message = self._call(
            recolor_to_wire(request), request.request_id, request=request
        )
        response = _decode_recolor_response(
            message, None, time.perf_counter() - t0
        )
        if response.unknown_session and reseed and mirror is not None:
            for attempt in range(RESEED_ATTEMPTS):
                self.reseeds_used += 1
                if attempt:
                    # Jittered exponential backoff: the unknown-session
                    # answer may come from a worker that is mid-restart
                    # (or a sibling that has not seen the journal yet) —
                    # immediate re-seeds lose that race.
                    time.sleep(
                        RESEED_BACKOFF
                        * (2**attempt)
                        * (0.5 + self._rng.random())
                    )
                seeded = self.recolor_open(
                    session, mirror.weights, mirror.algorithm
                )
                if not seeded.ok:
                    continue
                retry = self.recolor_delta(
                    session, idx_arr, new_arr,
                    request_id=request.request_id, reseed=False,
                )
                if not retry.unknown_session:
                    return retry
                response = retry
            return response
        if response.ok and mirror is not None:
            mirror.weights.ravel()[idx_arr] = new_arr
            if response.changed_idx is not None:
                mirror.starts.ravel()[response.changed_idx] = (
                    response.changed_starts
                )
            mirror.maxcolor = int(response.maxcolor or mirror.maxcolor)
        return response

    def recolor_state(
        self, session: str
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """The mirror's ``(weights, starts)`` for a session, or ``None``."""
        mirror = self._recolor_mirrors.get(session)
        if mirror is None:
            return None
        return mirror.weights, mirror.starts

    def metrics(self, *, include_state: bool = False) -> dict[str, Any]:
        """The server's metrics snapshot (``include_state`` adds mergeable
        histogram state, the form ``merge_snapshots`` needs)."""
        message: dict[str, Any] = {"op": "metrics", "id": "metrics"}
        if include_state:
            message["state"] = True
        response = self._call(message, "metrics")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"metrics failed: {response}")
        return response["metrics"]

    def shutdown(self) -> None:
        """Ask the server to drain and stop (never retried — not idempotent
        to wait on: the server may be gone before a response arrives)."""
        self._roundtrip({"op": "shutdown", "id": "shutdown"}, "shutdown")


class AsyncServiceClient:
    """Asyncio variant of :class:`ServiceClient` (one connection per client)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        *,
        retry: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
        wire: str = "auto",
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries_used = 0
        self.wire_preference = _check_wire(wire)
        self.wire = "ndjson"
        self.server_worker_id = ""
        self._rng = random.Random(retry_seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # `_encode_for_wire` / `_encode_op_frame` are wire-format logic with no
    # I/O — share the synchronous client's implementations verbatim.
    _encode_for_wire = ServiceClient._encode_for_wire
    _encode_op_frame = ServiceClient._encode_op_frame

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_MESSAGE_BYTES
        )
        self.wire = "ndjson"
        if self.wire_preference != "ndjson":
            await self._negotiate()
        return self

    async def _negotiate(self) -> None:
        """Asyncio twin of :meth:`ServiceClient._negotiate`."""
        assert self._reader is not None and self._writer is not None
        try:
            self._writer.write(encode_hello())
            await self._writer.drain()
            first = await asyncio.wait_for(self._reader.read(1), self.timeout)
            if first == FRAME_MAGIC[:1]:
                frame = await asyncio.wait_for(
                    read_frame_async(self._reader, first=first), self.timeout
                )
                header = frame.header if frame is not None else {}
                if header.get("status") == STATUS_OK and FRAME_VERSION in header.get(
                    "frames", ()
                ):
                    self.wire = "binary"
                    self.server_worker_id = str(header.get("worker_id", ""))
                    return
            elif first:
                await asyncio.wait_for(self._reader.readline(), self.timeout)
        except (FrameError, *_TRANSPORT_ERRORS) as exc:
            raise await self._connection_error(
                f"wire negotiation failed: {type(exc).__name__}: {exc}", "hello"
            ) from exc
        if self.wire_preference == "binary":
            raise await self._connection_error(
                "server does not speak binary frames", "hello"
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except _TRANSPORT_ERRORS:  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _connection_error(
        self, message: str, request_id: str
    ) -> ServiceConnectionError:
        await self.close()
        return ServiceConnectionError(
            message, host=self.host, port=self.port, request_id=request_id
        )

    async def _roundtrip(
        self,
        message: dict[str, Any],
        request_id: str = "",
        fault_token: str = "",
        request: Optional[ColorRequest | PreparedColorRequest] = None,
    ) -> dict[str, Any]:
        try:
            if self._writer is None:
                await self.connect()
            assert self._reader is not None and self._writer is not None
            payload = self._encode_for_wire(message, request)
            fault = draw("client.send", fault_token)
            if fault is not None:
                if fault.kind == "partial":
                    self._writer.write(payload[: max(1, len(payload) // 2)])
                    await self._writer.drain()
                    raise BrokenPipeError("injected partial write")
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before send")
                if fault.kind == "slow":
                    await asyncio.sleep(fault.delay)
            self._writer.write(payload)
            await self._writer.drain()
            fault = draw("client.recv", fault_token)
            if fault is not None:
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before read")
                if fault.kind == "slow":
                    await asyncio.sleep(fault.delay)
            if self.wire == "binary":
                return await self._read_response_frame(request_id)
            line = await asyncio.wait_for(self._reader.readline(), self.timeout)
        except _TRANSPORT_ERRORS as exc:
            raise await self._connection_error(
                f"{type(exc).__name__}: {exc}", request_id
            ) from exc
        if not line:
            raise await self._connection_error(
                "connection closed by server", request_id
            )
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None

    async def _read_response_frame(self, request_id: str) -> dict[str, Any]:
        """One response frame as a message dict (torn = retryable)."""
        try:
            async with frame_timeout(self.timeout):
                frame = await read_frame_async(self._reader)
        except TornFrameError as exc:
            raise await self._connection_error(
                f"torn response frame: {exc}", request_id
            ) from None
        except FrameError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None
        if frame is None:
            raise await self._connection_error(
                "connection closed by server", request_id
            )
        return response_to_message(frame)

    async def _call(
        self,
        message: dict[str, Any],
        request_id: str = "",
        request: Optional[ColorRequest | PreparedColorRequest] = None,
    ) -> dict[str, Any]:
        """One logical round trip, retried under the client's policy."""
        attempt = 0
        while True:
            token = f"{request_id or message.get('op', '')}#{attempt}"
            try:
                return await self._roundtrip(
                    message, request_id, fault_token=token, request=request
                )
            except ServiceConnectionError:
                if self.retry is None or not self.retry.should_retry(attempt):
                    raise
                self.retries_used += 1
                await asyncio.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1

    async def ping(self) -> float:
        t0 = time.perf_counter()
        response = await self._call({"op": "ping", "id": "ping"}, "ping")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"ping failed: {response}")
        return time.perf_counter() - t0

    async def color(
        self,
        weights,
        algorithm: str = "BDP",
        *,
        fast: Optional[bool] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        request_id: str = "",
        tiles: Optional[tuple[int, ...]] = None,
    ) -> ColorResponse:
        request = _build_request(
            weights, algorithm, fast, validate, timeout, request_id, tiles
        )
        t0 = time.perf_counter()
        message = await self._call({"op": "color"}, request_id, request=request)
        return _decode_color_response(
            message, request.shape, time.perf_counter() - t0
        )

    async def color_prepared(self, prepared: PreparedColorRequest) -> ColorResponse:
        """Send a :func:`prepare_color_request` product; decode the reply."""
        t0 = time.perf_counter()
        message = await self._call(
            {"op": "color"}, prepared.request_id, request=prepared
        )
        return _decode_color_response(
            message, prepared.shape, time.perf_counter() - t0
        )

    async def color_pipelined(
        self, prepared: Sequence[PreparedColorRequest]
    ) -> list[ColorResponse]:
        """Send a burst of prepared requests before reading any response.

        The server — and the router in front of a worker pool — processes
        each connection's frames strictly in order, so responses come back
        in request order and one write burst plus ``n`` ordered reads
        amortizes the per-request event-loop round trip.  Latency in each
        :class:`ColorResponse` is measured from the start of the burst, and
        one shared deadline of ``self.timeout`` covers the whole burst (a
        per-response timer at thousands of responses per second is real
        CPU).  There is no mid-burst retry: a transport failure or a torn
        frame voids the whole burst and closes the connection.
        """
        if not prepared:
            return []
        try:
            if self._writer is None:
                await self.connect()
            assert self._reader is not None and self._writer is not None
            t0 = time.perf_counter()
            self._writer.write(
                b"".join(p.wire_bytes(self.wire) for p in prepared)
            )
            await self._writer.drain()
            responses: list[ColorResponse] = []
            async with frame_timeout(self.timeout):
                for item in prepared:
                    if self.wire == "binary":
                        try:
                            frame = await read_frame_async(self._reader)
                        except TornFrameError as exc:
                            raise await self._connection_error(
                                f"torn response frame: {exc}", item.request_id
                            ) from None
                        except FrameError as exc:
                            raise ServiceError(
                                f"bad response frame: {exc}"
                            ) from None
                        if frame is None:
                            raise await self._connection_error(
                                "connection closed by server", item.request_id
                            )
                        message = response_to_message(frame)
                    else:
                        line = await self._reader.readline()
                        if not line:
                            raise await self._connection_error(
                                "connection closed by server", item.request_id
                            )
                        try:
                            message = decode_message(line)
                        except ProtocolError as exc:
                            raise ServiceError(
                                f"bad response frame: {exc}"
                            ) from None
                    responses.append(
                        _decode_color_response(
                            message, item.shape, time.perf_counter() - t0
                        )
                    )
            return responses
        except _TRANSPORT_ERRORS as exc:
            raise await self._connection_error(
                f"{type(exc).__name__}: {exc}",
                prepared[0].request_id,
            ) from exc

    async def metrics(self, *, include_state: bool = False) -> dict[str, Any]:
        message: dict[str, Any] = {"op": "metrics", "id": "metrics"}
        if include_state:
            message["state"] = True
        response = await self._call(message, "metrics")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"metrics failed: {response}")
        return response["metrics"]

    async def shutdown(self) -> None:
        await self._roundtrip({"op": "shutdown", "id": "shutdown"}, "shutdown")
