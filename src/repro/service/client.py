"""Clients for the coloring service: blocking sockets and asyncio streams.

:class:`ServiceClient` is the simple synchronous client (CLI, tests,
benchmark baselines): one socket, one request in flight.
:class:`AsyncServiceClient` is the asyncio variant the load generator uses to
keep many requests in flight across connections.

Both speak the line-delimited JSON protocol of
:mod:`repro.service.protocol` and return :class:`ColorResponse` objects.
Service-level outcomes (``error``, ``timeout``, ``overloaded``…) are
reported in :attr:`ColorResponse.status` so callers can count and retry
without exception plumbing.  Transport failures — a dropped TCP connection,
a refused reconnect, a read timeout — are wrapped into a typed
:class:`ServiceConnectionError` carrying the host, port, and request id
instead of leaking raw ``OSError`` subclasses.

Both clients optionally *self-heal*: constructed with a
:class:`~repro.resilience.retry.RetryPolicy`, a failed round trip tears
down the dead socket, backs off (exponential + seeded jitter), reconnects,
and re-sends — safe because every request is content-addressed and
idempotent: re-asking for the same coloring returns the same bits, at worst
re-hitting the server's result cache.  ``retries_used`` counts the budget
spent.

Chaos hooks: each round-trip attempt passes through the ``client.send`` /
``client.recv`` fault sites (:mod:`repro.resilience.faults`) with token
``"<request-id>#<attempt>"`` — ``drop`` severs the connection before the
write or before the read, ``partial`` sends a torn frame then severs,
``slow`` delays the attempt.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.resilience.faults import draw
from repro.resilience.retry import RetryPolicy
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    STATUS_OK,
    ColorRequest,
    ProtocolError,
    decode_message,
    encode_message,
    request_to_wire,
)


class ServiceError(RuntimeError):
    """Transport or framing failure talking to the service."""


class ServiceConnectionError(ServiceError):
    """A broken, refused, or timed-out connection to the service.

    Carries :attr:`host`, :attr:`port`, and the :attr:`request_id` in
    flight when the transport failed, so callers can log and retry without
    parsing message strings.
    """

    def __init__(self, message: str, *, host: str, port: int, request_id: str = ""):
        detail = f"{message} (server {host}:{port}"
        if request_id:
            detail += f", request {request_id!r}"
        detail += ")"
        super().__init__(detail)
        self.host = host
        self.port = port
        self.request_id = request_id


@dataclass(frozen=True)
class ColorResponse:
    """One decoded ``color`` response.

    ``starts`` is reshaped to the request's grid shape; ``latency`` is the
    client-side wall time of the round trip in seconds.
    """

    status: str
    starts: Optional[np.ndarray] = None
    maxcolor: Optional[int] = None
    source: str = ""
    compute_ms: float = 0.0
    total_ms: float = 0.0
    batch_size: int = 0
    error: Optional[str] = None
    latency: float = 0.0
    request_id: str = ""
    raw: dict = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def cached(self) -> bool:
        """Whether the result was served without a fresh computation."""
        return self.source in ("cache", "coalesced")


def _decode_color_response(
    message: dict[str, Any], shape: tuple[int, ...], latency: float
) -> ColorResponse:
    starts = None
    if message.get("starts") is not None:
        starts = np.asarray(message["starts"], dtype=np.int64).reshape(shape)
    return ColorResponse(
        status=str(message.get("status", "error")),
        starts=starts,
        maxcolor=message.get("maxcolor"),
        source=str(message.get("source", "")),
        compute_ms=float(message.get("compute_ms", 0.0)),
        total_ms=float(message.get("total_ms", 0.0)),
        batch_size=int(message.get("batch_size", 0)),
        error=message.get("error"),
        latency=latency,
        request_id=str(message.get("id", "")),
        raw=message,
    )


def _build_request(
    weights, algorithm: str, fast, validate: bool, timeout, request_id: str,
    tiles=None,
) -> ColorRequest:
    arr = np.ascontiguousarray(weights, dtype=np.int64)
    return ColorRequest(
        weights=arr,
        algorithm=algorithm,
        fast=fast,
        validate=validate,
        timeout=timeout,
        request_id=request_id,
        tiled=tiles is not None,
        tile_shape=tuple(int(t) for t in tiles) if tiles is not None else None,
    )


#: Transport-level exceptions wrapped into :class:`ServiceConnectionError`.
#: ``socket.timeout``/``TimeoutError`` and the ``Connection*`` family are all
#: ``OSError`` subclasses; ``asyncio.TimeoutError`` is separate before 3.11.
_TRANSPORT_ERRORS = (OSError, asyncio.TimeoutError, TimeoutError)


class ServiceClient:
    """Blocking one-request-at-a-time client over a TCP socket.

    ``retry`` enables transparent reconnect-and-retry of failed round trips
    (see the module docstring); ``retry_seed`` seeds the backoff jitter so
    chaos runs stay reproducible.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        *,
        retry: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries_used = 0
        self._rng = random.Random(retry_seed)
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -------------------------------------------------------------- transport
    def connect(self) -> "ServiceClient":
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _connection_error(
        self, message: str, request_id: str
    ) -> ServiceConnectionError:
        self.close()  # a dead socket must not be reused by the next attempt
        return ServiceConnectionError(
            message, host=self.host, port=self.port, request_id=request_id
        )

    def _roundtrip(
        self, message: dict[str, Any], request_id: str = "", fault_token: str = ""
    ) -> dict[str, Any]:
        try:
            if self._sock is None:
                self.connect()
            assert self._sock is not None and self._file is not None
            payload = encode_message(message)
            fault = draw("client.send", fault_token)
            if fault is not None:
                if fault.kind == "partial":
                    self._sock.sendall(payload[: max(1, len(payload) // 2)])
                    raise BrokenPipeError("injected partial write")
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before send")
                if fault.kind == "slow":
                    time.sleep(fault.delay)
            self._sock.sendall(payload)
            fault = draw("client.recv", fault_token)
            if fault is not None:
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before read")
                if fault.kind == "slow":
                    time.sleep(fault.delay)
            line = self._file.readline(MAX_MESSAGE_BYTES)
        except _TRANSPORT_ERRORS as exc:
            raise self._connection_error(
                f"{type(exc).__name__}: {exc}", request_id
            ) from exc
        if not line:
            raise self._connection_error("connection closed by server", request_id)
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None

    def _call(
        self, message: dict[str, Any], request_id: str = ""
    ) -> dict[str, Any]:
        """One logical round trip, retried under the client's policy."""
        attempt = 0
        while True:
            token = f"{request_id or message.get('op', '')}#{attempt}"
            try:
                return self._roundtrip(message, request_id, fault_token=token)
            except ServiceConnectionError:
                if self.retry is None or not self.retry.should_retry(attempt):
                    raise
                self.retries_used += 1
                time.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1

    # -------------------------------------------------------------------- ops
    def ping(self) -> float:
        """Round-trip a ping; returns the latency in seconds."""
        t0 = time.perf_counter()
        response = self._call({"op": "ping", "id": "ping"}, "ping")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"ping failed: {response}")
        return time.perf_counter() - t0

    def color(
        self,
        weights,
        algorithm: str = "BDP",
        *,
        fast: Optional[bool] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        request_id: str = "",
        tiles: Optional[tuple[int, ...]] = None,
    ) -> ColorResponse:
        """Request a coloring; returns a :class:`ColorResponse`.

        ``tiles`` asks the server to run the request through the
        out-of-core tiler with that tile shape (GLL only; the coloring is
        bit-identical to a monolithic request for the same grid).
        """
        request = _build_request(
            weights, algorithm, fast, validate, timeout, request_id, tiles
        )
        t0 = time.perf_counter()
        message = self._call(request_to_wire(request), request_id)
        return _decode_color_response(
            message, request.shape, time.perf_counter() - t0
        )

    def metrics(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        response = self._call({"op": "metrics", "id": "metrics"}, "metrics")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"metrics failed: {response}")
        return response["metrics"]

    def shutdown(self) -> None:
        """Ask the server to drain and stop (never retried — not idempotent
        to wait on: the server may be gone before a response arrives)."""
        self._roundtrip({"op": "shutdown", "id": "shutdown"}, "shutdown")


class AsyncServiceClient:
    """Asyncio variant of :class:`ServiceClient` (one connection per client)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        *,
        retry: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self.retries_used = 0
        self._rng = random.Random(retry_seed)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_MESSAGE_BYTES
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except _TRANSPORT_ERRORS:  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _connection_error(
        self, message: str, request_id: str
    ) -> ServiceConnectionError:
        await self.close()
        return ServiceConnectionError(
            message, host=self.host, port=self.port, request_id=request_id
        )

    async def _roundtrip(
        self, message: dict[str, Any], request_id: str = "", fault_token: str = ""
    ) -> dict[str, Any]:
        try:
            if self._writer is None:
                await self.connect()
            assert self._reader is not None and self._writer is not None
            payload = encode_message(message)
            fault = draw("client.send", fault_token)
            if fault is not None:
                if fault.kind == "partial":
                    self._writer.write(payload[: max(1, len(payload) // 2)])
                    await self._writer.drain()
                    raise BrokenPipeError("injected partial write")
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before send")
                if fault.kind == "slow":
                    await asyncio.sleep(fault.delay)
            self._writer.write(payload)
            await self._writer.drain()
            fault = draw("client.recv", fault_token)
            if fault is not None:
                if fault.kind == "drop":
                    raise ConnectionResetError("injected connection drop before read")
                if fault.kind == "slow":
                    await asyncio.sleep(fault.delay)
            line = await asyncio.wait_for(self._reader.readline(), self.timeout)
        except _TRANSPORT_ERRORS as exc:
            raise await self._connection_error(
                f"{type(exc).__name__}: {exc}", request_id
            ) from exc
        if not line:
            raise await self._connection_error(
                "connection closed by server", request_id
            )
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None

    async def _call(
        self, message: dict[str, Any], request_id: str = ""
    ) -> dict[str, Any]:
        """One logical round trip, retried under the client's policy."""
        attempt = 0
        while True:
            token = f"{request_id or message.get('op', '')}#{attempt}"
            try:
                return await self._roundtrip(message, request_id, fault_token=token)
            except ServiceConnectionError:
                if self.retry is None or not self.retry.should_retry(attempt):
                    raise
                self.retries_used += 1
                await asyncio.sleep(self.retry.delay(attempt, self._rng))
                attempt += 1

    async def ping(self) -> float:
        t0 = time.perf_counter()
        response = await self._call({"op": "ping", "id": "ping"}, "ping")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"ping failed: {response}")
        return time.perf_counter() - t0

    async def color(
        self,
        weights,
        algorithm: str = "BDP",
        *,
        fast: Optional[bool] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        request_id: str = "",
        tiles: Optional[tuple[int, ...]] = None,
    ) -> ColorResponse:
        request = _build_request(
            weights, algorithm, fast, validate, timeout, request_id, tiles
        )
        t0 = time.perf_counter()
        message = await self._call(request_to_wire(request), request_id)
        return _decode_color_response(
            message, request.shape, time.perf_counter() - t0
        )

    async def metrics(self) -> dict[str, Any]:
        response = await self._call({"op": "metrics", "id": "metrics"}, "metrics")
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"metrics failed: {response}")
        return response["metrics"]

    async def shutdown(self) -> None:
        await self._roundtrip({"op": "shutdown", "id": "shutdown"}, "shutdown")
