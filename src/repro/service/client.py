"""Clients for the coloring service: blocking sockets and asyncio streams.

:class:`ServiceClient` is the simple synchronous client (CLI, tests,
benchmark baselines): one socket, one request in flight.
:class:`AsyncServiceClient` is the asyncio variant the load generator uses to
keep many requests in flight across connections.

Both speak the line-delimited JSON protocol of
:mod:`repro.service.protocol` and return :class:`ColorResponse` objects;
transport-level failures raise ``OSError``/:class:`ServiceError`, while
service-level outcomes (``error``, ``timeout``, ``overloaded``…) are
reported in :attr:`ColorResponse.status` so callers can count and retry
without exception plumbing.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    STATUS_OK,
    ColorRequest,
    ProtocolError,
    decode_message,
    encode_message,
    request_to_wire,
)


class ServiceError(RuntimeError):
    """Transport or framing failure talking to the service."""


@dataclass(frozen=True)
class ColorResponse:
    """One decoded ``color`` response.

    ``starts`` is reshaped to the request's grid shape; ``latency`` is the
    client-side wall time of the round trip in seconds.
    """

    status: str
    starts: Optional[np.ndarray] = None
    maxcolor: Optional[int] = None
    source: str = ""
    compute_ms: float = 0.0
    total_ms: float = 0.0
    batch_size: int = 0
    error: Optional[str] = None
    latency: float = 0.0
    request_id: str = ""
    raw: dict = field(default_factory=dict, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def cached(self) -> bool:
        """Whether the result was served without a fresh computation."""
        return self.source in ("cache", "coalesced")


def _decode_color_response(
    message: dict[str, Any], shape: tuple[int, ...], latency: float
) -> ColorResponse:
    starts = None
    if message.get("starts") is not None:
        starts = np.asarray(message["starts"], dtype=np.int64).reshape(shape)
    return ColorResponse(
        status=str(message.get("status", "error")),
        starts=starts,
        maxcolor=message.get("maxcolor"),
        source=str(message.get("source", "")),
        compute_ms=float(message.get("compute_ms", 0.0)),
        total_ms=float(message.get("total_ms", 0.0)),
        batch_size=int(message.get("batch_size", 0)),
        error=message.get("error"),
        latency=latency,
        request_id=str(message.get("id", "")),
        raw=message,
    )


def _build_request(
    weights, algorithm: str, fast, validate: bool, timeout, request_id: str
) -> ColorRequest:
    arr = np.ascontiguousarray(weights, dtype=np.int64)
    return ColorRequest(
        weights=arr,
        algorithm=algorithm,
        fast=fast,
        validate=validate,
        timeout=timeout,
        request_id=request_id,
    )


class ServiceClient:
    """Blocking one-request-at-a-time client over a TCP socket."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -------------------------------------------------------------- transport
    def connect(self) -> "ServiceClient":
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._sock is None:
            self.connect()
        assert self._sock is not None and self._file is not None
        self._sock.sendall(encode_message(message))
        line = self._file.readline(MAX_MESSAGE_BYTES)
        if not line:
            raise ServiceError("connection closed by server")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None

    # -------------------------------------------------------------------- ops
    def ping(self) -> float:
        """Round-trip a ping; returns the latency in seconds."""
        t0 = time.perf_counter()
        response = self._roundtrip({"op": "ping", "id": "ping"})
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"ping failed: {response}")
        return time.perf_counter() - t0

    def color(
        self,
        weights,
        algorithm: str = "BDP",
        *,
        fast: Optional[bool] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        request_id: str = "",
    ) -> ColorResponse:
        """Request a coloring; returns a :class:`ColorResponse`."""
        request = _build_request(weights, algorithm, fast, validate, timeout, request_id)
        t0 = time.perf_counter()
        message = self._roundtrip(request_to_wire(request))
        return _decode_color_response(
            message, request.shape, time.perf_counter() - t0
        )

    def metrics(self) -> dict[str, Any]:
        """The server's metrics snapshot."""
        response = self._roundtrip({"op": "metrics", "id": "metrics"})
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"metrics failed: {response}")
        return response["metrics"]

    def shutdown(self) -> None:
        """Ask the server to drain and stop."""
        self._roundtrip({"op": "shutdown", "id": "shutdown"})


class AsyncServiceClient:
    """Asyncio variant of :class:`ServiceClient` (one connection per client)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_MESSAGE_BYTES
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode_message(message))
        await self._writer.drain()
        line = await asyncio.wait_for(self._reader.readline(), self.timeout)
        if not line:
            raise ServiceError("connection closed by server")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad response frame: {exc}") from None

    async def ping(self) -> float:
        t0 = time.perf_counter()
        response = await self._roundtrip({"op": "ping", "id": "ping"})
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"ping failed: {response}")
        return time.perf_counter() - t0

    async def color(
        self,
        weights,
        algorithm: str = "BDP",
        *,
        fast: Optional[bool] = None,
        validate: bool = False,
        timeout: Optional[float] = None,
        request_id: str = "",
    ) -> ColorResponse:
        request = _build_request(weights, algorithm, fast, validate, timeout, request_id)
        t0 = time.perf_counter()
        message = await self._roundtrip(request_to_wire(request))
        return _decode_color_response(
            message, request.shape, time.perf_counter() - t0
        )

    async def metrics(self) -> dict[str, Any]:
        response = await self._roundtrip({"op": "metrics", "id": "metrics"})
        if response.get("status") != STATUS_OK:
            raise ServiceError(f"metrics failed: {response}")
        return response["metrics"]

    async def shutdown(self) -> None:
        await self._roundtrip({"op": "shutdown", "id": "shutdown"})
