"""The accept/route front process of a multi-worker coloring service.

``stencil-ivc serve --workers N`` runs one :class:`ColoringRouter` in front
of a :class:`~repro.service.workers.WorkerPool`.  The router owns the
public TCP endpoint and stays deliberately tiny: it never colors, never
caches results, and — on the binary wire — never parses a request body.

**Content-key routing.**  Every color frame carries its request's
``content_key`` in the fixed preamble, so the router ranks workers with
rendezvous (highest-random-weight) hashing over the raw key bytes and
forwards the frame verbatim to the top-ranked live worker.  Identical
requests therefore always land on the same worker and its in-memory
cache; the key is a routing *hint* only — workers recompute it from the
weights, so a mis-keyed frame can degrade locality but never poison a
cache entry.  NDJSON clients get the same routing: the router decodes the
line (the compat path pays JSON once), reframes it as binary for the
worker hop, and re-encodes the response as JSON.

**Session routing.**  ``recolor`` frames route the same way but by a
*session*-derived key (:func:`repro.service.frames.session_routing_key`),
so one session's seed and every delta land on the same worker.  When that
worker dies the failover walk re-sends to a sibling, which replays the
session's write-ahead journal from the shared spill directory
(:mod:`repro.service.durability`) before serving — crash-transparent to
the streaming client.

**Failover and supervision.**  A forward that fails mid-flight walks down
the rendezvous ranking and re-sends — safe because requests are
content-addressed and idempotent — while a supervisor task respawns dead
workers in the background (blame-isolated: one slot at a time, counted in
``worker_restarts``).  Killing a worker mid-run therefore degrades
latency on its key range; it does not fail clients.

**Metrics.**  ``/metrics`` against the router returns its own routing
counters plus per-worker snapshots (fetched live with mergeable histogram
state) and a ``fleet`` view folded with
:func:`repro.obs.metrics.merge_snapshots`.
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.service.frames import (
    FLAG_TRAILING_NEWLINE,
    FRAME_MAGIC,
    OP_COLOR,
    OP_HELLO,
    OP_METRICS,
    OP_PING,
    OP_RECOLOR,
    OP_RESPONSE,
    OP_SHUTDOWN,
    PREAMBLE_SIZE,
    FrameError,
    TornFrameError,
    decode_frame,
    decode_preamble,
    encode_color_request,
    encode_frame,
    encode_hello_ok,
    encode_recolor_request,
    frame_timeout,
    response_to_message,
    session_routing_key,
)
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    STATUS_ERROR,
    STATUS_INVALID,
    STATUS_OK,
    ProtocolError,
    decode_message,
    encode_message,
    recolor_from_wire,
    request_from_wire,
)
from repro.service.server import ServerConfig
from repro.service.workers import WorkerPool

#: How often the supervisor sweeps for dead workers, seconds.
SUPERVISOR_INTERVAL = 0.2


@dataclass
class RouterConfig:
    """Tunables of one :class:`ColoringRouter` (public endpoint + pool)."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    spill_dir: Optional[str] = None  # None = pool-owned temp dir
    worker_config: ServerConfig = field(default_factory=ServerConfig)
    forward_timeout: float = 60.0  # per-hop budget talking to one worker
    drain_timeout: float = 10.0


def rank_workers(key: str, count: int) -> list[int]:
    """Worker slots for ``key``, best first (rendezvous hashing).

    Every (key, slot) pair gets an independent pseudo-random score; the
    ranking is stable under membership changes — removing one worker only
    moves *its* keys, which is what keeps sibling caches warm through a
    restart.  An empty key still ranks deterministically.
    """
    scores = []
    for slot in range(count):
        digest = hashlib.blake2b(
            f"{key}|{slot}".encode(), digest_size=8
        ).digest()
        scores.append((int.from_bytes(digest, "big"), slot))
    return [slot for _, slot in sorted(scores, reverse=True)]


async def _read_raw_frame(
    reader: asyncio.StreamReader, *, first: bytes = b""
) -> Optional[tuple[int, str, bytes]]:
    """One frame as ``(opcode, key, raw bytes)`` without parsing the body.

    The router's hot path: preamble fields are enough to route, so the
    header and payload stay opaque bytes.  Same EOF/truncation contract as
    :func:`~repro.service.frames.read_frame_async`.
    """
    head = bytes(first)
    try:
        if len(head) < PREAMBLE_SIZE:
            head += await reader.readexactly(PREAMBLE_SIZE - len(head))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not first:
            return None  # clean EOF between frames
        raise TornFrameError(
            f"preamble truncated: {len(first) + len(exc.partial)} of "
            f"{PREAMBLE_SIZE} bytes"
        ) from None
    _version, flags, opcode, key, header_len, payload_len = decode_preamble(head)
    tail = 1 if flags & FLAG_TRAILING_NEWLINE else 0
    try:
        body = await reader.readexactly(header_len + payload_len + tail)
    except asyncio.IncompleteReadError as exc:
        raise TornFrameError(
            f"frame body truncated ({len(exc.partial)} of {exc.expected} bytes)"
        ) from None
    return opcode, key, head + body


class ColoringRouter:
    """The accept/route front process (see module docstring)."""

    def __init__(self, config: Optional[RouterConfig] = None) -> None:
        self.config = config or RouterConfig()
        self.pool = WorkerPool(
            self.config.worker_config,
            self.config.workers,
            spill_dir=self.config.spill_dir,
        )
        self.metrics = MetricsRegistry()
        # Hot keys repeat; rendezvous hashing is pure in (key, count), so
        # the ranking is memoized (bounded — the hot set is small).
        self._rank_cache: dict[str, list[int]] = {}
        # Counter handles resolved once: the registry lookup takes a lock,
        # and the forward path pays these two on every routed response.
        self._routed_total = self.metrics.counter("routed_total")
        self._routed_to = [
            self.metrics.counter(f"routed_to.w{slot}")
            for slot in range(self.config.workers)
        ]
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.Task] = set()
        self._supervisor: Optional[asyncio.Task] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._restart_lock: Optional[asyncio.Lock] = None
        self._started_at = 0.0

    # -------------------------------------------------------------- lifecycle
    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        await asyncio.to_thread(self.pool.start)
        self._shutdown_requested = asyncio.Event()
        self._restart_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_MESSAGE_BYTES,
        )
        self._supervisor = asyncio.create_task(
            self._supervise(), name="router-supervisor"
        )
        self._started_at = time.monotonic()

    async def serve_until_shutdown(self) -> None:
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def stop(self) -> None:
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except asyncio.CancelledError:
                pass
            self._supervisor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            _done, lingering = await asyncio.wait(
                self._connections, timeout=self.config.drain_timeout
            )
            for task in lingering:
                task.cancel()
            if lingering:
                await asyncio.wait(lingering, timeout=1.0)
        await asyncio.to_thread(self.pool.stop)

    # ------------------------------------------------------------- supervision
    async def _supervise(self) -> None:
        """Respawn dead workers, one slot at a time, forever."""
        while True:
            await asyncio.sleep(SUPERVISOR_INTERVAL)
            for slot in self.pool.dead_slots():
                await self._restart_slot(slot)

    async def _restart_slot(self, slot: int) -> None:
        assert self._restart_lock is not None
        async with self._restart_lock:
            restarted = await asyncio.to_thread(self.pool.ensure_alive, slot)
        if restarted:
            self.metrics.counter("worker_restarts").inc()

    # ------------------------------------------------------------- forwarding
    def _ranking(self, key: str) -> list[int]:
        """Memoized rendezvous ranking for ``key`` (pure in key + count)."""
        ranking = self._rank_cache.get(key)
        if ranking is None:
            if len(self._rank_cache) >= 4096:
                self._rank_cache.clear()
            ranking = rank_workers(key, len(self.pool.handles))
            self._rank_cache[key] = ranking
        return ranking

    async def _forward_to_slot(
        self, slot: int, raw: bytes, conns: dict
    ) -> bytes:
        """One forward hop to worker ``slot`` over a pooled connection.

        ``conns`` caches one upstream connection per slot for the lifetime
        of the client connection (requests on a connection are serial, so
        no multiplexing is needed).  A cached connection that has gone
        stale — the worker restarted on a new port, or closed it — is
        dropped and the hop retried once on a fresh connection before the
        failure propagates to the failover ranking.
        """
        handle = self.pool.handles[slot]
        cached = conns.get(slot)
        if cached is not None and cached[2] != handle.port:
            cached[1].close()
            conns.pop(slot, None)
            cached = None
        for attempt in (0, 1):
            entry = conns.get(slot)
            if entry is None:
                reader, writer = await asyncio.open_connection(
                    handle.host, handle.port, limit=MAX_MESSAGE_BYTES
                )
                conns[slot] = (reader, writer, handle.port)
            else:
                reader, writer, _port = entry
            try:
                writer.write(raw)
                await writer.drain()
                async with frame_timeout(self.config.forward_timeout):
                    framed = await _read_raw_frame(reader)
                if framed is None:
                    raise ConnectionResetError("worker closed mid-request")
                return framed[2]
            except (OSError, asyncio.TimeoutError, TornFrameError) as exc:
                writer.close()
                conns.pop(slot, None)
                if attempt == 1 or cached is None:
                    raise
                cached = None  # stale pooled connection: one fresh retry
                del exc

    async def _forward_raw(
        self, key: str, raw: bytes, conns: dict
    ) -> tuple[Optional[bytes], str]:
        """Send ``raw`` to the best live worker; returns (response, error).

        Walks the rendezvous ranking on transport failure — the re-send is
        safe because color requests are content-addressed and idempotent.
        A worker found dead is handed to the restart path immediately
        instead of waiting for the supervisor's next sweep.
        """
        ranking = self._ranking(key)
        errors = []
        for slot in ranking:
            handle = self.pool.handles[slot]
            try:
                response = await self._forward_to_slot(slot, raw, conns)
            except (
                OSError,
                asyncio.TimeoutError,
                TornFrameError,
                FrameError,
            ) as exc:
                errors.append(f"{handle.worker_id}: {type(exc).__name__}: {exc}")
                self.metrics.counter("router_failover").inc()
                await self._restart_slot(slot)
                continue
            self._routed_total.inc()
            self._routed_to[slot].inc()
            return response, ""
        return None, "; ".join(errors) or "no workers available"

    # ------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            try:
                first = await reader.readexactly(2)
            except asyncio.IncompleteReadError as exc:
                if exc.partial:
                    self.metrics.counter("torn_lines").inc()
                return
            if first == FRAME_MAGIC:
                await self._serve_binary(reader, writer, first)
            else:
                await self._serve_ndjson(reader, writer, first)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first: bytes,
    ) -> None:
        """Pipelined binary loop: forward immediately, respond in order.

        Color frames are written to their rendezvous worker as soon as they
        are read; a pump task then reads worker responses in request order
        and relays them to the client.  A client that pipelines k frames
        therefore keeps k requests in flight across the pool instead of
        paying a full router round trip per frame.  Two upstream pools are
        kept deliberately separate: ``conns`` carries pipelined frames
        (read only by the pump, strictly in descriptor order) while
        ``fb_conns`` serves the strict request/response failover re-sends —
        sharing one pool would let a re-sent request steal an in-flight
        response.  Descriptors remember the exact connection their frame
        was written to; if it is gone by read time (worker death tears it
        down), the request is re-forwarded from its raw bytes, which is
        safe because color requests are content-addressed and idempotent.
        """
        self.metrics.counter("binary_connections").inc()
        conns: dict = {}
        fb_conns: dict = {}
        pending: asyncio.Queue = asyncio.Queue(maxsize=256)
        client_gone = False

        async def pump() -> None:
            nonlocal client_gone
            done = False
            while not done:
                # Greedy drain: responses for one client burst become one
                # write to the client socket instead of one send per frame.
                batch = [await pending.get()]
                while len(batch) < 64:
                    try:
                        batch.append(pending.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                out: list[bytes] = []
                try:
                    for item in batch:
                        if item is None:
                            done = True
                            break
                        if item[0] == "bytes":
                            out.append(item[1])
                        elif not client_gone:
                            _kind, slot, entry, key, raw = item
                            out.append(
                                await self._pipelined_response(
                                    slot, entry, key, raw, conns, fb_conns
                                )
                            )
                    if out and not client_gone:
                        writer.write(b"".join(out))
                        await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    client_gone = True
                except Exception:
                    # Never die mid-queue: the read loop blocks on put().
                    client_gone = True

        pump_task = asyncio.create_task(pump())
        try:
            while True:
                if client_gone:
                    break
                try:
                    framed = await _read_raw_frame(reader, first=first)
                except TornFrameError:
                    self.metrics.counter("torn_frames").inc()
                    break
                except FrameError as exc:
                    self.metrics.counter("protocol_errors").inc()
                    await pending.put(
                        ("bytes", encode_frame(
                            OP_RESPONSE,
                            {"id": "", "status": STATUS_INVALID,
                             "error": str(exc)},
                        ))
                    )
                    break
                first = b""
                if framed is None:
                    break
                opcode, key, raw = framed
                if opcode in (OP_COLOR, OP_RECOLOR):
                    # Recolor frames carry a session-derived preamble key
                    # (see frames.session_routing_key), so a session's
                    # whole delta stream lands on one rendezvous-chosen
                    # worker; failover re-sends are safe because deltas
                    # carry absolute weights (idempotent) and the sibling
                    # replays the shared-spill journal before answering.
                    slot, entry = await self._pipeline_forward(key, raw, conns)
                    await pending.put(("read", slot, entry, key, raw))
                    continue
                response, shutdown = await self._handle_binary_op(opcode, raw)
                await pending.put(("bytes", response))
                if shutdown:
                    break
        finally:
            await pending.put(None)
            await pump_task
            for pool in (conns, fb_conns):
                for _reader, conn_writer, _port in pool.values():
                    conn_writer.close()

    async def _pipeline_forward(
        self, key: str, raw: bytes, conns: dict
    ) -> tuple[int, Optional[tuple]]:
        """Write ``raw`` to the best reachable worker; do not await a reply.

        Returns ``(slot, connection entry)`` for the pump's ordered read;
        ``(-1, None)`` when no worker accepted the write, in which case the
        read path runs the full failover walk from the raw bytes.
        """
        for slot in self._ranking(key):
            handle = self.pool.handles[slot]
            entry = conns.get(slot)
            if entry is not None and entry[2] != handle.port:
                entry[1].close()
                conns.pop(slot, None)
                entry = None
            try:
                if entry is None:
                    upstream_reader, upstream_writer = await asyncio.open_connection(
                        handle.host, handle.port, limit=MAX_MESSAGE_BYTES
                    )
                    entry = (upstream_reader, upstream_writer, handle.port)
                    conns[slot] = entry
                entry[1].write(raw)
                await entry[1].drain()
                return slot, entry
            except (OSError, asyncio.TimeoutError):
                if conns.get(slot) is entry:
                    conns.pop(slot, None)
                if entry is not None:
                    entry[1].close()
        return -1, None

    async def _pipelined_response(
        self,
        slot: int,
        entry: Optional[tuple],
        key: str,
        raw: bytes,
        conns: dict,
        fb_conns: dict,
    ) -> bytes:
        """The ordered response for one pipelined forward (pump side).

        Reads from the exact connection the frame was written to; any
        mismatch or transport failure falls back to a fresh idempotent
        re-send through the request/response pool.
        """
        response: Optional[bytes] = None
        if entry is not None and conns.get(slot) is entry:
            try:
                async with frame_timeout(self.config.forward_timeout):
                    framed = await _read_raw_frame(entry[0])
                if framed is None:
                    raise ConnectionResetError("worker closed mid-request")
                response = framed[2]
            except (OSError, asyncio.TimeoutError, TornFrameError, FrameError):
                # Tear the connection down and let the failover walk decide
                # who serves the re-send (and who needs a restart) — the
                # sibling with the shared L2 tier beats waiting out a respawn.
                if conns.get(slot) is entry:
                    conns.pop(slot, None)
                entry[1].close()
                self.metrics.counter("router_failover").inc()
        if response is not None:
            self._routed_total.inc()
            self._routed_to[slot].inc()
            return response
        forwarded, error = await self._forward_raw(key, raw, fb_conns)
        if forwarded is not None:
            return forwarded
        return encode_frame(
            OP_RESPONSE,
            {
                "id": decode_frame(raw).request_id,
                "status": STATUS_ERROR,
                "error": f"all workers unreachable: {error}",
            },
        )

    async def _handle_binary_op(self, opcode: int, raw: bytes) -> tuple[bytes, bool]:
        if opcode == OP_HELLO:
            return encode_hello_ok("router"), False
        # Local ops: parse the (small) frame for its request id.
        try:
            frame = decode_frame(raw)
        except FrameError as exc:
            self.metrics.counter("protocol_errors").inc()
            return (
                encode_frame(
                    OP_RESPONSE,
                    {"id": "", "status": STATUS_INVALID, "error": str(exc)},
                ),
                False,
            )
        request_id = frame.request_id
        if opcode == OP_PING:
            return (
                encode_frame(
                    OP_RESPONSE,
                    {"id": request_id, "status": "ok", "op_echo": "ping"},
                ),
                False,
            )
        if opcode == OP_METRICS:
            snap = await self.snapshot()
            return (
                encode_frame(
                    OP_RESPONSE,
                    {"id": request_id, "status": "ok", "metrics": snap},
                ),
                False,
            )
        if opcode == OP_SHUTDOWN:
            self.request_shutdown()
            return (
                encode_frame(
                    OP_RESPONSE,
                    {"id": request_id, "status": "ok", "op_effect": "shutdown"},
                ),
                True,
            )
        self.metrics.counter("protocol_errors").inc()
        return (
            encode_frame(
                OP_RESPONSE,
                {
                    "id": request_id,
                    "status": STATUS_INVALID,
                    "error": f"unexpected opcode {opcode}",
                },
            ),
            False,
        )

    async def _serve_ndjson(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        pending: bytes,
    ) -> None:
        """NDJSON compatibility loop: decode, route, re-encode.

        Same torn-trailing-line tolerance as the single-process server.
        """
        conns: dict = {}
        try:
            while True:
                newline = pending.find(b"\n")
                if newline >= 0:
                    line, pending = pending[: newline + 1], pending[newline + 1 :]
                else:
                    try:
                        rest = await reader.readline()
                    except (asyncio.LimitOverrunError, ValueError):
                        writer.write(
                            encode_message(
                                {"id": "", "status": STATUS_INVALID,
                                 "error": "message exceeds size limit"}
                            )
                        )
                        await writer.drain()
                        break
                    if not rest:
                        if pending.strip():
                            self.metrics.counter("torn_lines").inc()
                        break
                    line, pending = pending + rest, b""
                    if not line.endswith(b"\n"):
                        self.metrics.counter("torn_lines").inc()
                        break
                response = await self._handle_ndjson_message(line, conns)
                writer.write(encode_message(response))
                await writer.drain()
                if response.get("op_effect") == "shutdown":
                    break
        finally:
            for _reader, conn_writer, _port in conns.values():
                conn_writer.close()

    async def _handle_ndjson_message(self, line: bytes, conns: dict) -> dict:
        try:
            message = decode_message(line)
        except ProtocolError as exc:
            self.metrics.counter("protocol_errors").inc()
            return {"id": "", "status": STATUS_INVALID, "error": str(exc)}
        op = message.get("op")
        request_id = str(message.get("id", ""))
        if op == "ping":
            return {"id": request_id, "status": "ok", "op_echo": "ping"}
        if op == "metrics":
            return {
                "id": request_id,
                "status": "ok",
                "metrics": await self.snapshot(),
            }
        if op == "shutdown":
            self.request_shutdown()
            return {"id": request_id, "status": "ok", "op_effect": "shutdown"}
        if op == "color":
            try:
                request = request_from_wire(message)
            except ProtocolError as exc:
                self.metrics.counter("protocol_errors").inc()
                return {
                    "id": request_id,
                    "status": STATUS_INVALID,
                    "error": str(exc),
                }
            raw = encode_color_request(request)
            forwarded, error = await self._forward_raw(request.key, raw, conns)
            if forwarded is None:
                return {
                    "id": request_id,
                    "status": STATUS_ERROR,
                    "error": f"all workers unreachable: {error}",
                }
            reply = response_to_message(decode_frame(forwarded))
            if reply.get("starts") is not None:
                reply["starts"] = [int(s) for s in reply["starts"]]
            reply["id"] = request_id
            return reply
        if op == "recolor":
            # Same decode/reframe/forward dance as "color", but routed by
            # the session key so the stream stays on one worker.
            try:
                request = recolor_from_wire(message)
            except ProtocolError as exc:
                self.metrics.counter("protocol_errors").inc()
                return {
                    "id": request_id,
                    "status": STATUS_INVALID,
                    "error": str(exc),
                }
            raw = encode_recolor_request(request)
            forwarded, error = await self._forward_raw(
                session_routing_key(request.session), raw, conns
            )
            if forwarded is None:
                return {
                    "id": request_id,
                    "status": STATUS_ERROR,
                    "error": f"all workers unreachable: {error}",
                }
            reply = response_to_message(decode_frame(forwarded))
            for name in ("starts", "changed_idx", "changed_starts"):
                if reply.get(name) is not None:
                    reply[name] = [int(v) for v in reply[name]]
            reply["id"] = request_id
            return reply
        self.metrics.counter("protocol_errors").inc()
        return {
            "id": request_id,
            "status": STATUS_INVALID,
            "error": f"unknown op {op!r}",
        }

    # ---------------------------------------------------------------- metrics
    async def _worker_snapshot(self, handle) -> Optional[dict]:
        """One worker's live snapshot with mergeable histogram state."""
        from repro.service.client import AsyncServiceClient, ServiceError

        client = AsyncServiceClient(
            handle.host, handle.port,
            timeout=self.config.forward_timeout, wire="binary",
        )
        try:
            await client.connect()
            return await client.metrics(include_state=True)
        except (ServiceError, OSError, asyncio.TimeoutError):
            return None
        finally:
            await client.close()

    async def snapshot(self) -> dict[str, Any]:
        """Router counters + per-worker snapshots + folded fleet view."""
        per_worker: dict[str, Any] = {}
        mergeable: list[dict] = []
        for handle in self.pool.handles:
            snap = await self._worker_snapshot(handle)
            if snap is None:
                per_worker[handle.worker_id] = {
                    "alive": handle.alive(), "restarts": handle.restarts,
                    "error": "unreachable",
                }
                continue
            snap["worker"] = {
                "alive": True,
                "restarts": handle.restarts,
                "port": handle.port,
            }
            per_worker[handle.worker_id] = snap
            mergeable.append(snap)
        snap = self.metrics.snapshot()
        snap["router"] = {
            "workers": len(self.pool.handles),
            "worker_restarts": self.pool.total_restarts,
            "uptime_seconds": time.monotonic() - self._started_at,
            "spill_dir": self.pool.spill_dir,
        }
        snap["workers"] = per_worker
        snap["fleet"] = merge_snapshots(mergeable) if mergeable else {}
        # The fast-path/batcher split lives in the workers; surface the
        # fleet-wide cache hit counters at top level for convenience.
        fleet_counters = snap["fleet"].get("counters", {})
        snap["counters"].setdefault(
            "fleet_cache_hits", fleet_counters.get("cache_hits", 0)
        )
        snap["server"] = {
            "worker_id": "router",
            "wire_protocols": ["ndjson", "frames/v1"],
            **snap["router"],
        }
        return snap


async def run_router(config: RouterConfig, *, ready=None) -> None:
    """Start a router + pool and serve until a shutdown op (CLI entry)."""
    router = ColoringRouter(config)
    await router.start()
    if ready is not None:
        ready(router)
    await router.serve_until_shutdown()


class RouterThread:
    """A :class:`ColoringRouter` on a private loop in a daemon thread.

    The multi-worker twin of :class:`~repro.service.server.ServerThread`,
    with the same start/stop/context-manager contract — benchmarks and
    tests drive binary multi-worker serving through this.
    """

    def __init__(self, config: Optional[RouterConfig] = None) -> None:
        self.config = config or RouterConfig()
        self.router: Optional[ColoringRouter] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port

    @property
    def host(self) -> str:
        return self.config.host

    def start(self, timeout: float = 60.0) -> "RouterThread":
        self._thread = threading.Thread(
            target=self._run, name="coloring-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("coloring router failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"coloring router failed to start: {self._error}")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.router = ColoringRouter(self.config)
            await self.router.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.router.serve_until_shutdown()

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_shutdown)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
