"""Write-ahead journaling and crash recovery for ``recolor`` sessions.

A recolor session is the first piece of server-side state that must outlive
the process that created it: one worker crash in the multi-worker tier used
to destroy every session it held, forcing mid-stream clients into full
mirror re-seeds — exactly the expensive path incremental recoloring exists
to avoid.  This module makes sessions durable under the shared spill
directory so a restarted (or sibling, after router failover) worker can
rebuild them bit-identically before ever answering ``unknown-session``.

Design
------
Per session, two files under ``<spill-dir>/sessions/``:

``<sid>.journal.jsonl``
    An append-safe write-ahead journal, one JSON record per line, exactly
    like the engine run logs: a ``seed`` record (algorithm, shape, full
    weights) followed by ``delta`` records carrying *absolute* new weights
    for the touched cells plus a strictly increasing ``seq``.  Absolute
    weights make every record idempotent: replaying a delta twice, or
    re-appending one after a torn write, converges to the same state.

``<sid>.checkpoint.json``
    Periodic compaction: the full colored grid (weights + starts) as of
    ``seq``, blake2b-fingerprinted.  A checkpoint is written to a temp
    file, **read back and fingerprint-verified**, and only then atomically
    published (``os.replace``) and the journal truncated — a checkpoint
    that fails verification keeps both the previous checkpoint and the
    whole journal, so compaction can never lose acknowledged state.

Recovery loads the checkpoint (ignored on fingerprint mismatch), replays
journal deltas with ``seq`` greater than the checkpoint's through the
incremental engine (:func:`~repro.incremental.engine.recolor_grid`, the
same call the live server makes — bit-identity follows from the engine's
proven determinism), skipping unparsable lines the way the run-log readers
tolerate torn trailing writes.  Appends themselves heal torn tails: before
each record the writer checks the file ends in a newline and inserts one
if a previous write (or process death) tore it, so a client's idempotent
re-send after a failed append lands as a clean, parseable record.

Fault sites (see :mod:`repro.resilience.faults`): ``durability.journal.
append`` (``torn`` tears the record mid-line and raises, ``error`` fails
before writing) and ``durability.checkpoint.write`` (``corrupt`` damages
the snapshot so verification rejects it, ``stale`` skips compaction
entirely — the journal simply keeps growing).

Multiple workers may append to one session's journal across a failover
window; O_APPEND line writes keep records whole, replay's seq ordering
drops duplicates, and rendezvous routing converges traffic back to a
single owner.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.resilience.faults import InjectedFault, draw
from repro.runtime.config import DurabilityConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.metrics import MetricsRegistry
    from repro.service.sessions import RecolorSession

__all__ = [
    "SessionDurability",
    "RecoveredSession",
    "session_stem",
]

#: dtype every journaled/checkpointed array is normalized to (the service
#: wire dtype — see ``frames.PAYLOAD_DTYPE``).
_DTYPE = np.int64


def session_stem(session_id: str) -> str:
    """The filesystem stem for a session id (ids are client-chosen text)."""
    return hashlib.blake2b(session_id.encode(), digest_size=16).hexdigest()


def _fingerprint(weights: np.ndarray, starts: np.ndarray) -> str:
    """A blake2b fingerprint binding a checkpoint's weights, starts, shape."""
    h = hashlib.blake2b(digest_size=20)
    h.update(repr(tuple(weights.shape)).encode())
    h.update(np.ascontiguousarray(weights, dtype=_DTYPE).tobytes())
    h.update(np.ascontiguousarray(starts, dtype=_DTYPE).tobytes())
    return h.hexdigest()


@dataclass
class RecoveredSession:
    """A session rebuilt from its checkpoint + journal, ready to re-open."""

    session_id: str
    algorithm: str
    weights: np.ndarray
    starts: np.ndarray
    maxcolor: int
    deltas_applied: int
    source: str = "journal"  # "checkpoint" when no deltas replayed on top


class SessionDurability:
    """Per-session WAL + checkpoint store under one directory.

    Thread-safety: the server serializes all recolor mutations behind one
    lock, so this class does per-call open/append/close with no shared
    handles — which also makes every append land on the file a concurrent
    sibling (failover window) or an offline ``stencil-ivc sessions``
    invocation sees.
    """

    def __init__(
        self,
        root: Path,
        config: Optional[DurabilityConfig] = None,
        *,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.root = Path(root)
        self.config = config or DurabilityConfig()
        self.metrics = metrics
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------- paths
    def journal_path(self, session_id: str) -> Path:
        return self.root / f"{session_stem(session_id)}.journal.jsonl"

    def checkpoint_path(self, session_id: str) -> Path:
        return self.root / f"{session_stem(session_id)}.checkpoint.json"

    # ----------------------------------------------------------- metrics
    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _observe(self, name: str, seconds: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(name).observe(seconds)

    # ----------------------------------------------------------- appends
    def _append(self, path: Path, record: dict, token: str) -> None:
        """Append one JSON record as a line, healing a torn tail first.

        The ``durability.journal.append`` fault site tears the write
        mid-line (``torn``) or fails it outright (``error``); both raise,
        so the delta is *not* acknowledged and the client's idempotent
        re-send lands as a fresh complete record.
        """
        line = json.dumps(record, separators=(",", ":")) + "\n"
        fault = draw("durability.journal.append", token)
        if fault is not None and fault.kind == "error":
            raise InjectedFault(
                f"injected durability.journal.append fault for {token!r}"
            )
        torn = fault is not None and fault.kind == "torn"
        with path.open("ab") as fh:
            if fh.tell() and not self._tail_is_clean(path):
                fh.write(b"\n")
            payload = line.encode()
            if torn:
                payload = payload[: max(1, len(payload) // 2)]
            fh.write(payload)
            fh.flush()
            if self.config.fsync == "always":
                os.fsync(fh.fileno())
        self._count("journal_records")
        if torn:
            self._count("journal_torn_appends")
            raise InjectedFault(
                f"injected durability.journal.append torn write for {token!r}"
            )

    @staticmethod
    def _tail_is_clean(path: Path) -> bool:
        """True when the journal's last byte is a newline (or it is empty)."""
        try:
            with path.open("rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) == b"\n"
        except (OSError, ValueError):
            return True

    # ------------------------------------------------------- WAL surface
    def record_seed(self, session: "RecolorSession") -> None:
        """Start a fresh journal epoch for ``session`` (re-seeds reset it).

        A re-seed replaces the session's entire state, so the previous
        checkpoint and journal are dropped first — replay must never mix
        records across seed epochs.
        """
        ck = self.checkpoint_path(session.session_id)
        try:
            ck.unlink()
        except FileNotFoundError:
            pass
        journal = self.journal_path(session.session_id)
        with journal.open("wb"):
            pass  # truncate: new epoch
        record = {
            "t": "seed",
            "session": session.session_id,
            "algorithm": session.algorithm,
            "shape": [int(s) for s in session.weights.shape],
            "weights": [int(w) for w in session.weights.ravel()],
            "seq": 0,
        }
        self._append(journal, record, f"{session.session_id}#seed")

    def record_delta(
        self,
        session_id: str,
        seq: int,
        idx: np.ndarray,
        new_weights: np.ndarray,
    ) -> None:
        """Journal one applied delta (absolute weights — idempotent).

        Called *before* the in-memory commit and before the delta is
        acknowledged: a failed append raises, the server answers ``error``,
        and the re-sent delta journals again under the same ``seq``.
        """
        record = {
            "t": "delta",
            "seq": int(seq),
            "idx": [int(i) for i in np.asarray(idx).ravel()],
            "weights": [int(w) for w in np.asarray(new_weights).ravel()],
        }
        self._append(
            self.journal_path(session_id), record, f"{session_id}#{seq}"
        )

    def maybe_checkpoint(self, session: "RecolorSession") -> bool:
        """Compact the journal into a checkpoint when the interval is due."""
        interval = self.config.checkpoint_interval
        if interval <= 0 or session.deltas_applied <= 0:
            return False
        if session.deltas_applied % interval != 0:
            return False
        return self.write_checkpoint(session)

    def write_checkpoint(self, session: "RecolorSession") -> bool:
        """Snapshot ``session``; truncate the journal only after verifying.

        Ordering is the whole point: temp write → read back → fingerprint
        check → atomic publish → journal truncate.  Any failure before the
        publish leaves the previous checkpoint *and* the full journal in
        place, so acknowledged deltas always remain recoverable.
        """
        t0 = time.perf_counter()
        seq = int(session.deltas_applied)
        token = f"{session.session_id}#{seq}"
        fault = draw("durability.checkpoint.write", token)
        if fault is not None and fault.kind == "stale":
            self._count("checkpoint_skipped_stale")
            return False
        weights = np.ascontiguousarray(session.weights, dtype=_DTYPE)
        starts = np.ascontiguousarray(session.starts, dtype=_DTYPE)
        snapshot = {
            "session": session.session_id,
            "algorithm": session.algorithm,
            "shape": [int(s) for s in weights.shape],
            "seq": seq,
            "maxcolor": int(session.maxcolor),
            "weights": [int(w) for w in weights.ravel()],
            "starts": [int(s) for s in starts.ravel()],
            "fingerprint": _fingerprint(weights, starts),
        }
        payload = json.dumps(snapshot, separators=(",", ":"))
        if fault is not None and fault.kind == "corrupt":
            payload = payload[: max(1, len(payload) // 2)]
        final = self.checkpoint_path(session.session_id)
        tmp = self.root / f".{final.stem}.{os.getpid()}.tmp"
        try:
            with tmp.open("w") as fh:
                fh.write(payload)
                fh.flush()
                if self.config.fsync in ("checkpoint", "always"):
                    os.fsync(fh.fileno())
            if self._load_checkpoint_file(tmp) is None:
                self._count("checkpoint_verify_failures")
                return False
            os.replace(tmp, final)
        except OSError:
            self._count("checkpoint_write_errors")
            return False
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass
        # Published and verified: acknowledged state ≤ seq now lives in the
        # checkpoint, so the journal can restart empty.  (A crash landing
        # between the publish and this truncate is benign — replay skips
        # journal records with seq ≤ the checkpoint's.)
        with self.journal_path(session.session_id).open("wb"):
            pass
        self._count("checkpoints_written")
        self._observe("checkpoint_write_seconds", time.perf_counter() - t0)
        return True

    def forget(self, session_id: str) -> None:
        """Drop every durable trace of ``session_id`` (explicit drops)."""
        for path in (
            self.journal_path(session_id),
            self.checkpoint_path(session_id),
        ):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # ---------------------------------------------------------- recovery
    def _load_checkpoint_file(self, path: Path) -> Optional[dict]:
        """Parse + fingerprint-verify one checkpoint file (None on damage)."""
        try:
            snapshot = json.loads(path.read_text())
            shape = tuple(int(s) for s in snapshot["shape"])
            weights = np.asarray(snapshot["weights"], dtype=_DTYPE).reshape(
                shape
            )
            starts = np.asarray(snapshot["starts"], dtype=_DTYPE).reshape(
                shape
            )
        except (OSError, ValueError, KeyError, TypeError) as _:
            return None
        if _fingerprint(weights, starts) != snapshot.get("fingerprint"):
            return None
        snapshot["weights"] = weights
        snapshot["starts"] = starts
        return snapshot

    def _read_journal(self, path: Path) -> tuple[list[dict], int]:
        """All parseable journal records, in file order, plus skip count.

        Torn lines — a trailing one from a crash mid-append, or an interior
        one from a torn write whose delta the client then re-sent — are
        skipped and counted, exactly like the engine run-log readers.
        """
        records: list[dict] = []
        skipped = 0
        try:
            raw = path.read_bytes()
        except OSError:
            return records, skipped
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict) and record.get("t") in (
                "seed",
                "delta",
            ):
                records.append(record)
            else:
                skipped += 1
        return records, skipped

    def recover(self, session_id: str) -> Optional[RecoveredSession]:
        """Rebuild ``session_id`` from its checkpoint + journal, or ``None``.

        Bit-identity with the lost in-memory session follows from replaying
        the *same* engine calls the live server made: ``full_recolor`` of
        the seed weights, then ``recolor_grid`` per delta in seq order.
        Duplicate records (idempotent re-sends, pre-truncate checkpoints)
        are skipped by their seq; a seq gap stops replay at the last
        causally complete state.
        """
        from repro.incremental.engine import full_recolor, recolor_grid

        checkpoint = self._load_checkpoint_file(
            self.checkpoint_path(session_id)
        )
        if checkpoint is None and self.checkpoint_path(session_id).exists():
            self._count("checkpoint_verify_failures")
        records, skipped = self._read_journal(self.journal_path(session_id))
        if skipped:
            self._count("journal_skipped_records", skipped)

        weights: Optional[np.ndarray] = None
        starts: Optional[np.ndarray] = None
        algorithm = ""
        maxcolor = 0
        seq = 0
        if checkpoint is not None:
            weights = checkpoint["weights"]
            starts = checkpoint["starts"]
            algorithm = str(checkpoint["algorithm"])
            maxcolor = int(checkpoint["maxcolor"])
            seq = int(checkpoint["seq"])
        replayed = 0
        for record in records:
            if record["t"] == "seed":
                if checkpoint is not None:
                    # A verified checkpoint always postdates the epoch's
                    # seed record (the journal restarts empty afterwards);
                    # a stray seed here would be a pre-truncate leftover.
                    continue
                try:
                    shape = tuple(int(s) for s in record["shape"])
                    weights = np.asarray(
                        record["weights"], dtype=_DTYPE
                    ).reshape(shape)
                    algorithm = str(record["algorithm"])
                except (KeyError, ValueError, TypeError):
                    self._count("journal_skipped_records")
                    continue
                starts = full_recolor(weights, algorithm)
                maxcolor = (
                    int((starts + weights).max()) if weights.size else 0
                )
                seq = 0
                continue
            if weights is None or starts is None:
                # Deltas before any usable seed/checkpoint: unrecoverable
                # prefix (e.g. damaged seed record) — skip.
                self._count("journal_skipped_records")
                continue
            try:
                rec_seq = int(record["seq"])
                idx = np.asarray(record["idx"], dtype=np.int64)
                vals = np.asarray(record["weights"], dtype=_DTYPE)
            except (KeyError, ValueError, TypeError):
                self._count("journal_skipped_records")
                continue
            if rec_seq <= seq:
                continue  # duplicate (idempotent re-send / pre-truncate)
            if rec_seq != seq + 1:
                self._count("journal_seq_gaps")
                break  # causal gap: stop at the last complete state
            if idx.size and (
                int(idx.min()) < 0 or int(idx.max()) >= weights.size
            ):
                self._count("journal_skipped_records")
                break
            new_weights = weights.copy()
            new_weights.ravel()[idx] = vals
            outcome = recolor_grid(
                new_weights, starts, idx, algorithm=algorithm
            )
            weights = new_weights
            starts = outcome.starts
            maxcolor = int(outcome.maxcolor)
            seq = rec_seq
            replayed += 1
        if weights is None or starts is None or not algorithm:
            self._count("recovery_failures")
            return None
        return RecoveredSession(
            session_id=session_id,
            algorithm=algorithm,
            weights=weights,
            starts=starts,
            maxcolor=maxcolor,
            deltas_applied=seq,
            source="journal" if replayed else "checkpoint",
        )

    # ------------------------------------------------- offline inspection
    def list_sessions(self) -> list[dict]:
        """Summaries of every session with durable state under ``root``.

        Offline-safe: reads only, never mutates — the ``stencil-ivc
        sessions list`` view of a (possibly live) spill directory.
        """
        stems: dict[str, dict] = {}
        for path in sorted(self.root.glob("*.journal.jsonl")):
            stems.setdefault(path.name.split(".")[0], {})["journal"] = path
        for path in sorted(self.root.glob("*.checkpoint.json")):
            stems.setdefault(path.name.split(".")[0], {})["checkpoint"] = path
        summaries = []
        for stem, paths in sorted(stems.items()):
            summary: dict = {"stem": stem, "session": None}
            journal = paths.get("journal")
            if journal is not None:
                records, skipped = self._read_journal(journal)
                seeds = [r for r in records if r["t"] == "seed"]
                deltas = [r for r in records if r["t"] == "delta"]
                summary.update(
                    journal_bytes=journal.stat().st_size,
                    journal_records=len(records),
                    journal_deltas=len(deltas),
                    journal_skipped=skipped,
                )
                if seeds:
                    summary["session"] = seeds[-1].get("session")
                    summary["algorithm"] = seeds[-1].get("algorithm")
                    summary["shape"] = seeds[-1].get("shape")
            ck_path = paths.get("checkpoint")
            if ck_path is not None:
                checkpoint = self._load_checkpoint_file(ck_path)
                summary["checkpoint_bytes"] = ck_path.stat().st_size
                if checkpoint is not None:
                    summary.update(
                        checkpoint_seq=int(checkpoint["seq"]),
                        checkpoint_verified=True,
                        session=checkpoint["session"],
                        algorithm=checkpoint["algorithm"],
                        shape=[int(s) for s in checkpoint["shape"]],
                    )
                else:
                    summary["checkpoint_verified"] = False
            summaries.append(summary)
        return summaries

    def inspect(self, session_id: str) -> dict:
        """A deep, offline view of one session's durable state."""
        detail: dict = {
            "session": session_id,
            "stem": session_stem(session_id),
            "journal": str(self.journal_path(session_id)),
            "checkpoint": str(self.checkpoint_path(session_id)),
        }
        records, skipped = self._read_journal(self.journal_path(session_id))
        detail["journal_records"] = len(records)
        detail["journal_skipped"] = skipped
        detail["journal_seqs"] = [
            int(r["seq"]) for r in records if "seq" in r
        ]
        checkpoint = self._load_checkpoint_file(
            self.checkpoint_path(session_id)
        )
        if checkpoint is not None:
            detail["checkpoint_seq"] = int(checkpoint["seq"])
            detail["checkpoint_maxcolor"] = int(checkpoint["maxcolor"])
            detail["checkpoint_verified"] = True
        elif self.checkpoint_path(session_id).exists():
            detail["checkpoint_verified"] = False
        recovered = self.recover(session_id)
        detail["recoverable"] = recovered is not None
        if recovered is not None:
            detail.update(
                algorithm=recovered.algorithm,
                shape=[int(s) for s in recovered.weights.shape],
                deltas_applied=recovered.deltas_applied,
                maxcolor=recovered.maxcolor,
                fingerprint=_fingerprint(
                    recovered.weights, recovered.starts
                ),
            )
        return detail

    def compact(self, session_id: str) -> Optional[dict]:
        """Offline compaction: recover, checkpoint, truncate — or ``None``.

        The maintenance half of ``stencil-ivc sessions``: folds a long
        journal into one verified checkpoint without a running server.
        """
        recovered = self.recover(session_id)
        if recovered is None:
            return None
        # Reuse the verified-checkpoint path; a RecoveredSession satisfies
        # the RecolorSession attribute surface write_checkpoint reads.
        ok = self.write_checkpoint(recovered)  # type: ignore[arg-type]
        return {
            "session": session_id,
            "compacted": bool(ok),
            "seq": recovered.deltas_applied,
            "journal_bytes": self.journal_path(session_id).stat().st_size
            if self.journal_path(session_id).exists()
            else 0,
        }

    def stats(self) -> dict:
        """Cheap directory-level stats for ``/metrics`` embedding."""
        journals = list(self.root.glob("*.journal.jsonl"))
        checkpoints = list(self.root.glob("*.checkpoint.json"))
        return {
            "root": str(self.root),
            "journals": len(journals),
            "checkpoints": len(checkpoints),
            "journal_bytes": sum(p.stat().st_size for p in journals),
            "checkpoint_bytes": sum(p.stat().st_size for p in checkpoints),
            "fsync": self.config.fsync,
            "checkpoint_interval": self.config.checkpoint_interval,
        }
