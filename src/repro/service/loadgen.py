"""Load generator for the coloring service (``stencil-ivc loadgen``).

Builds a *repeated-shape* workload — a small pool of distinct weight grids
over a handful of shapes, sampled with replacement — and fires it at a
server over ``concurrency`` parallel connections.  That is the serving
pattern the paper's interactive STKDE application produces: analysts re-bin
the same few grid geometries over and over, so shapes (and often whole
requests) repeat and the server's substrate sharing, micro-batching, and
result cache all engage.

With ``verify=True`` every served start vector is compared bit-for-bit
against a direct in-process :func:`~repro.core.algorithms.registry.color_with`
call on the same weights — the served-vs-direct equivalence check the CI
smoke job enforces.  ``overloaded`` responses are retried with a short
backoff (counted), exercising the admission control path without losing
requests.

Resilience: each worker's :class:`~repro.service.client.AsyncServiceClient`
carries a :class:`~repro.resilience.retry.RetryPolicy` (``retry=``), so
dropped connections — real or injected via a
:class:`~repro.resilience.faults.FaultPlan` — are transparently reconnected
and re-sent; ``connection_retries`` counts the budget spent and
``connection_failures`` counts requests lost after the budget was exhausted
(zero in a passing chaos run).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.resilience.faults import active_plan
from repro.resilience.retry import RetryPolicy
from repro.service.client import (
    AsyncServiceClient,
    ColorResponse,
    ServiceConnectionError,
    prepare_color_request,
)


@dataclass(frozen=True)
class WorkItem:
    """One request template of the workload pool."""

    weights: np.ndarray
    algorithm: str
    label: str


@dataclass
class LoadgenReport:
    """Aggregated outcome of one load-generation run."""

    requests: int = 0
    ok: int = 0
    cached: int = 0
    computed: int = 0
    overloaded_retries: int = 0
    connection_retries: int = 0
    connection_failures: int = 0
    timeouts: int = 0
    errors: int = 0
    divergences: int = 0
    duration_seconds: float = 0.0
    throughput_rps: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    concurrency: int = 0
    verify: bool = False
    wire: str = "ndjson"  # negotiated wire format the run actually used
    wire_requested: str = "auto"
    zipf: float = 0.0  # popularity skew of the request schedule (0 = uniform)
    pipeline: int = 1  # frames in flight per connection before the first read
    workers_seen: dict = field(default_factory=dict)  # worker_id -> responses
    error_samples: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    faults_fired: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cached / self.ok if self.ok else 0.0

    def to_json(self) -> dict:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "cached": self.cached,
            "computed": self.computed,
            "cache_hit_rate": self.cache_hit_rate,
            "overloaded_retries": self.overloaded_retries,
            "connection_retries": self.connection_retries,
            "connection_failures": self.connection_failures,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "divergences": self.divergences,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "concurrency": self.concurrency,
            "verify": self.verify,
            "wire": self.wire,
            "wire_requested": self.wire_requested,
            "zipf": self.zipf,
            "pipeline": self.pipeline,
            "workers_seen": dict(self.workers_seen),
            "error_samples": self.error_samples[:5],
            "faults_fired": dict(self.faults_fired),
        }


def parse_shapes(text: str) -> list[tuple[int, ...]]:
    """``"32x32,16x16x8"`` → ``[(32, 32), (16, 16, 8)]``."""
    shapes = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        dims = tuple(int(d) for d in part.lower().split("x"))
        if len(dims) not in (2, 3) or any(d <= 0 for d in dims):
            raise ValueError(f"bad shape {part!r}: need 2 or 3 positive dims")
        shapes.append(dims)
    if not shapes:
        raise ValueError("no shapes given")
    return shapes


def build_workload(
    shapes: Sequence[tuple[int, ...]],
    *,
    distinct: int = 8,
    algorithm: str = "BDP",
    max_weight: int = 100,
    seed: int = 0,
) -> list[WorkItem]:
    """A pool of ``distinct`` weight grids cycled over ``shapes``."""
    rng = np.random.default_rng(seed)
    pool = []
    for idx in range(distinct):
        shape = shapes[idx % len(shapes)]
        weights = rng.integers(1, max_weight + 1, size=shape, dtype=np.int64)
        label = "x".join(str(s) for s in shape)
        pool.append(WorkItem(weights=weights, algorithm=algorithm, label=f"{label}#{idx}"))
    return pool


def _direct_starts(item: WorkItem) -> np.ndarray:
    """The ground-truth coloring for verification, computed in-process."""
    from repro.core.algorithms.registry import color_with
    from repro.core.problem import IVCInstance

    if item.weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(item.weights)
    else:
        instance = IVCInstance.from_grid_3d(item.weights)
    coloring = color_with(instance, item.algorithm)
    return np.asarray(coloring.starts, dtype=np.int64).reshape(item.weights.shape)


async def run_loadgen_async(
    host: str,
    port: int,
    workload: Sequence[WorkItem],
    *,
    requests: int = 200,
    concurrency: int = 8,
    verify: bool = False,
    request_timeout: Optional[float] = None,
    max_retries: int = 50,
    seed: int = 0,
    fetch_metrics: bool = True,
    retry: Optional[RetryPolicy] = None,
    zipf: float = 0.0,
    wire: str = "auto",
    pipeline: int = 1,
) -> LoadgenReport:
    """Fire ``requests`` sampled requests at the server; aggregate outcomes.

    ``retry`` arms each worker's client with transparent
    reconnect-and-retry for transport failures (see the module docstring);
    ``None`` leaves connections brittle, the pre-resilience behaviour.

    ``zipf > 0`` skews the schedule: pool item at rank ``r`` (insertion
    order) is drawn with probability proportional to ``1 / r**zipf``, the
    classic popularity curve of repeated interactive queries.  ``zipf=0``
    keeps the historical uniform draw.  Both are deterministic in ``seed``.

    ``wire`` pins the client wire format (``"auto"``, ``"binary"``, or
    ``"ndjson"``); the negotiated result is recorded in the report.

    ``pipeline > 1`` keeps that many requests in flight per connection
    (wrk-style): each worker writes a burst of frames before reading the
    burst's ordered responses, measuring server capacity rather than
    per-round-trip latency.  Overloaded responses inside a burst are
    retried individually.
    """
    rng = random.Random(seed)
    if zipf and zipf > 0:
        ranks = [1.0 / ((i + 1) ** zipf) for i in range(len(workload))]
        schedule = rng.choices(list(workload), weights=ranks, k=requests)
    else:
        schedule = [workload[rng.randrange(len(workload))] for _ in range(requests)]
    truth: dict[int, np.ndarray] = {}
    if verify:
        for item in workload:
            truth[id(item)] = _direct_starts(item)
    # Encode each pool item once (the workload repeats them): loadgen then
    # measures the server, not the client's per-send serialization.
    prepared = {
        id(item): prepare_color_request(
            item.weights, item.algorithm,
            timeout=request_timeout, request_id=item.label,
        )
        for item in workload
    }

    next_index = 0
    pipeline = max(1, int(pipeline))
    latencies: list[float] = []
    report = LoadgenReport(
        concurrency=concurrency, verify=verify,
        wire_requested=wire, zipf=float(zipf or 0.0), pipeline=pipeline,
    )

    def record_lost(count: int, label: str, exc: Exception) -> None:
        # The client's retry budget is spent — the request is lost.
        # Count it; a passing chaos run has zero of these.
        report.requests += count
        report.errors += count
        report.connection_failures += count
        if len(report.error_samples) < 5:
            report.error_samples.append(f"{label}: [connection] {exc}")

    def record(item: WorkItem, response: ColorResponse) -> None:
        report.requests += 1
        latencies.append(response.latency)
        if response.ok:
            report.ok += 1
            if response.worker:
                report.workers_seen[response.worker] = (
                    report.workers_seen.get(response.worker, 0) + 1
                )
            if response.cached:
                report.cached += 1
            else:
                report.computed += 1
            if verify and not np.array_equal(response.starts, truth[id(item)]):
                report.divergences += 1
        elif response.status == "timeout":
            report.timeouts += 1
        else:
            report.errors += 1
            if response.error and len(report.error_samples) < 5:
                report.error_samples.append(
                    f"{item.label}: [{response.status}] {response.error}"
                )

    async def send_one(
        client: AsyncServiceClient, item: WorkItem
    ) -> ColorResponse:
        """One request, retrying ``overloaded`` rejections with backoff."""
        response: Optional[ColorResponse] = None
        for attempt in range(max_retries + 1):
            response = await client.color_prepared(prepared[id(item)])
            if response.status != "overloaded":
                break
            report.overloaded_retries += 1
            await asyncio.sleep(0.002 * (attempt + 1))
        assert response is not None
        return response

    async def worker(worker_index: int) -> None:
        nonlocal next_index
        client = AsyncServiceClient(
            host,
            port,
            timeout=request_timeout or 120.0,
            retry=retry,
            retry_seed=seed * 1009 + worker_index,
            wire=wire,
        )
        try:
            while True:
                if next_index >= len(schedule):
                    return
                burst = schedule[next_index : next_index + pipeline]
                next_index += len(burst)
                if len(burst) > 1:
                    try:
                        responses = await client.color_pipelined(
                            [prepared[id(item)] for item in burst]
                        )
                    except ServiceConnectionError as exc:
                        record_lost(len(burst), burst[0].label, exc)
                        continue
                    report.wire = client.wire or report.wire
                    for item, response in zip(burst, responses):
                        if response.status == "overloaded":
                            report.overloaded_retries += 1
                            try:
                                response = await send_one(client, item)
                            except ServiceConnectionError as exc:
                                record_lost(1, item.label, exc)
                                continue
                        record(item, response)
                    continue
                item = burst[0]
                try:
                    response = await send_one(client, item)
                except ServiceConnectionError as exc:
                    record_lost(1, item.label, exc)
                    continue
                report.wire = client.wire or report.wire
                record(item, response)
        finally:
            report.connection_retries += client.retries_used
            await client.close()

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(i) for i in range(max(1, concurrency))))
    report.duration_seconds = time.perf_counter() - t0
    report.throughput_rps = (
        report.requests / report.duration_seconds if report.duration_seconds else 0.0
    )
    if latencies:
        ordered = sorted(latencies)
        report.latency_p50_ms = ordered[len(ordered) // 2] * 1000.0
        report.latency_p99_ms = ordered[
            min(len(ordered) - 1, int(len(ordered) * 0.99))
        ] * 1000.0
        report.latency_mean_ms = sum(ordered) / len(ordered) * 1000.0
    if fetch_metrics:
        client = AsyncServiceClient(host, port, retry=retry, retry_seed=seed, wire=wire)
        try:
            report.metrics = await client.metrics()
        finally:
            await client.close()
    plan = active_plan()
    if plan is not None:
        report.faults_fired = plan.fire_counts()
    return report


def run_loadgen(host: str, port: int, workload: Sequence[WorkItem], **kwargs) -> LoadgenReport:
    """Synchronous wrapper around :func:`run_loadgen_async`."""
    return asyncio.run(run_loadgen_async(host, port, workload, **kwargs))


def format_report(report: LoadgenReport) -> str:
    """Human-readable summary printed by ``stencil-ivc loadgen``."""
    lines = [
        f"requests   : {report.requests} over {report.concurrency} connections "
        f"in {report.duration_seconds:.2f}s",
        f"throughput : {report.throughput_rps:.1f} req/s",
        f"latency    : p50 {report.latency_p50_ms:.2f} ms, "
        f"p99 {report.latency_p99_ms:.2f} ms, mean {report.latency_mean_ms:.2f} ms",
        f"served     : {report.ok} ok ({report.cached} cached/coalesced, "
        f"{report.computed} computed; hit rate {report.cache_hit_rate * 100:.1f}%)",
        f"pressure   : {report.overloaded_retries} overload retries, "
        f"{report.timeouts} timeouts, {report.errors} errors",
        f"transport  : {report.connection_retries} connection retries, "
        f"{report.connection_failures} requests lost to dead connections",
        f"wire       : {report.wire} (requested {report.wire_requested}), "
        f"zipf s={report.zipf:g}, pipeline depth {report.pipeline}",
    ]
    if report.workers_seen:
        spread = ", ".join(
            f"{wid}:{count}" for wid, count in sorted(report.workers_seen.items())
        )
        lines.append(f"workers    : {spread}")
    if report.faults_fired:
        fired = ", ".join(
            f"{site} x{count}" for site, count in sorted(report.faults_fired.items())
        )
        lines.append(f"chaos      : injected faults fired — {fired}")
    if report.verify:
        verdict = "bit-identical" if report.divergences == 0 else "DIVERGED"
        lines.append(
            f"verify     : {report.divergences} divergences vs direct color_with "
            f"({verdict})"
        )
    for sample in report.error_samples:
        lines.append(f"  error: {sample}")
    return "\n".join(lines)


# --------------------------------------------------------- delta streaming
@dataclass
class RecolorStreamReport:
    """Aggregated outcome of one delta-stream (``recolor``) run.

    The workload model is the sliding STKDE window: a few long-lived
    sessions, each receiving a causally ordered stream of sparse weight
    deltas.  Deltas are therefore sent sequentially round-robin across
    sessions — concurrency is a property of the *color* workload, not of a
    delta stream, where each update depends on the last.
    """

    sessions: int = 0
    deltas: int = 0
    delta_cells: int = 0
    ok: int = 0
    incremental: int = 0
    fallbacks: int = 0
    unknown_sessions: int = 0
    reseeds: int = 0  # client mirror re-seed attempts (last-resort recovery)
    recoveries: int = 0  # server-side journal replays (recovered: true)
    errors: int = 0
    divergences: int = 0
    seed_seconds: float = 0.0
    duration_seconds: float = 0.0
    deltas_per_second: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    cells_changed_total: int = 0
    cells_recomputed_total: int = 0
    algorithm: str = "GLF"
    shape: tuple = ()
    wire: str = "ndjson"
    verify: bool = False
    error_samples: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "sessions": self.sessions,
            "deltas": self.deltas,
            "delta_cells": self.delta_cells,
            "ok": self.ok,
            "incremental": self.incremental,
            "fallbacks": self.fallbacks,
            "unknown_sessions": self.unknown_sessions,
            "reseeds": self.reseeds,
            "recoveries": self.recoveries,
            "errors": self.errors,
            "divergences": self.divergences,
            "seed_seconds": self.seed_seconds,
            "duration_seconds": self.duration_seconds,
            "deltas_per_second": self.deltas_per_second,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "cells_changed_total": self.cells_changed_total,
            "cells_recomputed_total": self.cells_recomputed_total,
            "algorithm": self.algorithm,
            "shape": list(self.shape),
            "wire": self.wire,
            "verify": self.verify,
            "error_samples": self.error_samples[:5],
        }


def run_recolor_stream(
    host: str,
    port: int,
    *,
    shape: tuple[int, ...] = (128, 128),
    algorithm: str = "GLF",
    sessions: int = 2,
    deltas: int = 32,
    delta_cells: int = 4,
    max_weight: int = 100,
    seed: int = 0,
    verify: bool = True,
    wire: str = "auto",
    retry: Optional[RetryPolicy] = None,
    fetch_metrics: bool = True,
) -> RecolorStreamReport:
    """Seed ``sessions`` grids, stream ``deltas`` sparse updates, verify.

    Each delta rewrites ``delta_cells`` uniformly random cells with fresh
    weights (absolute values — idempotent under retry).  With
    ``verify=True`` the client mirror of every session — weights *and*
    starts, as maintained from the server's changed-cells answers — is
    compared bit-for-bit against a direct in-process full recolor of the
    final weights: one check that covers seeding, every delta, splicing,
    and any mid-stream re-seed recoveries.
    """
    from repro.service.client import ServiceClient

    rng = np.random.default_rng(seed)
    report = RecolorStreamReport(
        sessions=sessions,
        deltas=deltas,
        delta_cells=delta_cells,
        algorithm=algorithm,
        shape=tuple(int(s) for s in shape),
        verify=verify,
    )
    n = int(np.prod(shape))
    latencies: list[float] = []
    client = ServiceClient(host, port, retry=retry, retry_seed=seed, wire=wire)
    client.connect()
    report.wire = client.wire
    try:
        names = [f"loadgen-s{i}" for i in range(sessions)]
        t0 = time.perf_counter()
        for name in names:
            weights = rng.integers(
                1, max_weight + 1, size=shape, dtype=np.int64
            )
            response = client.recolor_open(name, weights, algorithm)
            if not response.ok:
                report.errors += 1
                report.error_samples.append(
                    f"{name} seed: {response.status}: {response.error}"
                )
        report.seed_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        for step in range(deltas):
            name = names[step % sessions]
            idx = rng.choice(n, size=min(delta_cells, n), replace=False)
            vals = rng.integers(1, max_weight + 1, size=idx.size)
            response = client.recolor_delta(
                name, idx, vals, request_id=f"{name}/d{step}"
            )
            if response.ok:
                report.ok += 1
                latencies.append(response.latency)
                if response.recovered:
                    report.recoveries += 1
                stats = response.recolor
                if stats.get("mode") == "incremental":
                    report.incremental += 1
                else:
                    report.fallbacks += 1
                report.cells_changed_total += int(
                    stats.get("cells_changed", 0)
                )
                report.cells_recomputed_total += int(
                    stats.get("cells_recomputed", 0)
                )
            else:
                if response.unknown_session:
                    report.unknown_sessions += 1
                report.errors += 1
                report.error_samples.append(
                    f"{name} delta {step}: {response.status}: {response.error}"
                )
        report.duration_seconds = time.perf_counter() - t0
        report.reseeds = client.reseeds_used
        if report.duration_seconds > 0:
            report.deltas_per_second = report.ok / report.duration_seconds
        if latencies:
            arr = np.asarray(latencies) * 1000.0
            report.latency_p50_ms = float(np.percentile(arr, 50))
            report.latency_p99_ms = float(np.percentile(arr, 99))

        if verify:
            from repro.incremental.engine import full_recolor

            for name in names:
                state = client.recolor_state(name)
                if state is None:
                    report.divergences += 1
                    continue
                weights, starts = state
                if not np.array_equal(
                    starts, full_recolor(weights, algorithm)
                ):
                    report.divergences += 1
        if fetch_metrics:
            try:
                snap = client.metrics()
                counters = snap.get("counters", {})
                report.metrics = {
                    "sessions": snap.get("sessions", {}),
                    "recolor": {
                        k: v
                        for k, v in counters.items()
                        if isinstance(k, str)
                        and k.startswith(
                            ("recolor_", "session_", "journal_", "checkpoint")
                        )
                    },
                }
            except Exception:
                pass
    finally:
        client.close()
    return report


def format_recolor_report(report: RecolorStreamReport) -> str:
    """Human-readable summary printed by ``stencil-ivc loadgen --recolor``."""
    lines = [
        f"sessions   : {report.sessions} x {report.shape} {report.algorithm}, "
        f"seeded in {report.seed_seconds:.2f}s",
        f"deltas     : {report.deltas} x {report.delta_cells} cells in "
        f"{report.duration_seconds:.2f}s ({report.deltas_per_second:.1f}/s) "
        f"over {report.wire}",
        f"latency    : p50 {report.latency_p50_ms:.2f} ms, "
        f"p99 {report.latency_p99_ms:.2f} ms",
        f"served     : {report.ok} ok ({report.incremental} incremental, "
        f"{report.fallbacks} fallback), {report.cells_changed_total} cells "
        f"changed, {report.cells_recomputed_total} recomputed",
        f"recovery   : {report.unknown_sessions} unknown-session answers, "
        f"{report.recoveries} server journal replays, "
        f"{report.reseeds} client reseed attempts, {report.errors} errors",
    ]
    if report.verify:
        verdict = "bit-identical" if report.divergences == 0 else "DIVERGED"
        lines.append(
            f"verify     : {report.divergences} divergences vs direct full "
            f"recolor ({verdict})"
        )
    for sample in report.error_samples:
        lines.append(f"  error: {sample}")
    return "\n".join(lines)
