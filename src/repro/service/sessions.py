"""Server-held recolor sessions: the grids behind the ``recolor`` verb.

A delta-streaming client seeds a session once (full weights + algorithm),
then sends only sparse weight deltas; the server keeps the authoritative
``(weights, starts)`` pair and answers each delta with just the changed
cells.  :class:`SessionStore` is that server-global map, bounded two ways:

* **Capacity** — at most ``limit`` sessions; opening one beyond the limit
  evicts the least-recently-used session (an eviction, like an expiry,
  surfaces to the affected client as a typed ``unknown-session`` response,
  and the client re-seeds from its local mirror).
* **TTL** — a session untouched for ``ttl`` seconds is expired on next
  access.  Nothing scans in the background; expiry is checked lazily.

Lookups raise the typed :class:`UnknownSessionError` (wire code
``unknown-session``) rather than returning ``None``, so the server answers
with an ``invalid`` response on a live connection instead of guessing.

Both bounds default from :class:`repro.runtime.config.IncrementalConfig`
(``REPRO_INCR_SESSION_LIMIT`` / ``REPRO_INCR_SESSION_TTL``).  The store is
lock-protected: the service mutates it from its event loop but tests and
``/metrics`` snapshots may read from other threads.

With a ``recovery`` callable wired in (the durability layer's
``SessionDurability.recover``), :meth:`SessionStore.get_or_recover` turns
a would-be ``unknown-session`` answer into a journal replay: evictions and
expiries free memory but leave the journal, so a later delta transparently
rebuilds the session instead of bouncing the client.  The two eviction
causes are counted separately (``session_evictions_lru`` vs
``session_evictions_ttl`` in ``/metrics``) because their remedies differ:
LRU pressure means ``session_limit`` is too small for the working set,
TTL expiry means clients genuinely went away.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["RecolorSession", "SessionStore", "UnknownSessionError"]

#: Wire error code for a lookup that found nothing (see docs/service.md).
UNKNOWN_SESSION_CODE = "unknown-session"


class UnknownSessionError(KeyError):
    """A recolor delta named a session the server does not hold.

    ``reason`` distinguishes a session that never existed (or was evicted:
    ``"missing"``) from one that outlived its TTL (``"expired"``) — both
    map to the same ``unknown-session`` wire code, because the client's
    recovery is identical: re-seed and resend.
    """

    code = UNKNOWN_SESSION_CODE

    def __init__(self, session_id: str, reason: str = "missing") -> None:
        super().__init__(session_id)
        self.session_id = session_id
        self.reason = reason

    def __str__(self) -> str:
        return f"unknown recolor session {self.session_id!r} ({self.reason})"


@dataclass
class RecolorSession:
    """One live session: the authoritative grid state plus bookkeeping."""

    session_id: str
    algorithm: str
    weights: np.ndarray  # grid-shaped int64, post-delta
    starts: np.ndarray  # grid-shaped int64, coloring of `weights`
    maxcolor: int
    created: float
    touched: float
    deltas_applied: int = 0

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(int(s) for s in self.weights.shape)


class SessionStore:
    """Bounded, TTL'd, LRU map of :class:`RecolorSession` (see module doc)."""

    def __init__(
        self,
        limit: int = 64,
        ttl: float = 900.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        metrics=None,
        recovery: Optional[Callable[[str], object]] = None,
    ) -> None:
        if limit < 1:
            raise ValueError(f"session limit must be >= 1, got {limit}")
        if ttl <= 0:
            raise ValueError(f"session ttl must be positive, got {ttl!r}")
        self.limit = int(limit)
        self.ttl = float(ttl)
        self._clock = clock
        self._metrics = metrics
        self._recovery = recovery
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, RecolorSession] = OrderedDict()
        self._opened = 0
        self._evicted = 0
        self._expired = 0
        self._recovered = 0

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def open(
        self,
        session_id: str,
        algorithm: str,
        weights: np.ndarray,
        starts: np.ndarray,
        maxcolor: int,
    ) -> RecolorSession:
        """Create (or replace — re-seeding is idempotent) a session."""
        now = self._clock()
        session = RecolorSession(
            session_id=session_id,
            algorithm=algorithm,
            weights=weights,
            starts=starts,
            maxcolor=int(maxcolor),
            created=now,
            touched=now,
        )
        with self._lock:
            existed = self._sessions.pop(session_id, None)
            self._sessions[session_id] = session
            if existed is None:
                self._opened += 1
            while len(self._sessions) > self.limit:
                self._sessions.popitem(last=False)
                self._evicted += 1
                self._count("session_evictions_lru")
        return session

    def get(self, session_id: str) -> RecolorSession:
        """The live session, LRU-touched; :class:`UnknownSessionError` if not.

        Expiry is enforced here: a session past its TTL is dropped and
        reported as ``"expired"``.
        """
        now = self._clock()
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(session_id, "missing")
            if now - session.touched > self.ttl:
                del self._sessions[session_id]
                self._expired += 1
                self._count("session_evictions_ttl")
                raise UnknownSessionError(session_id, "expired")
            session.touched = now
            self._sessions.move_to_end(session_id)
            return session

    def get_or_recover(self, session_id: str) -> tuple[RecolorSession, bool]:
        """Like :meth:`get`, but replay durable state before giving up.

        Returns ``(session, recovered)``: ``recovered`` is ``True`` when
        the session was not held in memory (crashed worker, LRU eviction,
        TTL expiry, sibling failover) and was rebuilt by the ``recovery``
        callable — the durability layer's journal/checkpoint replay.  Only
        when recovery also comes up empty does the original typed
        :class:`UnknownSessionError` propagate, preserving the exact
        ``missing``/``expired`` answer the memory-only store would give.

        The replay runs outside the store lock (it does full numpy
        recolors); the rebuilt session is then re-``open``-ed, making it
        LRU-fresh and subject to the same bounds as any other.
        """
        try:
            return self.get(session_id), False
        except UnknownSessionError:
            if self._recovery is None:
                raise
            recovered = self._recovery(session_id)
            if recovered is None:
                raise
            session = self.open(
                session_id,
                recovered.algorithm,
                recovered.weights,
                recovered.starts,
                recovered.maxcolor,
            )
            session.deltas_applied = int(recovered.deltas_applied)
            with self._lock:
                self._recovered += 1
            self._count("session_recoveries")
            return session, True

    def commit(
        self,
        session: RecolorSession,
        weights: np.ndarray,
        starts: np.ndarray,
        maxcolor: int,
    ) -> None:
        """Publish a delta's outcome as the session's new authoritative state."""
        with self._lock:
            session.weights = weights
            session.starts = starts
            session.maxcolor = int(maxcolor)
            session.deltas_applied += 1
            session.touched = self._clock()

    def drop(self, session_id: str) -> bool:
        """Explicitly close a session; ``True`` if it existed."""
        with self._lock:
            return self._sessions.pop(session_id, None) is not None

    def stats(self) -> dict:
        """JSON-ready counters for ``/metrics``."""
        with self._lock:
            cells = sum(s.weights.size for s in self._sessions.values())
            return {
                "live": len(self._sessions),
                "limit": self.limit,
                "ttl_seconds": self.ttl,
                "opened": self._opened,
                "evicted": self._evicted,
                "expired": self._expired,
                "recovered": self._recovered,
                "held_cells": int(cells),
            }
