"""Command-line interface: ``stencil-ivc <subcommand>``.

``stencil-ivc`` follows the standard Unix conventions for options and
arguments: ``stencil-ivc --help`` summarizes the subcommands, and every
subcommand answers ``stencil-ivc <subcommand> --help`` with its own options.
Options are recognized by their leading double-dashes, e.g. ``--jobs``.

Subcommands
-----------
``solve``       Color a weight grid from a ``.npy``/``.txt`` file.
``algorithms``  List the registered coloring heuristics and capabilities.
``suite``       Run the Section VI experiment suite (2D or 3D) and print the
                runtime comparison and performance profile.
``optimal``     MILP-solve a suite's instances and compare heuristics to the
                optimum (Section VI.D).
``stkde``       Run the STKDE integration experiment (Section VII).
``npc``         Demonstrate the NAE-3SAT reduction (Section IV).
``bench-kernels``  Time the vectorized kernels against the reference loops
                and write ``BENCH_kernels.json`` (exits nonzero if any
                kernel coloring diverges from the reference).

The experiment subcommands (``suite``, ``optimal``, ``stkde``) accept
``--jobs N`` to fan their (instance × algorithm) grid across worker
processes via the batch engine; ``--jobs 0`` (the default) uses all cores.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _load_weights(path: str) -> np.ndarray:
    if path.endswith(".npy"):
        return np.load(path)
    return np.loadtxt(path, dtype=np.int64)


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.bounds import lower_bound
    from repro.core.problem import IVCInstance
    from repro.core.algorithms.registry import color_with

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    coloring = color_with(instance, args.algorithm).check()
    lb = lower_bound(instance)
    print(f"instance : {instance.name} {weights.shape}")
    print(f"algorithm: {args.algorithm}")
    print(f"maxcolor : {coloring.maxcolor}")
    print(f"bound    : {lb}  (ratio {coloring.maxcolor / max(lb, 1):.4f})")
    print(f"time     : {coloring.elapsed * 1e3:.2f} ms")
    if args.output:
        np.save(args.output, coloring.as_grid())
        print(f"starts saved to {args.output}")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.bounds import (
        clique_block_bound,
        lower_bound,
        max_weight_bound,
        maxpair_bound,
        odd_cycle_bound,
    )
    from repro.core.problem import IVCInstance

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    print(f"instance        : {instance.name} {weights.shape}")
    print(f"max weight      : {max_weight_bound(instance)}")
    print(f"maxpair         : {maxpair_bound(instance)}")
    print(f"clique blocks   : {clique_block_bound(instance)}")
    if args.odd_cycles:
        print(f"odd cycles (<={args.max_cycle_len}): "
              f"{odd_cycle_bound(instance, max_len=args.max_cycle_len)}")
    print(f"combined bound  : "
          f"{lower_bound(instance, use_odd_cycles=args.odd_cycles, odd_cycle_max_len=args.max_cycle_len)}")
    return 0


def cmd_exact(args: argparse.Namespace) -> int:
    from repro.core.bounds import lower_bound
    from repro.core.exact.milp import solve_milp
    from repro.core.problem import IVCInstance

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    result = solve_milp(instance, time_limit=args.time_limit)
    print(f"instance : {instance.name} {weights.shape}")
    print(f"status   : {result.status} (proven optimal: {result.proven_optimal})")
    if result.maxcolor is not None:
        print(f"maxcolor : {result.maxcolor}  (lower bound {lower_bound(instance)})")
    if result.coloring is not None and args.output:
        np.save(args.output, result.coloring.as_grid())
        print(f"starts saved to {args.output}")
    return 0 if result.status in ("optimal", "timeout") else 1


def cmd_algorithms(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.core.algorithms.registry import REGISTRY

    specs = REGISTRY.specs(include_extensions=not args.paper_only)
    rows = [
        (
            spec.name,
            "/".join(f"{d}D" for d in spec.supported_dims),
            "graph" if not spec.needs_geometry else "stencil",
            "extension" if spec.is_extension else "paper",
            spec.description,
        )
        for spec in specs
    ]
    print(format_table(("name", "dims", "needs", "origin", "description"), rows))
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.analysis.performance_profiles import profile_to_text
    from repro.analysis.reporting import banner, format_table
    from repro.analysis.stats import runtime_summary
    from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
    from repro.data.synthetic import standard_datasets

    from repro.experiments import run_suite

    if args.data_dir:
        from repro.data.loader import load_directory

        datasets = load_directory(args.data_dir)
    else:
        datasets = standard_datasets(scale=args.scale)
    config = SuiteConfig(dim_cap=args.dim_cap, max_cells=args.max_cells)
    if args.dim == 2:
        instances = build_suite_2d(datasets, config)
    else:
        instances = build_suite_3d(datasets, config)
    print(banner(f"{args.dim}D suite: {len(instances)} instances"))
    result = run_suite(
        instances,
        jobs=args.jobs,
        fast_paths=args.fast_path,
        log_path=args.run_log or None,
        on_error="record",
    )
    if result.errors:
        print(f"! {len(result.errors)} failed cells (excluded from the profile):")
        for rec in result.errors:
            print(f"!   {rec.algorithm} on {rec.instance} [{rec.status}]: {rec.error}")
        result = result.subset(result.ok_indices())
        print()
        if result.num_instances == 0:
            print("every instance had a failed cell — nothing left to profile")
            return 1
    print(profile_to_text(result.profile()))
    print()
    rows = [
        (name, s["total"], s["mean"] * 1e3, s["max"] * 1e3)
        for name, s in runtime_summary(result.times).items()
    ]
    print(format_table(("algorithm", "total s", "mean ms", "max ms"), rows))
    return 0


def cmd_optimal(args: argparse.Namespace) -> int:
    from repro.analysis.performance_profiles import profile_to_text
    from repro.analysis.reporting import banner
    from repro.analysis.stats import fraction_matching
    from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
    from repro.data.synthetic import standard_datasets
    from repro.experiments import run_suite, solve_suite_optimal

    datasets = standard_datasets(scale=args.scale)
    config = SuiteConfig(dim_cap=args.dim_cap, max_cells=args.max_cells)
    instances = build_suite_2d(datasets, config) if args.dim == 2 else build_suite_3d(datasets, config)
    result = run_suite(instances, jobs=args.jobs)
    solved, optima = solve_suite_optimal(result, time_limit=args.time_limit)
    print(banner(f"MILP solved {len(solved)}/{result.num_instances} instances"))
    sub = result.subset(solved)
    print(profile_to_text(sub.profile(best=[float(v) for v in optima])))
    lbs = [float(b) for b in sub.lower_bounds]
    print(f"\nmax-clique bound == optimum on "
          f"{fraction_matching([float(v) for v in optima], lbs) * 100:.1f}% of solved instances")
    return 0


def cmd_stkde(args: argparse.Namespace) -> int:
    from repro.analysis.regression import linear_fit
    from repro.analysis.reporting import banner, format_table
    from repro.core.algorithms.registry import ALGORITHMS
    from repro.core.coloring import Coloring
    from repro.data.synthetic import standard_datasets
    from repro.engine import run_grid
    from repro.stkde.runtime import simulate_schedule
    from repro.stkde.tasks import box_decomposition

    names = list(ALGORITHMS)
    for dataset in standard_datasets(scale=args.scale):
        h_s = dataset.axis_length(0) / args.bandwidth_divisor
        h_t = dataset.axis_length(2) / args.bandwidth_divisor
        problem = box_decomposition(dataset, h_s, h_t, voxel_dims=(16, 16, 16))
        instance = problem.instance
        # The coloring cells run through the batch engine (capturing start
        # vectors); the schedule simulation replays them in this process.
        records = run_grid(
            [instance], names, jobs=args.jobs, capture_starts=True,
            log_path=args.run_log or None,
        )
        rows = []
        colors, runtimes = [], []
        for record in records:
            if not record.ok:
                rows.append((record.algorithm, "-", "-", record.error))
                continue
            coloring = Coloring(
                instance,
                np.asarray(record.starts, dtype=np.int64),
                algorithm=record.algorithm,
                elapsed=record.elapsed,
            )
            trace = simulate_schedule(coloring, num_workers=args.workers)
            rows.append((record.algorithm, coloring.maxcolor, trace.makespan,
                         trace.parallel_efficiency))
            colors.append(float(coloring.maxcolor))
            runtimes.append(trace.makespan)
        print(banner(f"{dataset.name}: boxes {problem.box_dims}, P={args.workers}"))
        print(format_table(("algorithm", "maxcolor", "sim time", "efficiency"), rows))
        fit = linear_fit(colors, runtimes)
        print(f"colors-vs-runtime: slope={fit.slope:.4g} r={fit.rvalue:.3f}\n")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.algorithms.registry import color_with
    from repro.core.bounds import clique_block_bound
    from repro.data.loader import load_events_csv
    from repro.data.partition import (
        balanced_rectilinear_instance,
        uniform_rectilinear_instance,
    )

    dataset = load_events_csv(
        args.file, x_column=args.x_column, y_column=args.y_column, t_column=args.t_column
    )
    parts = (args.parts_x, args.parts_y)
    bw = (args.bandwidth_x, args.bandwidth_y)
    balanced = balanced_rectilinear_instance(
        dataset, axes=(0, 1), parts=parts, bandwidths=bw
    )
    uniform = uniform_rectilinear_instance(dataset, axes=(0, 1), parts=parts)
    print(f"dataset  : {dataset.name} ({dataset.num_points} events)")
    print(f"parts    : {parts}, bandwidths {bw}")
    for label, inst in (("uniform", uniform), ("balanced", balanced)):
        coloring = color_with(inst, args.algorithm).check()
        print(f"{label:>9}: clique bound {clique_block_bound(inst):>6}  "
              f"{args.algorithm} maxcolor {coloring.maxcolor:>6}")
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    from repro.core.algorithms.registry import color_with
    from repro.core.problem import IVCInstance
    from repro.stkde.gantt import gantt_svg
    from repro.stkde.runtime import simulate_schedule

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    coloring = color_with(instance, args.algorithm).check()
    trace = simulate_schedule(coloring, num_workers=args.workers)
    svg = gantt_svg(
        coloring,
        trace,
        title=f"{args.algorithm} on {weights.shape}, P={args.workers}",
    )
    with open(args.output, "w") as handle:
        handle.write(svg)
    print(f"maxcolor {coloring.maxcolor}, makespan {trace.makespan:.1f}, "
          f"critical path {trace.critical_path:.1f}")
    print(f"gantt chart saved to {args.output}")
    return 0


def _parse_sizes(text: str) -> list[int]:
    sizes = [int(part) for part in text.split(",") if part.strip()]
    if any(n <= 0 for n in sizes):
        raise argparse.ArgumentTypeError(f"grid sizes must be positive: {text!r}")
    return sizes


def cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.kernels.bench import (
        DEFAULT_ALGORITHMS,
        format_report,
        run_kernel_benchmark,
        summary_line,
        write_benchmark,
    )

    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms
        else list(DEFAULT_ALGORITHMS)
    )
    report = run_kernel_benchmark(
        sizes_2d=args.sizes,
        sizes_3d=args.sizes_3d,
        algorithms=algorithms,
        reps=args.reps,
        seed=args.seed,
    )
    print(format_report(report))
    if args.out:
        path = write_benchmark(report, args.out)
        print(f"report written to {path}")
    print(summary_line(report))
    if not report["all_identical"]:
        print("error: kernel coloring diverged from the reference", file=sys.stderr)
        return 1
    return 0


def cmd_npc(args: argparse.Namespace) -> int:
    from repro.npc.decision import decide_stencil_coloring
    from repro.npc.nae3sat import random_nae3sat, unsatisfiable_example
    from repro.npc.reduction import assignment_from_coloring, build_reduction

    if args.fano:
        formula = unsatisfiable_example()
    else:
        formula = random_nae3sat(args.vars, args.clauses, seed=args.seed)
    print(f"formula: {formula.num_vars} vars, clauses {formula.clauses}")
    sat = formula.is_satisfiable()
    print(f"NAE-satisfiable (brute force): {sat}")
    reduction = build_reduction(formula)
    shape = reduction.instance.geometry.shape
    print(f"reduced 3DS-IVC grid: {shape[0]}x{shape[1]}x{shape[2]}, K={reduction.k}")
    coloring = decide_stencil_coloring(reduction.instance, reduction.k, method="milp")
    print(f"colorable with {reduction.k} colors: {coloring is not None}")
    if (coloring is not None) != sat:
        print("MISMATCH — the reduction is broken")
        return 1
    if coloring is not None:
        assignment = assignment_from_coloring(reduction, coloring)
        print(f"extracted assignment: {assignment}")
        print(f"satisfies formula: {formula.is_satisfied(assignment)}")
    return 0


def _add_jobs_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the batch engine; 0 (default) uses all "
             "cores, 1 runs serially through the same code path",
    )


def _add_run_log_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--run-log", default="", metavar="PATH",
        help="append one JSONL RunRecord per (instance, algorithm) cell to "
             "PATH as the run progresses",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stencil-ivc",
        description="Interval vertex coloring of 9-pt and 27-pt stencils (IPPS 2022 reproduction)",
        epilog="Run 'stencil-ivc <subcommand> --help' for a brief summary of "
               "any subcommand's options.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "algorithms",
        help="list the registered coloring heuristics",
        description="List every registered coloring heuristic with its "
                    "capabilities: supported stencil dimensions, whether it "
                    "needs a stencil geometry or accepts arbitrary conflict "
                    "graphs, and paper-vs-extension provenance.",
        epilog="Example: stencil-ivc algorithms --paper-only",
    )
    p.add_argument("--paper-only", action="store_true",
                   help="show only the paper's seven Section V heuristics")
    p.set_defaults(func=cmd_algorithms)

    p = sub.add_parser("solve", help="color a weight grid from a file")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--algorithm", default="BDP")
    p.add_argument("--output", default="", help="save start colors to .npy")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("bounds", help="print the Section III lower bounds for a grid")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--odd-cycles", action="store_true",
                   help="include the (exponential) odd-cycle bound search")
    p.add_argument("--max-cycle-len", type=int, default=5)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("exact", help="solve a grid to optimality with the MILP")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--time-limit", type=float, default=60.0)
    p.add_argument("--output", default="", help="save optimal starts to .npy")
    p.set_defaults(func=cmd_exact)

    for name, func in (("suite", cmd_suite), ("optimal", cmd_optimal)):
        p = sub.add_parser(
            name,
            help=f"run the Section VI {name} experiment",
            description=f"Run the Section VI {name} experiment over the "
                        "synthetic dataset suite, fanning the (instance x "
                        "algorithm) grid across --jobs worker processes.",
            epilog=f"Example: stencil-ivc {name} --dim 2 --jobs 4",
        )
        p.add_argument("--dim", type=int, choices=(2, 3), default=2)
        p.add_argument("--scale", type=float, default=1.0, help="dataset size multiplier")
        p.add_argument("--dim-cap", type=int, default=16)
        p.add_argument("--max-cells", type=int, default=2048)
        _add_jobs_option(p)
        if name == "suite":
            p.add_argument("--data-dir", default="",
                           help="directory of x,y,t CSVs to use instead of the synthetic datasets")
            p.add_argument(
                "--fast-path", action=argparse.BooleanOptionalAction, default=None,
                help="force the vectorized stencil kernels on (--fast-path) or "
                     "off (--no-fast-path); the default follows the "
                     "REPRO_FAST_PATHS environment switch",
            )
            _add_run_log_option(p)
        if name == "optimal":
            p.add_argument("--time-limit", type=float, default=5.0)
        p.set_defaults(func=func)

    p = sub.add_parser(
        "partition",
        help="compare uniform vs load-balanced rectilinear decomposition on a CSV",
    )
    p.add_argument("file", help="CSV of events with x,y,t columns")
    p.add_argument("--parts-x", type=int, default=8)
    p.add_argument("--parts-y", type=int, default=8)
    p.add_argument("--bandwidth-x", type=float, required=True)
    p.add_argument("--bandwidth-y", type=float, required=True)
    p.add_argument("--algorithm", default="BDP")
    p.add_argument("--x-column", default="x")
    p.add_argument("--y-column", default="y")
    p.add_argument("--t-column", default="t")
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("gantt", help="render a simulated schedule as an SVG Gantt chart")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--algorithm", default="GLF")
    p.add_argument("--workers", type=int, default=6)
    p.add_argument("--output", default="schedule.svg")
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser(
        "stkde",
        help="STKDE integration experiment (Section VII)",
        description="Color each dataset's box-decomposition instance with "
                    "every paper heuristic (through the batch engine) and "
                    "simulate the resulting parallel STKDE schedule.",
        epilog="Example: stencil-ivc stkde --scale 0.5 --workers 6 --jobs 2",
    )
    p.add_argument("--workers", type=int, default=6,
                   help="simulated schedule worker count (not engine jobs)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--bandwidth-divisor", type=float, default=24.0)
    _add_jobs_option(p)
    _add_run_log_option(p)
    p.set_defaults(func=cmd_stkde)

    p = sub.add_parser(
        "bench-kernels",
        help="time the vectorized kernels against the reference loops",
        description="Benchmark the wavefront/chain kernels against the "
                    "reference Python loops on random square 2D and cubic 3D "
                    "grids, verifying that both produce identical colorings. "
                    "Exits nonzero on any divergence.",
        epilog="Example: stencil-ivc bench-kernels --sizes 128,512 "
               "--sizes-3d 32 --out BENCH_kernels.json",
    )
    p.add_argument("--sizes", type=_parse_sizes, default=[128, 256, 512],
                   metavar="N,N,...", help="square 2D grid sides (default 128,256,512)")
    p.add_argument("--sizes-3d", type=_parse_sizes, default=[16, 32, 40],
                   metavar="N,N,...", help="cubic 3D grid sides (default 16,32,40)")
    p.add_argument("--algorithms", default="",
                   help="comma-separated registry names (default GLL,GLF,BD,BDP)")
    p.add_argument("--reps", type=int, default=3,
                   help="timing repetitions per cell; the minimum is reported")
    p.add_argument("--seed", type=int, default=0, help="random weight seed")
    p.add_argument("--out", default="BENCH_kernels.json",
                   help="JSON report path ('' skips the file)")
    p.set_defaults(func=cmd_bench_kernels)

    p = sub.add_parser("npc", help="NAE-3SAT reduction demo (Section IV)")
    p.add_argument("--vars", type=int, default=4)
    p.add_argument("--clauses", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fano", action="store_true", help="use the unsatisfiable Fano formula")
    p.set_defaults(func=cmd_npc)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``stencil-ivc`` console script."""
    from repro.core.algorithms.registry import UnknownAlgorithmError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except UnknownAlgorithmError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
