"""Command-line interface: ``stencil-ivc <subcommand>``.

``stencil-ivc`` follows the standard Unix conventions for options and
arguments: ``stencil-ivc --help`` summarizes the subcommands, and every
subcommand answers ``stencil-ivc <subcommand> --help`` with its own options.
Options are recognized by their leading double-dashes, e.g. ``--jobs``.

Subcommands
-----------
``solve``       Color a weight grid from a ``.npy``/``.txt`` file.
``algorithms``  List the registered coloring heuristics and capabilities.
``suite``       Run the Section VI experiment suite (2D or 3D) and print the
                runtime comparison and performance profile.
``optimal``     MILP-solve a suite's instances and compare heuristics to the
                optimum (Section VI.D).
``stkde``       Run the STKDE integration experiment (Section VII).
``npc``         Demonstrate the NAE-3SAT reduction (Section IV).
``bench-kernels``  Time the vectorized kernels against the reference loops
                and write ``BENCH_kernels.json`` (exits nonzero if any
                kernel coloring diverges from the reference).
``tile``        Color a large grid out-of-core: halo-stitched tiles, a
                sequential seam pass, parallel tile interiors, bit-identical
                to the monolithic GLL kernel.
``serve``       Run the online coloring service: an asyncio TCP server with
                shape-batched dispatch, a content-addressed result cache,
                admission control, and a metrics endpoint.
``loadgen``     Drive a running service with a repeated-shape workload and
                report throughput/latency (optionally verifying every served
                coloring against a direct ``color_with`` call).  With
                ``--recolor N`` it switches to delta-stream mode: seed grids
                into recolor sessions and stream sparse weight deltas through
                the ``recolor`` verb.
``campaign``    Declarative experiment campaigns (``campaigns/*.toml``):
                ``plan`` compiles a spec and prints the deterministic
                (instance × algorithm) grid, ``run`` executes it through the
                crash-supervised engine into a resumable artifact dir,
                ``harvest`` folds the run logs + merged metrics into one
                versioned ``harvest.json``, and ``report`` renders the
                paper's figure tables (txt/SVG/Markdown/HTML/JSON) from it.
``recolor``     Offline incremental-recoloring demo: color a seeded grid,
                apply a sequence of sparse weight deltas through the
                dirty-region engine, and report cone sizes, fallbacks, and
                speedup versus recoloring from scratch.

The experiment subcommands (``suite``, ``optimal``, ``stkde``) accept
``--jobs N`` to fan their (instance × algorithm) grid across worker
processes via the batch engine; ``--jobs 0`` (the default) uses all cores.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

import numpy as np


def _load_weights(path: str) -> np.ndarray:
    if path.endswith(".npy"):
        return np.load(path)
    return np.loadtxt(path, dtype=np.int64)


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.bounds import lower_bound
    from repro.core.problem import IVCInstance
    from repro.core.algorithms.registry import color_with

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    coloring = color_with(instance, args.algorithm).check()
    lb = lower_bound(instance)
    print(f"instance : {instance.name} {weights.shape}")
    print(f"algorithm: {args.algorithm}")
    print(f"maxcolor : {coloring.maxcolor}")
    print(f"bound    : {lb}  (ratio {coloring.maxcolor / max(lb, 1):.4f})")
    print(f"time     : {coloring.elapsed * 1e3:.2f} ms")
    if args.output:
        np.save(args.output, coloring.as_grid())
        print(f"starts saved to {args.output}")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    from repro.core.bounds import (
        clique_block_bound,
        lower_bound,
        max_weight_bound,
        maxpair_bound,
        odd_cycle_bound,
    )
    from repro.core.problem import IVCInstance

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    print(f"instance        : {instance.name} {weights.shape}")
    print(f"max weight      : {max_weight_bound(instance)}")
    print(f"maxpair         : {maxpair_bound(instance)}")
    print(f"clique blocks   : {clique_block_bound(instance)}")
    if args.odd_cycles:
        print(f"odd cycles (<={args.max_cycle_len}): "
              f"{odd_cycle_bound(instance, max_len=args.max_cycle_len)}")
    print(f"combined bound  : "
          f"{lower_bound(instance, use_odd_cycles=args.odd_cycles, odd_cycle_max_len=args.max_cycle_len)}")
    return 0


def cmd_exact(args: argparse.Namespace) -> int:
    from repro.core.bounds import lower_bound
    from repro.core.exact.milp import solve_milp
    from repro.core.problem import IVCInstance

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    result = solve_milp(instance, time_limit=args.time_limit)
    print(f"instance : {instance.name} {weights.shape}")
    print(f"status   : {result.status} (proven optimal: {result.proven_optimal})")
    if result.maxcolor is not None:
        print(f"maxcolor : {result.maxcolor}  (lower bound {lower_bound(instance)})")
    if result.coloring is not None and args.output:
        np.save(args.output, result.coloring.as_grid())
        print(f"starts saved to {args.output}")
    return 0 if result.status in ("optimal", "timeout") else 1


def cmd_algorithms(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.core.algorithms.registry import REGISTRY
    from repro.runtime.context import get_context

    config = get_context().config

    def fast_column(spec) -> str:
        """Kernel binding availability + what the active config does with it.

        Sourced from the registry (``fast_fn``) and the context's
        :class:`~repro.runtime.config.RuntimeConfig` — no module probing.
        """
        if spec.fast_fn is None:
            return "-"
        if config.fast_paths == "off":
            return "kernel (off)"
        if config.fast_paths == "on":
            return "kernel (on)"
        return f"kernel (auto ≥{config.fast_paths_min_size})"

    specs = REGISTRY.specs(include_extensions=not args.paper_only)
    rows = [
        (
            spec.name,
            "/".join(f"{d}D" for d in spec.supported_dims),
            "graph" if not spec.needs_geometry else "stencil",
            "extension" if spec.is_extension else "paper",
            fast_column(spec),
            spec.description,
        )
        for spec in specs
    ]
    print(
        format_table(
            ("name", "dims", "needs", "origin", "fast path", "description"), rows
        )
    )
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from repro.analysis.performance_profiles import profile_to_text
    from repro.analysis.reporting import banner, format_table
    from repro.analysis.stats import runtime_summary
    from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
    from repro.data.synthetic import standard_datasets

    from repro.experiments import run_suite

    if args.data_dir:
        from repro.data.loader import load_directory

        datasets = load_directory(args.data_dir)
    else:
        datasets = standard_datasets(scale=args.scale)
    config = SuiteConfig(dim_cap=args.dim_cap, max_cells=args.max_cells)
    if args.dim == 2:
        instances = build_suite_2d(datasets, config)
    else:
        instances = build_suite_3d(datasets, config)
    if args.resume and not args.run_log:
        print("error: --resume needs --run-log (the log to resume from)",
              file=sys.stderr)
        return 2
    print(banner(f"{args.dim}D suite: {len(instances)} instances"))
    from pathlib import Path

    resume_from = (
        args.run_log if args.resume and Path(args.run_log).exists() else None
    )
    result = run_suite(
        instances,
        jobs=args.jobs,
        fast_paths=_resolve_runtime(args),
        log_path=args.run_log or None,
        on_error="record",
        max_cell_retries=args.retries,
        resume_from=resume_from,
    )
    if result.cells_resumed or result.pool_restarts or result.cells_retried:
        print(
            f"resilience : {result.cells_resumed} cells resumed from the run "
            f"log, {result.pool_restarts} pool restarts, "
            f"{result.cells_retried} cell retries"
        )
    if result.errors:
        print(f"! {len(result.errors)} failed cells (excluded from the profile):")
        for rec in result.errors:
            print(f"!   {rec.algorithm} on {rec.instance} [{rec.status}]: {rec.error}")
        result = result.subset(result.ok_indices())
        print()
        if result.num_instances == 0:
            print("every instance had a failed cell — nothing left to profile")
            return 1
    print(profile_to_text(result.profile()))
    print()
    rows = [
        (name, s["total"], s["mean"] * 1e3, s["max"] * 1e3)
        for name, s in runtime_summary(result.times).items()
    ]
    print(format_table(("algorithm", "total s", "mean ms", "max ms"), rows))
    return 0


def cmd_optimal(args: argparse.Namespace) -> int:
    from repro.analysis.performance_profiles import profile_to_text
    from repro.analysis.reporting import banner
    from repro.analysis.stats import fraction_matching
    from repro.data.instances import SuiteConfig, build_suite_2d, build_suite_3d
    from repro.data.synthetic import standard_datasets
    from repro.experiments import run_suite, solve_suite_optimal

    datasets = standard_datasets(scale=args.scale)
    config = SuiteConfig(dim_cap=args.dim_cap, max_cells=args.max_cells)
    instances = build_suite_2d(datasets, config) if args.dim == 2 else build_suite_3d(datasets, config)
    result = run_suite(instances, jobs=args.jobs)
    solved, optima = solve_suite_optimal(result, time_limit=args.time_limit)
    print(banner(f"MILP solved {len(solved)}/{result.num_instances} instances"))
    sub = result.subset(solved)
    print(profile_to_text(sub.profile(best=[float(v) for v in optima])))
    lbs = [float(b) for b in sub.lower_bounds]
    print(f"\nmax-clique bound == optimum on "
          f"{fraction_matching([float(v) for v in optima], lbs) * 100:.1f}% of solved instances")
    return 0


def cmd_stkde(args: argparse.Namespace) -> int:
    from repro.analysis.regression import linear_fit
    from repro.analysis.reporting import banner, format_table
    from repro.core.algorithms.registry import ALGORITHMS
    from repro.core.coloring import Coloring
    from repro.data.synthetic import standard_datasets
    from repro.engine import run_grid
    from repro.stkde.runtime import simulate_schedule
    from repro.stkde.tasks import box_decomposition

    names = list(ALGORITHMS)
    for dataset in standard_datasets(scale=args.scale):
        h_s = dataset.axis_length(0) / args.bandwidth_divisor
        h_t = dataset.axis_length(2) / args.bandwidth_divisor
        problem = box_decomposition(dataset, h_s, h_t, voxel_dims=(16, 16, 16))
        instance = problem.instance
        # The coloring cells run through the batch engine (capturing start
        # vectors); the schedule simulation replays them in this process.
        records = run_grid(
            [instance], names, jobs=args.jobs, capture_starts=True,
            log_path=args.run_log or None,
        )
        rows = []
        colors, runtimes = [], []
        for record in records:
            if not record.ok:
                rows.append((record.algorithm, "-", "-", record.error))
                continue
            coloring = Coloring(
                instance,
                np.asarray(record.starts, dtype=np.int64),
                algorithm=record.algorithm,
                elapsed=record.elapsed,
            )
            trace = simulate_schedule(coloring, num_workers=args.workers)
            rows.append((record.algorithm, coloring.maxcolor, trace.makespan,
                         trace.parallel_efficiency))
            colors.append(float(coloring.maxcolor))
            runtimes.append(trace.makespan)
        print(banner(f"{dataset.name}: boxes {problem.box_dims}, P={args.workers}"))
        print(format_table(("algorithm", "maxcolor", "sim time", "efficiency"), rows))
        fit = linear_fit(colors, runtimes)
        print(f"colors-vs-runtime: slope={fit.slope:.4g} r={fit.rvalue:.3f}\n")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    from repro.core.algorithms.registry import color_with
    from repro.core.bounds import clique_block_bound
    from repro.data.loader import load_events_csv
    from repro.data.partition import (
        balanced_rectilinear_instance,
        uniform_rectilinear_instance,
    )

    dataset = load_events_csv(
        args.file, x_column=args.x_column, y_column=args.y_column, t_column=args.t_column
    )
    parts = (args.parts_x, args.parts_y)
    bw = (args.bandwidth_x, args.bandwidth_y)
    balanced = balanced_rectilinear_instance(
        dataset, axes=(0, 1), parts=parts, bandwidths=bw
    )
    uniform = uniform_rectilinear_instance(dataset, axes=(0, 1), parts=parts)
    print(f"dataset  : {dataset.name} ({dataset.num_points} events)")
    print(f"parts    : {parts}, bandwidths {bw}")
    for label, inst in (("uniform", uniform), ("balanced", balanced)):
        coloring = color_with(inst, args.algorithm).check()
        print(f"{label:>9}: clique bound {clique_block_bound(inst):>6}  "
              f"{args.algorithm} maxcolor {coloring.maxcolor:>6}")
    return 0


def cmd_gantt(args: argparse.Namespace) -> int:
    from repro.core.algorithms.registry import color_with
    from repro.core.problem import IVCInstance
    from repro.stkde.gantt import gantt_svg
    from repro.stkde.runtime import simulate_schedule

    weights = _load_weights(args.file)
    if weights.ndim == 2:
        instance = IVCInstance.from_grid_2d(weights, name=args.file)
    elif weights.ndim == 3:
        instance = IVCInstance.from_grid_3d(weights, name=args.file)
    else:
        print(f"error: expected a 2D or 3D weight grid, got shape {weights.shape}")
        return 2
    coloring = color_with(instance, args.algorithm).check()
    trace = simulate_schedule(coloring, num_workers=args.workers)
    svg = gantt_svg(
        coloring,
        trace,
        title=f"{args.algorithm} on {weights.shape}, P={args.workers}",
    )
    with open(args.output, "w") as handle:
        handle.write(svg)
    print(f"maxcolor {coloring.maxcolor}, makespan {trace.makespan:.1f}, "
          f"critical path {trace.critical_path:.1f}")
    print(f"gantt chart saved to {args.output}")
    return 0


def _parse_sizes(text: str) -> list[int]:
    sizes = [int(part) for part in text.split(",") if part.strip()]
    if any(n <= 0 for n in sizes):
        raise argparse.ArgumentTypeError(f"grid sizes must be positive: {text!r}")
    return sizes


def cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.kernels.bench import (
        DEFAULT_ALGORITHMS,
        format_report,
        run_kernel_benchmark,
        summary_line,
        write_benchmark,
    )

    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms
        else list(DEFAULT_ALGORITHMS)
    )
    fast = _resolve_runtime(args)
    runtime = {None: "auto", True: "kernels", False: "reference"}[fast]
    report = run_kernel_benchmark(
        sizes_2d=args.sizes,
        sizes_3d=args.sizes_3d,
        algorithms=algorithms,
        reps=args.reps,
        seed=args.seed,
        runtime=runtime,
    )
    print(format_report(report))
    if args.out:
        path = write_benchmark(report, args.out)
        print(f"report written to {path}")
    print(summary_line(report))
    if not report["all_identical"]:
        print("error: kernel coloring diverged from the reference", file=sys.stderr)
        return 1
    return 0


def _parse_shape(text: str) -> tuple[int, ...]:
    """``"512x512"`` / ``"64x64x64"`` -> a 2- or 3-tuple of positive ints."""
    try:
        dims = tuple(int(part) for part in text.lower().split("x") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a NxN[xN] shape: {text!r}")
    if len(dims) not in (2, 3) or any(d < 1 for d in dims):
        raise argparse.ArgumentTypeError(
            f"shape must be 2 or 3 positive dims, got {text!r}")
    return dims


def cmd_tile(args: argparse.Namespace) -> int:
    import json
    import resource
    from time import perf_counter

    from repro.data import MemmapWeightSource, SyntheticWeightSource
    from repro.runtime.config import TilingConfig
    from repro.tiling import TilingError, color_tiled

    if bool(args.input) == bool(args.shape):
        print("error: give exactly one of --input FILE.npy or --shape NxN[xN]",
              file=sys.stderr)
        return 2
    if args.input:
        source = MemmapWeightSource(args.input)
    else:
        source = SyntheticWeightSource(
            args.shape, seed=args.seed, high=args.max_weight + 1)

    tiling = TilingConfig(
        mode="on",
        tile_shape=tuple(args.tile) if args.tile else None,
        jobs=args.jobs,
        memory_budget_mb=args.budget_mb,
    )
    # Assembling the full starts array costs 8 bytes/cell of resident
    # memory; skip it unless the caller asked for an artifact (--out) or a
    # comparison (--verify).  The digest still covers every tile.
    assemble = bool(args.verify) or bool(args.out)
    t0 = perf_counter()
    try:
        tiled = color_tiled(
            source,
            tiling=tiling,
            out=args.out or None,
            assemble=assemble,
            log_path=args.log or None,
            resume_from=(args.log or None) if args.resume else None,
        )
    except TilingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = perf_counter() - t0

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    summary = {
        "shape": list(source.shape),
        "tile_shape": list(tiled.plan.tile_shape),
        "tiles": len(tiled.plan.tiles),
        "maxcolor": tiled.maxcolor,
        "digest": tiled.digest,
        "seam_bands": tiled.seam_bands,
        "seam_cells": tiled.seam_cells,
        "seam_seconds": tiled.seam_elapsed,
        "tile_seconds": tiled.elapsed,
        "total_seconds": elapsed,
        "resumed_tiles": tiled.resumed_tiles,
        "pool_restarts": tiled.pool_restarts,
        "tiles_retried": tiled.tiles_retried,
        "peak_rss_mb": round(peak_rss_mb, 1),
    }
    if args.out:
        summary["out"] = args.out

    if args.verify:
        from repro.core.algorithms.registry import color_with
        from repro.core.problem import IVCInstance

        full_box = tuple((0, d) for d in source.shape)
        weights = source.region(full_box)
        if weights.ndim == 2:
            instance = IVCInstance.from_grid_2d(weights, name="tile-verify")
        else:
            instance = IVCInstance.from_grid_3d(weights, name="tile-verify")
        mono = color_with(instance, "GLL")
        identical = bool(
            np.array_equal(np.asarray(tiled.starts).ravel(),
                           np.asarray(mono.starts).ravel())
            and tiled.maxcolor == mono.maxcolor
        )
        summary["verify"] = {"identical": identical, "maxcolor": mono.maxcolor}

    print(json.dumps(summary, indent=2))
    if args.verify and not summary["verify"]["identical"]:
        print("error: tiled coloring diverged from the monolithic kernel",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.context import get_context
    from repro.service.frames import SUPPORTED_FRAME_VERSIONS
    from repro.service.server import ServerConfig, run_service

    protocols = ["ndjson"] + [f"frames/v{v}" for v in SUPPORTED_FRAME_VERSIONS]
    if args.version:
        print(f"stencil-ivc service wire protocols: {', '.join(protocols)}")
        return 0

    workers = args.workers
    if workers is None:
        workers = get_context().config.service_workers

    if workers > 1 and args.spill:
        print("error: --spill is single-process; use --spill-dir with --workers",
              file=sys.stderr)
        return 2

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        batch_window=args.batch_window_ms / 1000.0,
        queue_limit=args.queue_limit,
        cache_size=args.cache_size,
        spill_path=(args.spill or None) if workers <= 1 else None,
        compute_threads=args.compute_threads,
        default_timeout=args.default_timeout,
        warm_start=bool(args.spill) and args.warm_start,
    )

    if workers > 1:
        from repro.service.router import ColoringRouter, RouterConfig, run_router

        router_config = RouterConfig(
            host=args.host,
            port=args.port,
            workers=workers,
            spill_dir=args.spill_dir or None,
            worker_config=config,
        )

        def announce_router(router: ColoringRouter) -> None:
            print(
                f"coloring router on {router_config.host}:{router.port} "
                f"({workers} workers, wire: {', '.join(protocols)}, "
                f"shared L2: {router.pool.spill_dir})",
                flush=True,
            )

        try:
            asyncio.run(run_router(router_config, ready=announce_router))
        except KeyboardInterrupt:
            print("interrupted — shutting down")
        return 0

    if args.spill_dir:
        config = dataclasses.replace(
            config, spill_dir=args.spill_dir, warm_start=True
        )

    def announce(service) -> None:
        spill = config.spill_dir or config.spill_path
        print(
            f"coloring service on {config.host}:{service.port} "
            f"(max_batch={config.max_batch}, window={args.batch_window_ms}ms, "
            f"queue_limit={config.queue_limit}, cache={config.cache_size}, "
            f"wire: {', '.join(protocols)}"
            f"{', spill=' + str(spill) if spill else ''})",
            flush=True,
        )

    try:
        asyncio.run(run_service(config, ready=announce))
    except KeyboardInterrupt:
        print("interrupted — shutting down")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json
    import time as _time

    from repro.resilience import RetryPolicy, install_plan, parse_fault_spec
    from repro.service.client import ServiceClient, ServiceError
    from repro.service.loadgen import (
        build_workload,
        format_report,
        parse_shapes,
        run_loadgen,
    )

    try:
        shapes = parse_shapes(args.shapes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.faults:
        try:
            plan = parse_fault_spec(args.faults)
        except ValueError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        install_plan(plan)
        print(f"chaos: installed fault plan (seed {plan.seed}, "
              f"{len(plan.points)} fault points)")
    retry = (
        RetryPolicy(retries=args.connect_retries)
        if args.connect_retries > 0
        else None
    )

    spawned = None
    host, port = args.host, args.port
    if args.spawn:
        from repro.service.server import ServerConfig, ServerThread

        spawned = ServerThread(
            ServerConfig(
                host="127.0.0.1",
                port=0,
                cache_size=args.spawn_cache_size,
                spill_path=args.spawn_spill or None,
            )
        ).start()
        host, port = "127.0.0.1", spawned.port
        print(f"spawned in-process service on {host}:{port}")
    elif args.wait_ready > 0:
        deadline = _time.monotonic() + args.wait_ready
        while True:
            try:
                with ServiceClient(host, port, timeout=2.0) as probe:
                    probe.ping()
                break
            except (OSError, ServiceError):
                if _time.monotonic() >= deadline:
                    print(
                        f"error: no service at {host}:{port} after "
                        f"{args.wait_ready:.0f}s",
                        file=sys.stderr,
                    )
                    return 1
                _time.sleep(0.2)

    try:
        wire = args.wire
        if wire is None:
            from repro.runtime.context import get_context

            wire = get_context().config.service_wire
        if args.recolor > 0:
            from repro.service.loadgen import (
                format_recolor_report,
                run_recolor_stream,
            )

            stream = run_recolor_stream(
                host,
                port,
                shape=shapes[0],
                algorithm=args.algorithm,
                sessions=args.recolor_sessions,
                deltas=args.recolor,
                delta_cells=args.recolor_cells,
                max_weight=args.max_weight,
                seed=args.seed,
                verify=args.verify,
                wire=wire,
                retry=retry,
            )
            print(format_recolor_report(stream))
            if args.json:
                payload = json.dumps(
                    stream.to_json(), indent=2, sort_keys=True
                )
                if args.json == "-":
                    print(payload)
                else:
                    with open(args.json, "w", encoding="utf-8") as fh:
                        fh.write(payload + "\n")
            if args.shutdown_after:
                with ServiceClient(host, port) as client:
                    client.shutdown()
                print("sent shutdown to server")
            failed = stream.errors > 0 or stream.divergences > 0
            if stream.divergences > 0:
                print(
                    "error: streamed colorings diverged from cold recolor",
                    file=sys.stderr,
                )
            if stream.errors > 0:
                print(
                    f"error: {stream.errors} recolor requests failed",
                    file=sys.stderr,
                )
            return 1 if failed else 0
        workload = build_workload(
            shapes,
            distinct=args.distinct,
            algorithm=args.algorithm,
            max_weight=args.max_weight,
            seed=args.seed,
        )
        report = run_loadgen(
            host,
            port,
            workload,
            requests=args.requests,
            concurrency=args.concurrency,
            verify=args.verify,
            request_timeout=args.request_timeout or None,
            seed=args.seed,
            retry=retry,
            zipf=args.zipf,
            wire=wire,
            pipeline=args.pipeline,
        )
        print(format_report(report))
        if args.json:
            payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
            if args.json == "-":
                print(payload)
            else:
                with open(args.json, "w", encoding="utf-8") as fh:
                    fh.write(payload + "\n")
        if args.shutdown_after:
            with ServiceClient(host, port) as client:
                client.shutdown()
            print("sent shutdown to server")
    finally:
        if spawned is not None:
            spawned.stop()

    failed = report.divergences > 0 or report.errors > 0
    if args.p99_budget_ms > 0 and report.latency_p99_ms > args.p99_budget_ms:
        print(
            f"error: p99 {report.latency_p99_ms:.1f} ms exceeds the "
            f"{args.p99_budget_ms:.1f} ms budget",
            file=sys.stderr,
        )
        failed = True
    if report.divergences > 0:
        print("error: served colorings diverged from direct color_with",
              file=sys.stderr)
    if report.errors > 0:
        print(f"error: {report.errors} requests failed", file=sys.stderr)
    if report.connection_failures > 0:
        print(
            f"error: {report.connection_failures} requests lost to dead "
            "connections (retry budget exhausted)",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def cmd_recolor(args: argparse.Namespace) -> int:
    import json
    from time import perf_counter

    from repro import api
    from repro.incremental.engine import RecolorValidationError, full_recolor

    rng = np.random.default_rng(args.seed)
    weights = rng.integers(
        1, args.max_weight + 1, size=args.shape, dtype=np.int64
    )
    n = weights.size

    t0 = perf_counter()
    base = api.color(weights, algorithm=args.algorithm)
    seed_seconds = perf_counter() - t0

    cells = max(1, min(args.cells, n))
    incremental = fallbacks = 0
    cone_cells = changed_cells = 0
    recolor_seconds = full_seconds = 0.0
    fallback_reasons: dict[str, int] = {}
    result = base
    current = weights
    for _ in range(args.deltas):
        idx = rng.choice(n, size=cells, replace=False)
        new_weights = current.copy()
        new_weights.ravel()[idx] = rng.integers(
            1, args.max_weight + 1, size=cells, dtype=np.int64
        )
        t0 = perf_counter()
        try:
            result = api.recolor(
                new_weights,
                result,
                base_weights=current,
                algorithm=args.algorithm,
                validate=args.validate or None,
            )
        except RecolorValidationError as exc:
            print(f"error: incremental validation failed: {exc}",
                  file=sys.stderr)
            return 1
        recolor_seconds += perf_counter() - t0
        stats = result.provenance["recolor"]
        if result.mode == "incremental":
            incremental += 1
        else:
            fallbacks += 1
            reason = stats.get("fallback_reason") or "unknown"
            fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1
        cone_cells += stats["cells_recomputed"]
        changed_cells += stats["cells_changed"]
        current = new_weights

    t0 = perf_counter()
    cold = full_recolor(current, args.algorithm)
    full_seconds = perf_counter() - t0
    identical = bool(np.array_equal(result.starts, cold))

    per_delta = recolor_seconds / max(1, args.deltas)
    summary = {
        "shape": list(args.shape),
        "algorithm": args.algorithm,
        "deltas": args.deltas,
        "cells_per_delta": cells,
        "incremental": incremental,
        "fallbacks": fallbacks,
        "fallback_reasons": fallback_reasons,
        "cone_cells_total": int(cone_cells),
        "cells_changed_total": int(changed_cells),
        "maxcolor": result.maxcolor,
        "seed_seconds": round(seed_seconds, 6),
        "recolor_seconds_per_delta": round(per_delta, 6),
        "full_recolor_seconds": round(full_seconds, 6),
        "speedup_vs_full": round(full_seconds / per_delta, 2)
        if per_delta > 0
        else None,
        "matches_full_recolor": identical,
        "validated": bool(args.validate),
    }
    print(json.dumps(summary, indent=2))
    if not identical:
        print("error: final streamed coloring diverged from a cold recolor",
              file=sys.stderr)
        return 1
    return 0


def cmd_sessions(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.service.durability import SessionDurability

    root = Path(args.spill_dir) / "sessions"
    if args.action in ("inspect", "compact") and not args.session:
        print(f"error: 'sessions {args.action}' needs a SESSION id",
              file=sys.stderr)
        return 2
    if not root.is_dir():
        if args.action == "list":
            print(json.dumps([]) if args.json
                  else f"no durable sessions under {root}")
            return 0
        print(f"error: no session directory at {root}", file=sys.stderr)
        return 1
    store = SessionDurability(root)

    if args.action == "list":
        summaries = store.list_sessions()
        if args.json:
            print(json.dumps(summaries, indent=2))
            return 0
        if not summaries:
            print(f"no durable sessions under {root}")
            return 0
        for s in summaries:
            name = s.get("session") or f"<{s['stem'][:12]}…>"
            ck = (f"checkpoint seq {s['checkpoint_seq']}"
                  if s.get("checkpoint_verified")
                  else "checkpoint DAMAGED"
                  if "checkpoint_verified" in s
                  else "no checkpoint")
            parts = [
                f"{name}:",
                f"{s.get('journal_deltas', 0)} journal deltas "
                f"({s.get('journal_bytes', 0)} B",
                f"{s.get('journal_skipped', 0)} torn),",
                ck,
            ]
            if s.get("algorithm"):
                shape = "x".join(str(d) for d in s.get("shape") or [])
                parts.append(f"[{s['algorithm']} {shape}]")
            print(" ".join(parts))
        return 0

    if args.action == "inspect":
        detail = store.inspect(args.session)
        print(json.dumps(detail, indent=2))
        return 0 if detail["recoverable"] else 1

    summary = store.compact(args.session)
    if summary is None:
        print(f"error: session {args.session!r} is not recoverable "
              f"(no usable checkpoint or seed record)", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2))
    return 0 if summary["compacted"] else 1


def cmd_npc(args: argparse.Namespace) -> int:
    from repro.npc.decision import decide_stencil_coloring
    from repro.npc.nae3sat import random_nae3sat, unsatisfiable_example
    from repro.npc.reduction import assignment_from_coloring, build_reduction

    if args.fano:
        formula = unsatisfiable_example()
    else:
        formula = random_nae3sat(args.vars, args.clauses, seed=args.seed)
    print(f"formula: {formula.num_vars} vars, clauses {formula.clauses}")
    sat = formula.is_satisfiable()
    print(f"NAE-satisfiable (brute force): {sat}")
    reduction = build_reduction(formula)
    shape = reduction.instance.geometry.shape
    print(f"reduced 3DS-IVC grid: {shape[0]}x{shape[1]}x{shape[2]}, K={reduction.k}")
    coloring = decide_stencil_coloring(reduction.instance, reduction.k, method="milp")
    print(f"colorable with {reduction.k} colors: {coloring is not None}")
    if (coloring is not None) != sat:
        print("MISMATCH — the reduction is broken")
        return 1
    if coloring is not None:
        assignment = assignment_from_coloring(reduction, coloring)
        print(f"extracted assignment: {assignment}")
        print(f"satisfies formula: {formula.is_satisfied(assignment)}")
    return 0


def cmd_campaign_plan(args: argparse.Namespace) -> int:
    from repro.campaign import compile_plan, load_spec

    spec = load_spec(args.spec)
    plan = compile_plan(spec)
    print(f"campaign:          {spec.name}")
    if spec.description:
        print(f"description:       {spec.description}")
    print(f"scenario:          {spec.scenario.get('kind')}")
    print(f"spec fingerprint:  {spec.fingerprint()}")
    print(f"plan fingerprint:  {plan.fingerprint()}")
    print(f"variants:          {len(plan.variants)}")
    print(f"instances:         {len(plan.instances)}")
    print(f"algorithms:        {', '.join(plan.algorithms)}")
    print(f"cells:             {plan.num_cells}")
    print(f"reports:           {', '.join(r.title for r in spec.reports) or '(none)'}")
    if args.verbose:
        for inst in plan.instances:
            print(f"  {inst.name}  ({inst.num_vertices} vertices)")
    return 0


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import load_spec, run_campaign

    spec = load_spec(args.spec)
    context = None
    if args.faults:
        from repro.runtime.context import ExecutionContext, get_context

        context = ExecutionContext(
            get_context().config.with_overrides(fault_spec=args.faults)
        )
    result = run_campaign(
        spec,
        out_dir=args.out_dir or None,
        jobs=args.jobs if args.jobs else None,
        resume=args.resume,
        cell_timeout=args.cell_timeout,
        max_cell_retries=args.retries,
        root=args.out or None,
        context=context,
    )
    session = result.session
    print(f"campaign {spec.name}: {len(result.records)} cells -> {result.out_dir}")
    print(
        f"  executed {session['cells_executed']}, "
        f"resumed {session['cells_resumed']}, "
        f"retried {session['cells_retried']}, "
        f"pool restarts {session['pool_restarts']} "
        f"({session['elapsed']:.2f}s, jobs={session['jobs']})"
    )
    failures = sum(1 for r in result.records if not r.ok)
    if failures:
        print(f"  {failures} cell(s) failed — rerun with --resume to retry them")
        return 1
    return 0


def cmd_campaign_harvest(args: argparse.Namespace) -> int:
    from repro.campaign import harvest_campaign, harvest_digest

    harvest = harvest_campaign(args.dir)
    print(f"harvested {harvest['campaign']}: {len(harvest['records'])} records, "
          f"{harvest['sessions']} session(s), {harvest['failures']} failure(s)")
    print(f"  plan fingerprint: {harvest['plan_fingerprint']}")
    print(f"  harvest digest:   {harvest_digest(harvest)}")
    print(f"  -> {args.dir}/harvest.json")
    return 1 if harvest["failures"] else 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.campaign import load_harvest, load_spec, render_reports, write_reports

    harvest = load_harvest(args.dir)
    reports = None
    if args.spec:
        reports = load_spec(args.spec).reports
    docs = render_reports(harvest, reports)
    if not docs:
        print("no [[report]] entries to render (pass --spec with some)")
        return 1
    formats = (
        ("txt", "svg", "md", "html", "json")
        if args.format == "all"
        else tuple(f.strip() for f in args.format.split(","))
    )
    out_dir = Path(args.report_dir) if args.report_dir else Path(args.dir) / "reports"
    written = write_reports(docs, out_dir, formats, campaign=harvest["campaign"])
    for path in written:
        print(f"wrote {path}")
    return 0


def _add_runtime_option(p: argparse.ArgumentParser) -> None:
    """``--runtime`` plus the legacy ``--fast-path`` flags as hidden aliases."""
    p.add_argument(
        "--runtime", choices=("auto", "kernels", "reference"), default=None,
        help="which implementation colors the cells: 'kernels' forces the "
             "vectorized fast paths, 'reference' the Python loops, 'auto' "
             "(default) picks per instance size",
    )
    p.add_argument(
        "--fast-path", dest="fast_path",
        action=argparse.BooleanOptionalAction, default=None,
        help=argparse.SUPPRESS,  # legacy alias for --runtime kernels/reference
    )


def _resolve_runtime(args: argparse.Namespace):
    """The per-call ``fast`` preference from ``--runtime`` (or the legacy
    hidden ``--fast-path`` aliases, which lose to an explicit ``--runtime``)."""
    runtime = getattr(args, "runtime", None)
    if runtime is not None:
        return {"auto": None, "kernels": True, "reference": False}[runtime]
    return getattr(args, "fast_path", None)


def _add_jobs_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the batch engine; 0 (default) uses all "
             "cores, 1 runs serially through the same code path",
    )


def _add_run_log_option(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--run-log", default="", metavar="PATH",
        help="append one JSONL RunRecord per (instance, algorithm) cell to "
             "PATH as the run progresses",
    )


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="stencil-ivc",
        description="Interval vertex coloring of 9-pt and 27-pt stencils (IPPS 2022 reproduction)",
        epilog="Run 'stencil-ivc <subcommand> --help' for a brief summary of "
               "any subcommand's options.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "algorithms",
        help="list the registered coloring heuristics",
        description="List every registered coloring heuristic with its "
                    "capabilities: supported stencil dimensions, whether it "
                    "needs a stencil geometry or accepts arbitrary conflict "
                    "graphs, and paper-vs-extension provenance.",
        epilog="Example: stencil-ivc algorithms --paper-only",
    )
    p.add_argument("--paper-only", action="store_true",
                   help="show only the paper's seven Section V heuristics")
    p.set_defaults(func=cmd_algorithms)

    p = sub.add_parser("solve", help="color a weight grid from a file")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--algorithm", default="BDP")
    p.add_argument("--output", default="", help="save start colors to .npy")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("bounds", help="print the Section III lower bounds for a grid")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--odd-cycles", action="store_true",
                   help="include the (exponential) odd-cycle bound search")
    p.add_argument("--max-cycle-len", type=int, default=5)
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("exact", help="solve a grid to optimality with the MILP")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--time-limit", type=float, default=60.0)
    p.add_argument("--output", default="", help="save optimal starts to .npy")
    p.set_defaults(func=cmd_exact)

    for name, func in (("suite", cmd_suite), ("optimal", cmd_optimal)):
        p = sub.add_parser(
            name,
            help=f"run the Section VI {name} experiment",
            description=f"Run the Section VI {name} experiment over the "
                        "synthetic dataset suite, fanning the (instance x "
                        "algorithm) grid across --jobs worker processes.",
            epilog=f"Example: stencil-ivc {name} --dim 2 --jobs 4",
        )
        p.add_argument("--dim", type=int, choices=(2, 3), default=2)
        p.add_argument("--scale", type=float, default=1.0, help="dataset size multiplier")
        p.add_argument("--dim-cap", type=int, default=16)
        p.add_argument("--max-cells", type=int, default=2048)
        _add_jobs_option(p)
        if name == "suite":
            p.add_argument("--data-dir", default="",
                           help="directory of x,y,t CSVs to use instead of the synthetic datasets")
            _add_runtime_option(p)
            _add_run_log_option(p)
            p.add_argument(
                "--resume", action="store_true",
                help="resume from an existing --run-log: completed cells are "
                     "adopted, only missing/error cells re-run",
            )
            p.add_argument(
                "--retries", type=int, default=3, metavar="N",
                help="extra attempts per cell after a worker crash (the pool "
                     "is rebuilt and only lost cells resubmitted; default 3)",
            )
        if name == "optimal":
            p.add_argument("--time-limit", type=float, default=5.0)
        p.set_defaults(func=func)

    p = sub.add_parser(
        "partition",
        help="compare uniform vs load-balanced rectilinear decomposition on a CSV",
    )
    p.add_argument("file", help="CSV of events with x,y,t columns")
    p.add_argument("--parts-x", type=int, default=8)
    p.add_argument("--parts-y", type=int, default=8)
    p.add_argument("--bandwidth-x", type=float, required=True)
    p.add_argument("--bandwidth-y", type=float, required=True)
    p.add_argument("--algorithm", default="BDP")
    p.add_argument("--x-column", default="x")
    p.add_argument("--y-column", default="y")
    p.add_argument("--t-column", default="t")
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("gantt", help="render a simulated schedule as an SVG Gantt chart")
    p.add_argument("file", help=".npy or whitespace text file of weights")
    p.add_argument("--algorithm", default="GLF")
    p.add_argument("--workers", type=int, default=6)
    p.add_argument("--output", default="schedule.svg")
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser(
        "stkde",
        help="STKDE integration experiment (Section VII)",
        description="Color each dataset's box-decomposition instance with "
                    "every paper heuristic (through the batch engine) and "
                    "simulate the resulting parallel STKDE schedule.",
        epilog="Example: stencil-ivc stkde --scale 0.5 --workers 6 --jobs 2",
    )
    p.add_argument("--workers", type=int, default=6,
                   help="simulated schedule worker count (not engine jobs)")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--bandwidth-divisor", type=float, default=24.0)
    _add_jobs_option(p)
    _add_run_log_option(p)
    p.set_defaults(func=cmd_stkde)

    p = sub.add_parser(
        "bench-kernels",
        help="time the vectorized kernels against the reference loops",
        description="Benchmark the wavefront/chain kernels against the "
                    "reference Python loops on random square 2D and cubic 3D "
                    "grids, verifying that both produce identical colorings. "
                    "Exits nonzero on any divergence.",
        epilog="Example: stencil-ivc bench-kernels --sizes 128,512 "
               "--sizes-3d 32 --out BENCH_kernels.json",
    )
    p.add_argument("--sizes", type=_parse_sizes, default=[128, 256, 512],
                   metavar="N,N,...", help="square 2D grid sides (default 128,256,512)")
    p.add_argument("--sizes-3d", type=_parse_sizes, default=[16, 32, 40],
                   metavar="N,N,...", help="cubic 3D grid sides (default 16,32,40)")
    p.add_argument("--algorithms", default="",
                   help="comma-separated registry names (default GLL,GLF,BD,BDP)")
    p.add_argument("--reps", type=int, default=3,
                   help="timing repetitions per cell; the minimum is reported")
    p.add_argument("--seed", type=int, default=0, help="random weight seed")
    p.add_argument("--out", default="BENCH_kernels.json",
                   help="JSON report path ('' skips the file)")
    _add_runtime_option(p)
    p.set_defaults(func=cmd_bench_kernels)

    p = sub.add_parser(
        "tile",
        help="color a large grid out-of-core through the tiler",
        description="Partition a weight grid into halo-stitched tiles, color "
                    "the tile interiors in parallel after a sequential seam "
                    "pass, and print a JSON summary (maxcolor, combined "
                    "digest, per-phase timings, peak RSS).  The result is "
                    "bit-identical to the monolithic GLL kernel.",
        epilog="Example: stencil-ivc tile --shape 4096x4096 --tile 1024x1024 "
               "--jobs 4 --log tiles.jsonl",
    )
    p.add_argument("--input", default="",
                   help=".npy weight grid, read through a memory map")
    p.add_argument("--shape", type=_parse_shape, default=None, metavar="NxN[xN]",
                   help="synthetic grid dimensions (instead of --input)")
    p.add_argument("--seed", type=int, default=0,
                   help="synthetic weight seed (with --shape)")
    p.add_argument("--max-weight", type=int, default=100,
                   help="synthetic weight upper bound (with --shape)")
    p.add_argument("--tile", type=_parse_shape, default=None, metavar="NxN[xN]",
                   help="per-axis tile dimensions (default: derived from the "
                        "tiling config / --budget-mb)")
    p.add_argument("--budget-mb", type=int, default=0, metavar="MB",
                   help="soft working-set cap used to derive the tile shape "
                        "when --tile is not given (0 = unbudgeted)")
    p.add_argument("--out", default="",
                   help="write the assembled starts grid to this .npy file "
                        "(streamed per tile through a memory map)")
    p.add_argument("--log", default="", metavar="PATH",
                   help="append one JSONL record per finished tile to PATH")
    p.add_argument("--resume", action="store_true",
                   help="adopt completed tiles from an existing --log and "
                        "color only the missing ones")
    p.add_argument("--verify", action="store_true",
                   help="also run the monolithic GLL kernel and fail unless "
                        "the colorings are identical (loads the full grid)")
    _add_jobs_option(p)
    p.set_defaults(func=cmd_tile)

    p = sub.add_parser(
        "serve",
        help="run the online coloring service",
        description="Serve coloring requests over line-delimited JSON TCP: "
                    "requests are micro-batched by (shape, algorithm) so one "
                    "geometry/substrate build serves a whole batch, results "
                    "are cached by content hash, and the queue is bounded "
                    "(requests beyond --queue-limit get an immediate "
                    "'overloaded' response).",
        epilog="Example: stencil-ivc serve --port 8765 --cache-size 1024 "
               "--spill /tmp/colorings.jsonl",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 picks an ephemeral port; default 8765)")
    p.add_argument("--max-batch", type=int, default=32,
                   help="largest micro-batch dispatched as one unit")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="how long the batcher lingers to fill a batch")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="admission cap; beyond it requests are rejected")
    p.add_argument("--cache-size", type=int, default=512,
                   help="result-cache entries (0 disables caching)")
    p.add_argument("--spill", default="",
                   help="JSONL file evicted cache entries spill to")
    p.add_argument("--warm-start", action="store_true",
                   help="index an existing --spill file on startup")
    p.add_argument("--compute-threads", type=int, default=1,
                   help="worker threads executing batches")
    p.add_argument("--default-timeout", type=float, default=30.0,
                   help="per-request deadline cap in seconds")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="worker processes; >= 2 runs a content-key router in "
                        "front of N supervised server processes sharing one "
                        "L2 spill directory (default REPRO_SERVICE_WORKERS "
                        "or 1)")
    p.add_argument("--spill-dir", default="",
                   help="shared L2 spill directory (one JSON file per cached "
                        "result); with --workers it persists across worker "
                        "restarts, without it each pool run gets a temp dir")
    p.add_argument("--version", action="store_true",
                   help="print the supported wire protocol versions and exit")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive the coloring service with a repeated-shape workload",
        description="Generate a pool of --distinct weight grids over "
                    "--shapes, fire --requests sampled requests over "
                    "--concurrency connections, and report throughput, "
                    "latency percentiles, and cache hit rate.  --verify "
                    "checks every served coloring bit-for-bit against a "
                    "direct color_with call; exits nonzero on divergence, "
                    "failed requests, or a blown --p99-budget-ms.",
        epilog="Example: stencil-ivc loadgen --port 8765 --requests 500 "
               "--concurrency 8 --verify",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765)
    p.add_argument("--spawn", action="store_true",
                   help="spawn an in-process server instead of connecting")
    p.add_argument("--wait-ready", type=float, default=0.0, metavar="SECONDS",
                   help="poll the server with pings for up to SECONDS before "
                        "starting (for freshly launched servers)")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--concurrency", type=int, default=8)
    p.add_argument("--shapes", default="32x32,48x48",
                   help="comma-separated grid shapes, e.g. 32x32,16x16x8")
    p.add_argument("--distinct", type=int, default=8,
                   help="distinct weight grids in the workload pool")
    p.add_argument("--algorithm", default="BDP")
    p.add_argument("--max-weight", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="compare every served coloring against direct color_with")
    p.add_argument("--request-timeout", type=float, default=0.0,
                   help="per-request deadline in seconds (0 = server default)")
    p.add_argument("--p99-budget-ms", type=float, default=0.0,
                   help="fail (exit 1) if p99 latency exceeds this budget")
    p.add_argument("--shutdown-after", action="store_true",
                   help="send the server a shutdown op when done")
    p.add_argument("--faults", default="", metavar="SPEC",
                   help="install a seeded fault plan for chaos runs, e.g. "
                        "'seed=11;client.send:drop=0.05;service.compute:error=0.02'")
    p.add_argument("--connect-retries", type=int, default=0, metavar="N",
                   help="retry budget per request for dropped connections "
                        "(0 = brittle connections, the default)")
    p.add_argument("--spawn-cache-size", type=int, default=512,
                   help="result-cache entries for the --spawn server")
    p.add_argument("--spawn-spill", default="",
                   help="JSONL spill file for the --spawn server's cache")
    p.add_argument("--zipf", type=float, default=0.0, metavar="S",
                   help="zipf exponent skewing the request schedule toward "
                        "popular pool items (0 = uniform, the default)")
    p.add_argument("--wire", default=None,
                   choices=("auto", "binary", "ndjson"),
                   help="wire format preference (default REPRO_SERVICE_WIRE "
                        "or auto-negotiate)")
    p.add_argument("--pipeline", type=int, default=1, metavar="K",
                   help="requests in flight per connection before the first "
                        "read (wrk-style capacity measurement; default 1)")
    p.add_argument("--recolor", type=int, default=0, metavar="DELTAS",
                   help="delta-stream mode: seed --recolor-sessions grids, "
                        "stream DELTAS sparse weight deltas through the "
                        "recolor verb, verify the final colorings (replaces "
                        "the color workload)")
    p.add_argument("--recolor-sessions", type=int, default=2, metavar="N",
                   help="live sessions for --recolor mode (default 2)")
    p.add_argument("--recolor-cells", type=int, default=4, metavar="K",
                   help="cells rewritten per delta in --recolor mode")
    p.add_argument("--json", default="", metavar="PATH",
                   help="also write the report as JSON to PATH ('-' = stdout)")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "recolor",
        help="offline incremental-recoloring demo over a delta stream",
        epilog="Example: stencil-ivc recolor --shape 512x512 --algorithm GLF "
               "--deltas 16 --cells 8 --validate",
    )
    p.add_argument("--shape", type=_parse_shape, default=(256, 256),
                   metavar="NxN[xN]", help="synthetic grid shape")
    p.add_argument("--algorithm", default="GLF",
                   help="coloring heuristic (default GLF; GLL/GZO also have "
                        "incremental support, others fall back)")
    p.add_argument("--deltas", type=int, default=16,
                   help="sparse weight deltas to stream (default 16)")
    p.add_argument("--cells", type=int, default=4,
                   help="cells rewritten per delta (default 4)")
    p.add_argument("--seed", type=int, default=0,
                   help="synthetic weight/delta seed")
    p.add_argument("--max-weight", type=int, default=100,
                   help="weights drawn uniformly from [1, MAX_WEIGHT]")
    p.add_argument("--validate", action="store_true",
                   help="diff every incremental result against a full "
                        "recolor (slow; exits 1 on any mismatch)")
    p.set_defaults(func=cmd_recolor)

    p = sub.add_parser(
        "sessions",
        help="inspect or compact durable recolor-session journals offline",
        epilog="Examples: stencil-ivc sessions list --spill-dir /tmp/l2 | "
               "stencil-ivc sessions inspect my-session --spill-dir /tmp/l2 "
               "| stencil-ivc sessions compact my-session --spill-dir /tmp/l2",
    )
    p.add_argument("action", choices=("list", "inspect", "compact"),
                   help="list every durable session, inspect one session's "
                        "journal/checkpoint, or compact its journal into a "
                        "verified checkpoint")
    p.add_argument("session", nargs="?", default="",
                   help="session id (required for inspect/compact)")
    p.add_argument("--spill-dir", required=True,
                   help="the serve --spill-dir whose sessions/ subdirectory "
                        "holds the journals")
    p.add_argument("--json", action="store_true",
                   help="machine-readable list output")
    p.set_defaults(func=cmd_sessions)

    p = sub.add_parser(
        "campaign",
        help="declarative experiment campaigns: plan, run, harvest, report",
        description="Declarative experiment campaigns (campaigns/*.toml): "
                    "compile a TOML spec into a deterministic "
                    "(instance × algorithm) plan, execute it through the "
                    "crash-supervised engine into a resumable artifact dir, "
                    "fold the run logs into one versioned harvest.json, and "
                    "render the paper's figure tables from it.",
        epilog="Example: stencil-ivc campaign run campaigns/smoke.toml && "
               "stencil-ivc campaign harvest out/campaigns/smoke && "
               "stencil-ivc campaign report out/campaigns/smoke",
    )
    campaign_sub = p.add_subparsers(dest="verb", required=True)

    cp = campaign_sub.add_parser(
        "plan", help="compile a spec and print the plan (nothing runs)"
    )
    cp.add_argument("spec", help="campaign spec (TOML)")
    cp.add_argument("--verbose", action="store_true", help="list every instance")
    cp.set_defaults(func=cmd_campaign_plan)

    cp = campaign_sub.add_parser(
        "run", help="execute a campaign spec into an artifact dir"
    )
    cp.add_argument("spec", help="campaign spec (TOML)")
    cp.add_argument(
        "--out", default="", metavar="DIR",
        help="artifact root (default: $REPRO_OUT_DIR or ./out); the campaign "
             "lands in <root>/campaigns/<name>",
    )
    cp.add_argument(
        "--out-dir", default="", metavar="DIR",
        help="exact artifact directory (overrides --out)",
    )
    cp.add_argument(
        "--resume", action="store_true",
        help="adopt completed cells from the dir's existing runs.jsonl; "
             "only missing/errored cells execute",
    )
    _add_jobs_option(cp)
    cp.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock limit in seconds (beats run.cell_timeout)",
    )
    cp.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts per cell after a worker crash (beats the "
             "runtime config)",
    )
    cp.add_argument(
        "--faults", default="", metavar="SPEC",
        help="fault-injection spec for this run, e.g. "
             "'seed=11;engine.cell:crash=0.05' (beats REPRO_FAULTS)",
    )
    cp.set_defaults(func=cmd_campaign_run)

    cp = campaign_sub.add_parser(
        "harvest", help="fold an artifact dir's run logs into harvest.json"
    )
    cp.add_argument("dir", help="campaign artifact directory")
    cp.set_defaults(func=cmd_campaign_harvest)

    cp = campaign_sub.add_parser(
        "report", help="render figure tables from a harvested artifact"
    )
    cp.add_argument("dir", help="campaign artifact directory (harvested)")
    cp.add_argument(
        "--spec", default="", metavar="SPEC",
        help="render this spec's [[report]] entries instead of the ones "
             "embedded in the harvest (the spec must share the harvest's "
             "plan)",
    )
    cp.add_argument(
        "--format", default="all", metavar="LIST",
        help="comma-separated subset of txt,svg,md,html,json (default: all)",
    )
    cp.add_argument(
        "--report-dir", default="", metavar="DIR",
        help="where to write rendered reports (default: <dir>/reports)",
    )
    cp.set_defaults(func=cmd_campaign_report)

    p = sub.add_parser("npc", help="NAE-3SAT reduction demo (Section IV)")
    p.add_argument("--vars", type=int, default=4)
    p.add_argument("--clauses", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fano", action="store_true", help="use the unsatisfiable Fano formula")
    p.set_defaults(func=cmd_npc)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``stencil-ivc`` console script.

    Constructs a single :class:`~repro.runtime.context.ExecutionContext`
    (environment-derived config, fault plan installed) and runs the chosen
    subcommand under it, so all four call paths a command may touch —
    direct dispatch, kernels, engine workers, the service — share one
    runtime configuration per invocation.
    """
    from repro.campaign.errors import CampaignError
    from repro.core.algorithms.registry import UnknownAlgorithmError
    from repro.runtime.context import ExecutionContext, use_context

    args = build_parser().parse_args(argv)
    context = ExecutionContext.from_env()
    context.install_faults()
    try:
        with use_context(context):
            return args.func(args)
    except (UnknownAlgorithmError, CampaignError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
