"""Shared experiment driver: run algorithm sets over instance suites.

The CLI, the benchmark harness, and library callers all funnel through
:func:`run_suite`, so the numbers printed for Figures 5–9 always come from
the same code path.  Under the hood every run goes through the batch engine
(:func:`repro.engine.run_grid`): ``jobs=1`` executes the identical cell code
serially in-process, ``jobs>1`` fans the (instance × algorithm) grid across
a process pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis.performance_profiles import PerformanceProfile, performance_profile
from repro.core.algorithms.registry import ALGORITHMS
from repro.core.problem import IVCInstance
from repro.engine import RunRecord, run_grid
from repro.runtime.context import ExecutionContext


class EmptySuiteError(ValueError):
    """A profile/report was requested on a suite with nothing to profile.

    Raised by :meth:`SuiteResult.profile` when the suite holds no instances
    at all, or when every instance has at least one failed cell (so
    ``subset(ok_indices())`` would be empty).  Before this error existed the
    failure surfaced as a cryptic empty-array ``ValueError`` (or a
    ``ZeroDivisionError``) deep inside the profile math.
    """


class SuiteExecutionError(RuntimeError):
    """A suite cell failed while ``on_error="raise"`` was in effect.

    Carries the failing :attr:`record` so callers can inspect the instance,
    algorithm, and captured error message.
    """

    def __init__(self, record: RunRecord) -> None:
        self.record = record
        super().__init__(
            f"{record.algorithm} failed on instance {record.instance!r} "
            f"[{record.status}]: {record.error}"
        )


@dataclass
class SuiteResult:
    """Everything measured while running a suite.

    Attributes
    ----------
    instances:
        The instances, in run order.
    maxcolors:
        ``{algorithm: [maxcolor per instance]}``.  Failed cells (only
        possible with ``on_error="record"``) hold ``-1``.
    times:
        ``{algorithm: [elapsed seconds per instance]}``.  Failed cells hold
        ``nan``.
    lower_bounds:
        The clique/maxpair lower bound per instance.
    records:
        The per-cell :class:`~repro.engine.records.RunRecord` list, in grid
        order (instance-major).
    """

    instances: list[IVCInstance] = field(default_factory=list)
    maxcolors: dict[str, list[int]] = field(default_factory=dict)
    times: dict[str, list[float]] = field(default_factory=dict)
    lower_bounds: list[int] = field(default_factory=list)
    records: list[RunRecord] = field(default_factory=list)
    #: Engine supervision counters (see :class:`repro.engine.GridResult`):
    #: pool rebuilds after worker deaths, cell executions resubmitted after a
    #: crash, and cells adopted from a ``resume_from=`` run log.
    pool_restarts: int = 0
    cells_retried: int = 0
    cells_resumed: int = 0

    @property
    def algorithms(self) -> list[str]:
        """Algorithm names in run order."""
        return list(self.maxcolors)

    @property
    def num_instances(self) -> int:
        """Number of instances in the suite."""
        return len(self.instances)

    @property
    def errors(self) -> list[RunRecord]:
        """Records of the cells that failed (empty for fully clean runs)."""
        return [r for r in self.records if not r.ok]

    def ok_indices(self) -> list[int]:
        """Instance indices where every algorithm cell succeeded."""
        failed = {r.instance_index for r in self.errors}
        return [i for i in range(self.num_instances) if i not in failed]

    def profile(self, best: Sequence[float] | None = None) -> PerformanceProfile:
        """Performance profile of the collected maxcolors.

        Raises :class:`ValueError` when failed cells are present — subset to
        :meth:`ok_indices` first so ``-1`` placeholders cannot masquerade as
        best-in-class quality — and :class:`EmptySuiteError` when there is
        nothing left to profile (no instances, or every instance failed).
        """
        if self.num_instances == 0 or not self.maxcolors:
            raise EmptySuiteError(
                "suite holds no instances (or no algorithms) — nothing to "
                "profile; did every cell get filtered out?"
            )
        if self.errors:
            if not self.ok_indices():
                raise EmptySuiteError(
                    f"every instance has a failed cell ({len(self.errors)} "
                    f"failures over {self.num_instances} instances) — no "
                    "clean instances left to profile; inspect result.errors"
                )
            raise ValueError(
                f"{len(self.errors)} failed cells in the suite; "
                "profile over result.subset(result.ok_indices())"
            )
        values = {a: [float(v) for v in vs] for a, vs in self.maxcolors.items()}
        return performance_profile(values, best=list(best) if best is not None else None)

    def subset(self, keep: Sequence[int]) -> "SuiteResult":
        """Restrict to a subset of instance indices (per-dataset profiles)."""
        keep = list(keep)
        remap = {old: new for new, old in enumerate(keep)}
        return SuiteResult(
            instances=[self.instances[i] for i in keep],
            maxcolors={a: [vs[i] for i in keep] for a, vs in self.maxcolors.items()},
            times={a: [vs[i] for i in keep] for a, vs in self.times.items()},
            lower_bounds=[self.lower_bounds[i] for i in keep],
            records=[
                replace(r, instance_index=remap[r.instance_index])
                for r in self.records
                if r.instance_index in remap
            ],
        )

    def indices_by_metadata(self, key: str, value) -> list[int]:
        """Instance indices whose metadata matches ``key == value``."""
        return [
            i for i, inst in enumerate(self.instances) if inst.metadata.get(key) == value
        ]


@dataclass(frozen=True)
class InstanceHandle:
    """A lightweight stand-in for an :class:`~repro.core.problem.IVCInstance`.

    Harvest artifacts (:mod:`repro.campaign.harvest`) persist only what the
    report builders actually read — the name, stencil shape, vertex count,
    and metadata — so a :class:`SuiteResult` can be reconstructed from disk
    without re-voxelizing the instance grids.  Every report in
    :mod:`repro.reports` works identically over handles and real instances;
    only recomputation (e.g. :func:`solve_suite_optimal`) needs the real
    thing, and rebuilds it from the campaign's deterministic scenario spec.
    """

    name: str = ""
    shape: Optional[tuple[int, ...]] = None
    num_vertices: int = 0
    metadata: dict = field(default_factory=dict)


def suite_result_from_records(
    instances: Sequence[IVCInstance | InstanceHandle],
    algorithms: Sequence[str],
    records: Sequence[RunRecord],
    on_error: str = "raise",
) -> SuiteResult:
    """Aggregate engine records into a :class:`SuiteResult`.

    ``instances`` may be real :class:`~repro.core.problem.IVCInstance`
    objects (the live engine path) or :class:`InstanceHandle` stand-ins (the
    harvest path) — reports only touch the shared fields.

    ``on_error="raise"`` re-raises the first failed cell as
    :class:`SuiteExecutionError` (the strict pre-engine behavior);
    ``on_error="record"`` keeps going, leaving ``-1``/``nan`` placeholders
    and the failing records on :attr:`SuiteResult.records`.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    names = list(algorithms)
    result = SuiteResult(
        instances=list(instances),
        maxcolors={a: [-1] * len(instances) for a in names},
        times={a: [math.nan] * len(instances) for a in names},
        lower_bounds=[0] * len(instances),
        records=list(records),
    )
    for record in records:
        if not record.ok:
            if on_error == "raise":
                raise SuiteExecutionError(record)
            continue
        result.maxcolors[record.algorithm][record.instance_index] = record.maxcolor
        result.times[record.algorithm][record.instance_index] = record.elapsed
        if record.lower_bound is not None:
            result.lower_bounds[record.instance_index] = record.lower_bound
    return result


def run_suite(
    instances: Iterable[IVCInstance],
    algorithms: Sequence[str] | None = None,
    validate: bool = True,
    *,
    jobs: int | None = 1,
    chunk_size: int | None = None,
    cell_timeout: float | None = None,
    fast_paths: bool | None = None,
    log_path: str | Path | None = None,
    on_error: str = "raise",
    max_cell_retries: int | None = None,
    resume_from: str | Path | None = None,
    context: ExecutionContext | None = None,
) -> SuiteResult:
    """Run every algorithm on every instance, collecting quality and time.

    Parameters
    ----------
    algorithms:
        Names from :data:`~repro.core.algorithms.registry.REGISTRY`;
        defaults to the paper's seven.
    validate:
        Check every coloring (cheap, vectorized); disable only in
        timing-sensitive ablations.
    jobs:
        Worker processes for the batch engine; the default ``1`` runs
        serially (same code path), ``None``/``0`` uses all cores.
    chunk_size:
        Cells per parallel task submission (engine default: an even
        ~4-chunks-per-worker split).
    cell_timeout:
        Optional per-cell wall-clock limit in seconds; exceeding cells
        become ``timeout`` records.
    fast_paths:
        Force the vectorized stencil kernels on (``True``) or off
        (``False``) in every engine worker; ``None`` (default) follows the
        run context's :class:`~repro.runtime.config.RuntimeConfig`
        fast-path mode (explicit argument beats config beats environment).
    log_path:
        Stream per-cell :class:`~repro.engine.records.RunRecord` JSONL to
        this path as the run progresses.
    on_error:
        ``"raise"`` (default) aborts on the first failed cell with
        :class:`SuiteExecutionError`; ``"record"`` finishes the suite and
        reports failures on :attr:`SuiteResult.errors`.
    max_cell_retries:
        Extra attempts each cell gets after a worker crash loses its chunk
        (the engine rebuilds the pool and resubmits only the lost cells).
    resume_from:
        Existing JSONL run log to resume: completed (``ok``/``timeout``)
        cells are adopted, only missing/``error`` cells execute.
    context:
        The :class:`~repro.runtime.context.ExecutionContext` for the run,
        forwarded to :func:`~repro.engine.run_grid` (``None`` = ambient).
    """
    names = list(algorithms) if algorithms is not None else list(ALGORITHMS)
    instances = list(instances)
    records = run_grid(
        instances,
        names,
        jobs=jobs,
        chunk_size=chunk_size,
        validate=validate,
        cell_timeout=cell_timeout,
        fast_paths=fast_paths,
        log_path=log_path,
        max_cell_retries=max_cell_retries,
        resume_from=resume_from,
        context=context,
    )
    result = suite_result_from_records(instances, names, records, on_error=on_error)
    result.pool_restarts = getattr(records, "pool_restarts", 0)
    result.cells_retried = getattr(records, "cells_retried", 0)
    result.cells_resumed = getattr(records, "cells_resumed", 0)
    return result


def solve_suite_optimal(
    result: SuiteResult,
    time_limit: float = 10.0,
) -> tuple[list[int], list[int]]:
    """MILP-solve each instance of a suite (Section VI.D analysis).

    Returns ``(solved_indices, optima)`` for the instances the MILP proved
    optimal within the per-instance time limit — mirroring the paper, where
    a minority of instances stayed unsolved after a day.
    """
    from repro.core.exact.milp import solve_milp

    solved: list[int] = []
    optima: list[int] = []
    for i, instance in enumerate(result.instances):
        best_heuristic = min(result.maxcolors[a][i] for a in result.maxcolors)
        res = solve_milp(instance, time_limit=time_limit, upper_bound=best_heuristic)
        if res.proven_optimal and res.maxcolor is not None:
            solved.append(i)
            optima.append(res.maxcolor)
    return solved, optima
