"""Shared experiment driver: run algorithm sets over instance suites.

Both the CLI and the benchmark harness funnel through :func:`run_suite`, so
the numbers printed for Figures 5–9 always come from the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.performance_profiles import PerformanceProfile, performance_profile
from repro.core.algorithms.registry import ALGORITHMS, color_with
from repro.core.bounds import lower_bound
from repro.core.problem import IVCInstance


@dataclass
class SuiteResult:
    """Everything measured while running a suite.

    Attributes
    ----------
    instances:
        The instances, in run order.
    maxcolors:
        ``{algorithm: [maxcolor per instance]}``.
    times:
        ``{algorithm: [elapsed seconds per instance]}``.
    lower_bounds:
        The clique/maxpair lower bound per instance.
    """

    instances: list[IVCInstance] = field(default_factory=list)
    maxcolors: dict[str, list[int]] = field(default_factory=dict)
    times: dict[str, list[float]] = field(default_factory=dict)
    lower_bounds: list[int] = field(default_factory=list)

    @property
    def algorithms(self) -> list[str]:
        """Algorithm names in run order."""
        return list(self.maxcolors)

    @property
    def num_instances(self) -> int:
        """Number of instances in the suite."""
        return len(self.instances)

    def profile(self, best: Sequence[float] | None = None) -> PerformanceProfile:
        """Performance profile of the collected maxcolors."""
        values = {a: [float(v) for v in vs] for a, vs in self.maxcolors.items()}
        return performance_profile(values, best=list(best) if best is not None else None)

    def subset(self, keep: Sequence[int]) -> "SuiteResult":
        """Restrict to a subset of instance indices (per-dataset profiles)."""
        keep = list(keep)
        return SuiteResult(
            instances=[self.instances[i] for i in keep],
            maxcolors={a: [vs[i] for i in keep] for a, vs in self.maxcolors.items()},
            times={a: [vs[i] for i in keep] for a, vs in self.times.items()},
            lower_bounds=[self.lower_bounds[i] for i in keep],
        )

    def indices_by_metadata(self, key: str, value) -> list[int]:
        """Instance indices whose metadata matches ``key == value``."""
        return [
            i for i, inst in enumerate(self.instances) if inst.metadata.get(key) == value
        ]


def run_suite(
    instances: Iterable[IVCInstance],
    algorithms: Sequence[str] | None = None,
    validate: bool = True,
) -> SuiteResult:
    """Run every algorithm on every instance, collecting quality and time.

    Parameters
    ----------
    algorithms:
        Names from :data:`~repro.core.algorithms.registry.ALGORITHMS`;
        defaults to all seven.
    validate:
        Check every coloring (cheap, vectorized); disable only in
        timing-sensitive ablations.
    """
    names = list(algorithms) if algorithms is not None else list(ALGORITHMS)
    result = SuiteResult(maxcolors={a: [] for a in names}, times={a: [] for a in names})
    for instance in instances:
        result.instances.append(instance)
        result.lower_bounds.append(lower_bound(instance))
        for name in names:
            coloring = color_with(instance, name)
            if validate:
                coloring.check()
            if coloring.maxcolor < result.lower_bounds[-1]:
                raise AssertionError(
                    f"{name} beat the lower bound on {instance.name} — bound bug"
                )
            result.maxcolors[name].append(coloring.maxcolor)
            result.times[name].append(coloring.elapsed)
    return result


def solve_suite_optimal(
    result: SuiteResult,
    time_limit: float = 10.0,
) -> tuple[list[int], list[int]]:
    """MILP-solve each instance of a suite (Section VI.D analysis).

    Returns ``(solved_indices, optima)`` for the instances the MILP proved
    optimal within the per-instance time limit — mirroring the paper, where
    a minority of instances stayed unsolved after a day.
    """
    from repro.core.exact.milp import solve_milp

    solved: list[int] = []
    optima: list[int] = []
    for i, instance in enumerate(result.instances):
        best_heuristic = min(result.maxcolors[a][i] for a in result.maxcolors)
        res = solve_milp(instance, time_limit=time_limit, upper_bound=best_heuristic)
        if res.proven_optimal and res.maxcolor is not None:
            solved.append(i)
            optima.append(res.maxcolor)
    return solved, optima
