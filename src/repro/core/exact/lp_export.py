"""Export the interval-coloring MILP in CPLEX LP format.

The paper solved its model with Gurobi; :func:`write_lp` emits the exact
same formulation as a standalone ``.lp`` file so the instance can be handed
to any external solver (Gurobi, CPLEX, CBC, HiGHS CLI) for independent
verification or longer optimization runs than the in-process scipy solve.

Model (positive-weight vertices only):

    minimize   M
    subject to start_v + w_v <= M                          for every vertex
               start_u + w_u <= start_v + B (1 - y_uv)     for every edge
               start_v + w_v <= start_u + B y_uv
               start_v integer >= 0,  y_uv binary

with big-M ``B`` set to a heuristic upper bound.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.problem import IVCInstance


def _model_parts(instance: IVCInstance, upper_bound: int):
    active = np.flatnonzero(instance.weights > 0)
    index = {int(v): i for i, v in enumerate(active)}
    edges = []
    for u, v in instance.graph.edges():
        u, v = int(u), int(v)
        if u in index and v in index:
            edges.append((u, v))
    return active, edges


def lp_text(instance: IVCInstance, upper_bound: int | None = None) -> str:
    """Render the MILP as an LP-format string."""
    if upper_bound is None:
        from repro.core.exact.milp import _heuristic_ub

        upper_bound = _heuristic_ub(instance)
    active, edges = _model_parts(instance, upper_bound)
    w = instance.weights
    big = int(upper_bound)

    lines = [
        f"\\ Interval vertex coloring MILP for {instance.name or 'instance'}",
        f"\\ {len(active)} weighted vertices, {len(edges)} conflict edges, big-M {big}",
        "Minimize",
        " obj: M",
        "Subject To",
    ]
    for v in active:
        v = int(v)
        lines.append(f" end_{v}: s_{v} - M <= -{int(w[v])}")
    for u, v in edges:
        # y=1: u entirely before v; y=0: v entirely before u.
        lines.append(
            f" ord_{u}_{v}_a: s_{u} - s_{v} + {big} y_{u}_{v} <= {big - int(w[u])}"
        )
        lines.append(f" ord_{u}_{v}_b: s_{v} - s_{u} - {big} y_{u}_{v} <= -{int(w[v])}")
    lines.append("Bounds")
    for v in active:
        v = int(v)
        lines.append(f" 0 <= s_{v} <= {big - int(w[v])}")
    lines.append(f" 0 <= M <= {big}")
    lines.append("Generals")
    lines.append(" M")
    for v in active:
        lines.append(f" s_{int(v)}")
    lines.append("Binaries")
    for u, v in edges:
        lines.append(f" y_{u}_{v}")
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp(instance: IVCInstance, path, upper_bound: int | None = None) -> Path:
    """Write the LP file and return its path."""
    path = Path(path)
    path.write_text(lp_text(instance, upper_bound=upper_bound))
    return path
