"""Closed-form optimal colorings for the special graphs of Section III.

Each function returns a :class:`~repro.core.coloring.Coloring` that is
*provably optimal* for its graph class:

* cliques — stack the weights: ``maxcolor* = Σ w(v)``;
* bipartite graphs (hence chains, stars, trees, even cycles) — one side
  0-aligned, the other top-aligned: ``maxcolor* = max_{(u,v)∈E} w(u)+w(v)``;
* odd cycles — Theorem 1: ``maxcolor* = max(maxpair, minchain3)``;
* the 5-pt / 7-pt stencil relaxations — bipartite by grid parity, the
  polynomial cases highlighted in the abstract.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import cycle_minchain3, odd_cycle_optimum
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.stencil.generic import is_bipartite


def color_clique(instance: IVCInstance) -> Coloring:
    """Optimal coloring of a complete graph: prefix-sum stacking.

    No two vertices may share any color, so listing vertices in any order and
    stacking their intervals is optimal with ``maxcolor = Σ w``.
    """
    n = instance.num_vertices
    expected_edges = n * (n - 1) // 2
    if instance.num_edges != expected_edges:
        raise ValueError("color_clique requires a complete graph")
    starts = np.concatenate([[0], np.cumsum(instance.weights[:-1])]).astype(np.int64)
    return Coloring(instance=instance, starts=starts, algorithm="exact-clique")


def color_bipartite(instance: IVCInstance) -> Coloring:
    """Optimal coloring of a bipartite graph (Section III.B).

    Side A is colored ``[0, w)``; side B is colored ``[M - w, M)`` where
    ``M = max_{(u,v)∈E} w(u) + w(v)`` — disjoint across every edge by the
    definition of ``M``, and ``M`` is a trivial lower bound.
    """
    ok, side = is_bipartite(instance.graph)
    if not ok:
        raise ValueError("color_bipartite requires a bipartite graph")
    edges = instance.graph.edges()
    w = instance.weights
    if len(edges):
        m = int((w[edges[:, 0]] + w[edges[:, 1]]).max())
    else:
        m = int(w.max(initial=0))
    m = max(m, int(w.max(initial=0)))
    starts = np.where(side == 0, 0, m - w).astype(np.int64)
    # Isolated vertices sit on side 0 at start 0 regardless.
    return Coloring(instance=instance, starts=starts, algorithm="exact-bipartite")


def color_chain(instance: IVCInstance) -> Coloring:
    """Optimal coloring of a path graph (a chain is bipartite)."""
    return color_bipartite(instance).with_algorithm("exact-chain")


def color_star(instance: IVCInstance) -> Coloring:
    """Optimal coloring of a star (bipartite: center vs leaves)."""
    return color_bipartite(instance).with_algorithm("exact-star")


def color_even_cycle(instance: IVCInstance) -> Coloring:
    """Optimal coloring of an even cycle (bipartite by parity)."""
    return color_bipartite(instance).with_algorithm("exact-even-cycle")


def color_odd_cycle(instance: IVCInstance) -> Coloring:
    """Optimal coloring of an odd cycle — the constructive side of Theorem 1.

    Expects the instance's graph to be the cycle ``0 - 1 - ... - (n-1) - 0``.
    Rotates so the minimum-weight chain of three starts at vertex 0, then
    colors per Lemma 2: vertex 0 at ``[0, w0)``, vertex 1 at ``[w0, w0+w1)``,
    vertex 2 top-aligned, the rest alternating bottom/top-aligned.  Uses
    exactly ``max(maxpair, minchain3)`` colors.
    """
    n = instance.num_vertices
    if n < 3 or n % 2 == 0:
        raise ValueError("color_odd_cycle requires an odd cycle with n >= 3")
    for v in range(n):
        expected = sorted(((v - 1) % n, (v + 1) % n))
        if sorted(int(u) for u in instance.graph.neighbors(v)) != expected:
            raise ValueError("graph is not the cycle 0-1-...-(n-1)-0")
    w = instance.weights
    # Locate the minchain3: rotate so it sits on (0, 1, 2).
    triples = w + np.roll(w, -1) + np.roll(w, -2)
    shift = int(np.argmin(triples))
    assert int(triples[shift]) == cycle_minchain3(w)
    m = odd_cycle_optimum(w)
    starts = np.zeros(n, dtype=np.int64)
    # Positions are relative to the rotation: rel = (v - shift) mod n.
    for rel in range(n):
        v = (rel + shift) % n
        if rel == 0:
            starts[v] = 0
        elif rel == 1:
            starts[v] = w[(shift + 0) % n]
        elif rel == 2:
            starts[v] = m - w[v]
        elif rel % 2 == 1:
            starts[v] = 0
        else:
            starts[v] = m - w[v]
    return Coloring(instance=instance, starts=starts, algorithm="exact-odd-cycle")


def _parity_relaxation(instance: IVCInstance, relaxed_graph, parity: np.ndarray, label: str) -> Coloring:
    """Optimal bipartite coloring of a stencil relaxation by grid parity."""
    relaxed = IVCInstance(graph=relaxed_graph, weights=instance.weights)
    edges = relaxed_graph.edges()
    w = instance.weights
    if len(edges):
        m = int((w[edges[:, 0]] + w[edges[:, 1]]).max())
    else:
        m = int(w.max(initial=0))
    m = max(m, int(w.max(initial=0)))
    starts = np.where(parity == 0, 0, m - w).astype(np.int64)
    return Coloring(instance=relaxed, starts=starts, algorithm=label)


def color_relaxation_5pt(instance: IVCInstance) -> Coloring:
    """Optimal coloring of the 5-pt relaxation of a 2DS-IVC instance.

    The von Neumann stencil is bipartite by the parity of ``i + j``, so it is
    solvable in polynomial time (the relaxation result of the abstract).  The
    returned coloring is valid for the 5-pt graph, *not* for the full 9-pt
    stencil.
    """
    if not instance.is_2d:
        raise ValueError("5-pt relaxation requires a 2DS-IVC instance")
    geo = instance.geometry
    i, j = geo.coords(np.arange(instance.num_vertices))
    return _parity_relaxation(instance, geo.csr_5pt, (i + j) % 2, "exact-5pt")


def color_relaxation_7pt(instance: IVCInstance) -> Coloring:
    """Optimal coloring of the 7-pt relaxation of a 3DS-IVC instance.

    Bipartite by the parity of ``i + j + k``; valid for the 7-pt graph only.
    """
    if not instance.is_3d:
        raise ValueError("7-pt relaxation requires a 3DS-IVC instance")
    geo = instance.geometry
    i, j, k = geo.coords(np.arange(instance.num_vertices))
    return _parity_relaxation(instance, geo.csr_7pt, (i + j + k) % 2, "exact-7pt")
