"""Pure-Python exact solver: CSP decision search + binary-search optimization.

The decision problem "is there a coloring with ``maxcolor <= K``" is a finite
CSP: each positive-weight vertex has the domain ``{0, ..., K - w(v)}`` and
each conflict edge forbids overlapping placements.  :func:`decide_coloring`
searches it by DFS with minimum-remaining-values variable ordering and
forward checking; :func:`solve_exact` wraps it in a binary search between a
lower bound and a heuristic upper bound (feasibility is monotone in ``K``).

This is exponential in the worst case — Section IV proves the 3D decision
problem NP-complete — but comfortably handles the paper's small certificates
(Figures 2 and 3) and the NAE-3SAT reduction gadgets, and serves as an
independent cross-check of the MILP.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.bounds import lower_bound
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance


class SearchBudgetExceeded(Exception):
    """Raised when the DFS exceeds its node budget (result unknown)."""


def _forward_check(
    domains: list[np.ndarray],
    assigned: np.ndarray,
    neighbors: list[np.ndarray],
    weights: np.ndarray,
    v: int,
    start: int,
) -> Optional[list[tuple[int, np.ndarray]]]:
    """Prune neighbor domains after placing ``v`` at ``start``.

    Removes from each unassigned neighbor ``u`` every start ``s`` with
    ``s < start + w(v)`` and ``start < s + w(u)``.  Returns the undo list of
    ``(vertex, previous_domain)`` pairs, or ``None`` if a domain emptied.
    """
    undo: list[tuple[int, np.ndarray]] = []
    end = start + weights[v]
    for u in neighbors[v]:
        u = int(u)
        if assigned[u] or weights[u] == 0:
            continue
        dom = domains[u]
        keep = (dom >= end) | (dom + weights[u] <= start)
        if keep.all():
            continue
        newdom = dom[keep]
        if len(newdom) == 0:
            for uu, prev in undo:
                domains[uu] = prev
            return None
        undo.append((u, dom))
        domains[u] = newdom
    return undo


def decide_coloring(
    instance: IVCInstance,
    k: int,
    node_budget: int = 2_000_000,
) -> Optional[Coloring]:
    """A coloring with ``maxcolor <= k``, or ``None`` if none exists.

    DFS over positive-weight vertices with MRV ordering and forward
    checking.  Zero-weight vertices are placed at 0 unconditionally.

    Raises
    ------
    SearchBudgetExceeded
        After ``node_budget`` DFS nodes — the answer is then unknown.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    n = instance.num_vertices
    weights = instance.weights
    starts = np.zeros(n, dtype=np.int64)
    active = [int(v) for v in np.flatnonzero(weights > 0)]
    if not active:
        return Coloring(instance=instance, starts=starts, algorithm="BnB-decide")
    if int(weights.max()) > k:
        return None

    neighbors = [instance.graph.neighbors(v) for v in range(n)]
    domains: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    for v in active:
        domains[v] = np.arange(k - int(weights[v]) + 1, dtype=np.int64)
    assigned = np.zeros(n, dtype=bool)
    nodes = 0

    def dfs(remaining: int) -> bool:
        nonlocal nodes
        if remaining == 0:
            return True
        nodes += 1
        if nodes > node_budget:
            raise SearchBudgetExceeded(f"exceeded {node_budget} nodes at k={k}")
        # MRV: the unassigned active vertex with the smallest domain.
        best_v = -1
        best_size = None
        for v in active:
            if not assigned[v]:
                size = len(domains[v])
                if best_size is None or size < best_size:
                    best_v, best_size = v, size
                    if size <= 1:
                        break
        v = best_v
        assigned[v] = True
        for s in domains[v]:
            s = int(s)
            undo = _forward_check(domains, assigned, neighbors, weights, v, s)
            if undo is not None:
                starts[v] = s
                if dfs(remaining - 1):
                    return True
                for u, prev in undo:
                    domains[u] = prev
        assigned[v] = False
        return False

    if dfs(len(active)):
        return Coloring(instance=instance, starts=starts, algorithm="BnB-decide").check()
    return None


def solve_exact(
    instance: IVCInstance,
    upper: Optional[int] = None,
    node_budget: int = 2_000_000,
) -> Coloring:
    """Provably optimal coloring by binary search on ``k``.

    ``k`` ranges between :func:`~repro.core.bounds.lower_bound` (or the max
    weight for geometry-free instances) and a heuristic upper bound.
    Feasibility is monotone in ``k``, so binary search applies.
    """
    n = instance.num_vertices
    if n == 0:
        return Coloring(
            instance=instance, starts=np.empty(0, dtype=np.int64), algorithm="BnB"
        )
    if upper is None:
        from repro.core.exact.milp import _heuristic_ub

        upper = _heuristic_ub(instance)
    if instance.geometry is not None:
        lo = lower_bound(instance)
    else:
        from repro.core.bounds import maxpair_bound

        lo = maxpair_bound(instance)
    hi = int(upper)
    best: Optional[Coloring] = decide_coloring(instance, hi, node_budget)
    if best is None:
        raise AssertionError("heuristic upper bound was infeasible — bug")
    while lo < hi:
        mid = (lo + hi) // 2
        attempt = decide_coloring(instance, mid, node_budget)
        if attempt is None:
            lo = mid + 1
        else:
            best = attempt
            hi = mid
    return best.with_algorithm("BnB")
