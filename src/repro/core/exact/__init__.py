"""Exact solvers for interval vertex coloring.

* :mod:`~repro.core.exact.special_cases` — the closed-form optimal colorings
  of Section III: cliques, chains, stars, bipartite graphs, odd cycles
  (Theorem 1), and the 5-pt / 7-pt stencil relaxations.
* :mod:`~repro.core.exact.milp` — the Mixed Integer Linear Program of
  Section VI.D, solved with scipy's HiGHS backend (substituting for the
  paper's Gurobi).
* :mod:`~repro.core.exact.branch_and_bound` — a CSP-style exact solver
  (decision by DFS with forward checking, optimization by binary search);
  backstop for the MILP and workhorse of the NP-completeness demos.
"""

from repro.core.exact.branch_and_bound import decide_coloring, solve_exact
from repro.core.exact.milp import MILPResult, milp_decide, solve_milp
from repro.core.exact.special_cases import (
    color_bipartite,
    color_chain,
    color_clique,
    color_even_cycle,
    color_odd_cycle,
    color_relaxation_5pt,
    color_relaxation_7pt,
    color_star,
)

__all__ = [
    "MILPResult",
    "color_bipartite",
    "color_chain",
    "color_clique",
    "color_even_cycle",
    "color_odd_cycle",
    "color_relaxation_5pt",
    "color_relaxation_7pt",
    "color_star",
    "decide_coloring",
    "milp_decide",
    "solve_exact",
    "solve_milp",
]
