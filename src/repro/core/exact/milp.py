"""Mixed Integer Linear Program for exact interval coloring (Section VI.D).

The paper solved instances to optimality with Gurobi (one day per instance on
a cluster node); here the same model runs on scipy's bundled HiGHS solver.

Model (positive-weight vertices only — zero-weight vertices never conflict):

.. math::

    \\min M \\quad \\text{s.t.} \\quad
    start_v + w_v \\le M, \\qquad
    \\forall (u,v) \\in E: \\;
    start_u + w_u \\le start_v + B (1 - y_{uv}), \\;
    start_v + w_v \\le start_u + B y_{uv}

with ``y_uv`` binary ("u entirely before v") and ``B`` a big-M constant set
to a heuristic upper bound.  Decision instances ("colorable with <= K?") fix
``M = K`` and ask for feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance


@dataclass(frozen=True)
class MILPResult:
    """Outcome of a MILP solve.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"``, ``"timeout"`` or ``"error"``.
    maxcolor:
        Objective value when a solution was found (else ``None``).
    coloring:
        The extracted coloring when a solution was found (else ``None``).
    proven_optimal:
        True iff the solver proved optimality within its budget.
    """

    status: str
    maxcolor: Optional[int]
    coloring: Optional[Coloring]
    proven_optimal: bool


def _positive_subproblem(instance: IVCInstance):
    """Active vertices (w > 0), their index map, and induced edges."""
    active = np.flatnonzero(instance.weights > 0)
    index = {int(v): i for i, v in enumerate(active)}
    edges = []
    for u, v in instance.graph.edges():
        u, v = int(u), int(v)
        if u in index and v in index:
            edges.append((index[u], index[v]))
    return active, index, edges


def _build_model(instance: IVCInstance, upper_bound: int, fixed_k: Optional[int]):
    """Assemble (c, constraints, integrality, bounds, active, edges).

    Variable layout: ``start`` for each active vertex, then ``M`` (absent in
    decision mode), then one binary per active edge.
    """
    active, _index, edges = _positive_subproblem(instance)
    w = instance.weights[active].astype(np.int64)
    n = len(active)
    m = len(edges)
    has_m = fixed_k is None
    num_vars = n + (1 if has_m else 0) + m
    m_col = n  # column of the M variable when present
    y0 = n + (1 if has_m else 0)
    big = upper_bound

    c = np.zeros(num_vars)
    if has_m:
        c[m_col] = 1.0

    rows, cols, vals, ub = [], [], [], []
    row = 0

    if has_m:
        # start_v + w_v <= M  ->  start_v - M <= -w_v
        for i in range(n):
            rows += [row, row]
            cols += [i, m_col]
            vals += [1.0, -1.0]
            ub.append(-float(w[i]))
            row += 1

    for e, (a, b) in enumerate(edges):
        # start_a + w_a <= start_b + big * (1 - y)  ->  start_a - start_b + big*y <= big - w_a
        rows += [row, row, row]
        cols += [a, b, y0 + e]
        vals += [1.0, -1.0, float(big)]
        ub.append(float(big - w[a]))
        row += 1
        # start_b + w_b <= start_a + big * y  ->  start_b - start_a - big*y <= -w_b
        rows += [row, row, row]
        cols += [b, a, y0 + e]
        vals += [1.0, -1.0, -float(big)]
        ub.append(-float(w[b]))
        row += 1

    mat = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, num_vars)
    )
    constraints = LinearConstraint(mat, -np.inf, np.asarray(ub))

    lower = np.zeros(num_vars)
    upper = np.empty(num_vars)
    cap = fixed_k if fixed_k is not None else upper_bound
    upper[:n] = np.maximum(cap - w, 0)
    if has_m:
        from repro.core.bounds import lower_bound, maxpair_bound

        lb = lower_bound(instance) if instance.geometry is not None else maxpair_bound(instance)
        lower[m_col] = float(lb)
        upper[m_col] = float(upper_bound)
    upper[y0:] = 1.0
    bounds = Bounds(lower, upper)

    integrality = np.ones(num_vars)  # all integer; binaries bounded to {0,1}
    return c, constraints, integrality, bounds, active, edges


def _extract_starts(instance: IVCInstance, active: np.ndarray, x: np.ndarray) -> np.ndarray:
    starts = np.zeros(instance.num_vertices, dtype=np.int64)
    starts[active] = np.round(x[: len(active)]).astype(np.int64)
    return starts


def _heuristic_ub(instance: IVCInstance) -> int:
    """A quick valid upper bound: BDP on stencils, GLF elsewhere."""
    from repro.core.algorithms.bipartite_decomposition import bipartite_decomposition_post
    from repro.core.algorithms.greedy import greedy_largest_first

    if instance.geometry is not None:
        return bipartite_decomposition_post(instance).maxcolor
    return greedy_largest_first(instance).maxcolor


def solve_milp(
    instance: IVCInstance,
    time_limit: float = 60.0,
    upper_bound: Optional[int] = None,
) -> MILPResult:
    """Solve the instance to optimality (or until the time limit) with HiGHS.

    Parameters
    ----------
    time_limit:
        HiGHS wall-clock budget in seconds (the paper used 1 day/instance).
    upper_bound:
        Big-M / start bound; defaults to a heuristic solution's ``maxcolor``.
    """
    if instance.num_vertices == 0 or int(instance.weights.max(initial=0)) == 0:
        zero = Coloring(
            instance=instance,
            starts=np.zeros(instance.num_vertices, dtype=np.int64),
            algorithm="MILP",
        )
        return MILPResult("optimal", 0, zero, True)
    ub = upper_bound if upper_bound is not None else _heuristic_ub(instance)
    c, constraints, integrality, bounds, active, _edges = _build_model(instance, ub, None)
    res = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": float(time_limit), "disp": False},
    )
    if res.status == 0 and res.x is not None:
        starts = _extract_starts(instance, active, res.x)
        coloring = Coloring(instance=instance, starts=starts, algorithm="MILP").check()
        return MILPResult("optimal", coloring.maxcolor, coloring, True)
    if res.status == 1 and res.x is not None:  # hit iteration/time limit with incumbent
        starts = _extract_starts(instance, active, res.x)
        coloring = Coloring(instance=instance, starts=starts, algorithm="MILP")
        if coloring.is_valid():
            return MILPResult("timeout", coloring.maxcolor, coloring, False)
        return MILPResult("timeout", None, None, False)
    if res.status == 2:
        return MILPResult("infeasible", None, None, True)
    if res.status == 1:
        return MILPResult("timeout", None, None, False)
    return MILPResult("error", None, None, False)


def milp_decide(instance: IVCInstance, k: int, time_limit: float = 60.0) -> Optional[Coloring]:
    """Decision version: a coloring with ``maxcolor <= k``, or ``None``.

    ``None`` means HiGHS proved infeasibility; a timeout raises
    :class:`TimeoutError` so callers never mistake "unknown" for "no".
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if instance.num_vertices == 0 or int(instance.weights.max(initial=0)) == 0:
        return Coloring(
            instance=instance,
            starts=np.zeros(instance.num_vertices, dtype=np.int64),
            algorithm="MILP-decide",
        )
    if int(instance.weights.max()) > k:
        return None  # some vertex cannot even fit alone
    c, constraints, integrality, bounds, active, _edges = _build_model(instance, k, k)
    res = milp(
        c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": float(time_limit), "disp": False},
    )
    if res.status == 0 and res.x is not None:
        starts = _extract_starts(instance, active, res.x)
        coloring = Coloring(instance=instance, starts=starts, algorithm="MILP-decide").check()
        if coloring.maxcolor > k:
            raise AssertionError("decision model returned a coloring above k")
        return coloring
    if res.status == 2:
        return None
    raise TimeoutError(f"HiGHS could not decide k={k} within {time_limit}s (status {res.status})")
