"""Core interval-vertex-coloring library.

Contents:

* :mod:`~repro.core.problem` — the :class:`IVCInstance` container binding a
  graph, integer vertex weights, and (optionally) a stencil geometry.
* :mod:`~repro.core.coloring` — the :class:`Coloring` result type with
  validation and ``maxcolor``.
* :mod:`~repro.core.greedy_engine` — the first-fit interval primitive shared
  by every greedy heuristic.
* :mod:`~repro.core.bounds` — the lower bounds of Section III (max weighted
  edge, max :math:`K_4`/:math:`K_8` clique, odd-cycle ``minchain3``).
* :mod:`~repro.core.algorithms` — the heuristics of Section V (GLL, GZO,
  GLF, GKF, SGK, BD, BDP) behind a uniform registry.
* :mod:`~repro.core.exact` — exact solvers: the closed-form special cases of
  Section III, a MILP (scipy/HiGHS) matching the paper's Gurobi model, and a
  branch-and-bound backstop.
"""

from repro.core.algorithms import (
    ALGORITHMS,
    EXTENDED_ALGORITHMS,
    REGISTRY,
    AlgorithmSpec,
    Registry,
    UnknownAlgorithmError,
    available_algorithms,
    bipartite_decomposition,
    bipartite_decomposition_post,
    color_with,
    greedy_largest_clique_first,
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
    smart_greedy_largest_clique_first,
)
from repro.core.bounds import (
    clique_block_bound,
    lower_bound,
    max_weight_bound,
    maxpair_bound,
    odd_cycle_bound,
)
from repro.core.coloring import Coloring
from repro.core.greedy_engine import first_fit_start, greedy_color, greedy_recolor_pass
from repro.core.problem import IVCInstance

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "Coloring",
    "EXTENDED_ALGORITHMS",
    "IVCInstance",
    "REGISTRY",
    "Registry",
    "UnknownAlgorithmError",
    "available_algorithms",
    "bipartite_decomposition",
    "bipartite_decomposition_post",
    "clique_block_bound",
    "color_with",
    "first_fit_start",
    "greedy_color",
    "greedy_largest_clique_first",
    "greedy_largest_first",
    "greedy_line_by_line",
    "greedy_recolor_pass",
    "greedy_zorder",
    "lower_bound",
    "max_weight_bound",
    "maxpair_bound",
    "odd_cycle_bound",
    "smart_greedy_largest_clique_first",
]
