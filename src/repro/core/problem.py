"""The Interval Vertex Coloring problem container.

An :class:`IVCInstance` binds together

* an undirected conflict graph in CSR form,
* non-negative integer vertex weights, and
* optionally a stencil geometry (:class:`~repro.stencil.grid2d.StencilGrid2D`
  or :class:`~repro.stencil.grid3d.StencilGrid3D`) that structure-aware
  algorithms (Bipartite Decomposition, clique-first orderings, GZO) exploit.

Instances built from weight grids are 2DS-IVC / 3DS-IVC instances in the
paper's terminology; instances built from a bare graph are general IVC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.stencil.generic import CSRGraph, from_edges
from repro.stencil.grid2d import StencilGrid2D
from repro.stencil.grid3d import StencilGrid3D

Geometry = Union[StencilGrid2D, StencilGrid3D]


def _check_finite(arr) -> None:
    """Reject NaN/inf before an int cast silently mangles them."""
    asarray = np.asarray(arr)
    if np.issubdtype(asarray.dtype, np.floating) and not np.isfinite(asarray).all():
        raise ValueError("weights must be finite")


def _as_weights(weights, n: int) -> np.ndarray:
    _check_finite(weights)
    arr = np.ascontiguousarray(weights, dtype=np.int64).ravel()
    if len(arr) != n:
        raise ValueError(f"expected {n} weights, got {len(arr)}")
    if arr.size and arr.min() < 0:
        raise ValueError("weights must be non-negative")
    return arr


@dataclass(frozen=True)
class IVCInstance:
    """An interval vertex coloring instance.

    Attributes
    ----------
    graph:
        Conflict graph in CSR form.
    weights:
        ``int64`` array of per-vertex interval lengths (``>= 0``).
    geometry:
        The stencil grid this instance lives on, or ``None`` for general
        graphs.
    name:
        Free-form label used in experiment reports.
    """

    graph: CSRGraph
    weights: np.ndarray
    geometry: Optional[Geometry] = None
    name: str = ""
    metadata: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", _as_weights(self.weights, self.graph.num_vertices))
        if self.geometry is not None and self.geometry.num_vertices != self.graph.num_vertices:
            raise ValueError("geometry vertex count does not match graph")

    # -------------------------------------------------------------- accessors
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Number of undirected conflict edges."""
        return self.graph.num_edges

    @property
    def total_weight(self) -> int:
        """Sum of all vertex weights — a trivial upper bound on ``maxcolor*``."""
        return int(self.weights.sum())

    @property
    def is_2d(self) -> bool:
        """Whether the instance is a 2DS-IVC (9-pt stencil) instance."""
        return isinstance(self.geometry, StencilGrid2D)

    @property
    def is_3d(self) -> bool:
        """Whether the instance is a 3DS-IVC (27-pt stencil) instance."""
        return isinstance(self.geometry, StencilGrid3D)

    def weight_grid(self) -> np.ndarray:
        """Weights reshaped to the stencil grid (stencil instances only)."""
        if self.geometry is None:
            raise ValueError("instance has no stencil geometry")
        return self.geometry.weights_as_grid(self.weights)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        geo = f", geometry={self.geometry!r}" if self.geometry is not None else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"IVCInstance(n={self.num_vertices}, m={self.num_edges}{geo}{label})"

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_grid_2d(cls, weight_grid, name: str = "", metadata: dict | None = None) -> "IVCInstance":
        """Build a 2DS-IVC instance from an ``(X, Y)`` weight array."""
        from repro.kernels.substrate import shared_geometry_2d

        _check_finite(weight_grid)
        grid_arr = np.ascontiguousarray(weight_grid, dtype=np.int64)
        if grid_arr.ndim != 2:
            raise ValueError(f"expected a 2D weight grid, got shape {grid_arr.shape}")
        geo = shared_geometry_2d(*grid_arr.shape)
        return cls(
            graph=geo.csr,
            weights=grid_arr.ravel(),
            geometry=geo,
            name=name,
            metadata=metadata or {},
        )

    @classmethod
    def from_grid_3d(cls, weight_grid, name: str = "", metadata: dict | None = None) -> "IVCInstance":
        """Build a 3DS-IVC instance from an ``(X, Y, Z)`` weight array."""
        from repro.kernels.substrate import shared_geometry_3d

        _check_finite(weight_grid)
        grid_arr = np.ascontiguousarray(weight_grid, dtype=np.int64)
        if grid_arr.ndim != 3:
            raise ValueError(f"expected a 3D weight grid, got shape {grid_arr.shape}")
        geo = shared_geometry_3d(*grid_arr.shape)
        return cls(
            graph=geo.csr,
            weights=grid_arr.ravel(),
            geometry=geo,
            name=name,
            metadata=metadata or {},
        )

    @classmethod
    def from_graph(cls, graph: CSRGraph, weights, name: str = "") -> "IVCInstance":
        """Build a general IVC instance from a CSR graph and weights."""
        return cls(graph=graph, weights=weights, name=name)

    @classmethod
    def from_edges(cls, num_vertices: int, edges, weights, name: str = "") -> "IVCInstance":
        """Build a general IVC instance from an edge list and weights."""
        return cls(graph=from_edges(num_vertices, edges), weights=weights, name=name)
