"""Lower bounds on ``maxcolor*`` (Section III of the paper).

Three families of bounds:

* **maxpair** — any conflict edge forces its endpoint weights to stack:
  ``maxcolor* >= w(u) + w(v)``.
* **clique blocks** — every :math:`K_4` block of a 9-pt stencil (and
  :math:`K_8` unit cube of a 27-pt stencil) must be colored sequentially, so
  the maximum block weight sum is a lower bound.  For general graphs an exact
  max-weight-clique search (networkx) is available for small instances.
* **odd cycles** — an odd cycle's optimum is
  ``max(maxpair, minchain3)`` (Theorem 1), where ``minchain3`` is the minimum
  weight of three consecutive vertices; odd cycles embedded in a stencil can
  therefore exceed the clique bound (Figure 2 of the paper).  Enumerating all
  embedded odd cycles is exponential, so :func:`odd_cycle_bound` searches
  cycles up to a bounded length.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.problem import IVCInstance


def max_weight_bound(instance: IVCInstance) -> int:
    """``max_v w(v)`` — every vertex needs its own weight in colors."""
    if instance.num_vertices == 0:
        return 0
    return int(instance.weights.max())


def maxpair_bound(instance: IVCInstance) -> int:
    """``max_{(u,v) in E} w(u) + w(v)`` (vectorized over the edge set)."""
    best = max_weight_bound(instance)
    edges = instance.graph.edges()
    if len(edges) == 0:
        return best
    sums = instance.weights[edges[:, 0]] + instance.weights[edges[:, 1]]
    return max(best, int(sums.max()))


def clique_block_bound(instance: IVCInstance) -> int:
    """Max weight of a :math:`K_4` / :math:`K_8` stencil block.

    For 2DS-IVC, the max over all 2×2 blocks of the weight sum; for
    3DS-IVC, the max over all 2×2×2 blocks.  Raises if the instance carries
    no stencil geometry (use :func:`max_clique_bound_exact` then).
    """
    geo = instance.geometry
    if geo is None:
        raise ValueError("clique_block_bound requires a stencil geometry")
    sums = geo.block_weight_sums(instance.weights)
    if len(sums) == 0:
        # Degenerate thin grids: fall back to edges.
        return maxpair_bound(instance)
    return int(sums.max())


def max_clique_bound_exact(instance: IVCInstance) -> int:
    """Exact maximum weighted clique via networkx (exponential; small graphs).

    On stencil instances this equals :func:`clique_block_bound` because the
    maximal cliques of 9-pt/27-pt stencils are exactly the unit blocks.
    """
    import networkx as nx

    from repro.stencil.generic import to_networkx

    graph = to_networkx(instance.graph)
    weights = instance.weights
    best = max_weight_bound(instance)
    for clique in nx.find_cliques(graph):
        total = int(weights[list(clique)].sum())
        if total > best:
            best = total
    return best


def cycle_maxpair(weights: np.ndarray) -> int:
    """``maxpair`` of an explicit cycle: max weight of two consecutive vertices."""
    w = np.asarray(weights, dtype=np.int64)
    return int((w + np.roll(w, -1)).max())


def cycle_minchain3(weights: np.ndarray) -> int:
    """``minchain3`` of an explicit cycle: min weight of three consecutive vertices."""
    w = np.asarray(weights, dtype=np.int64)
    return int((w + np.roll(w, -1) + np.roll(w, -2)).min())


def odd_cycle_optimum(weights: np.ndarray) -> int:
    """Optimal ``maxcolor`` of an odd cycle: ``max(maxpair, minchain3)`` (Thm 1)."""
    w = np.asarray(weights, dtype=np.int64)
    if len(w) % 2 == 0:
        raise ValueError("odd_cycle_optimum requires an odd-length cycle")
    if len(w) < 3:
        raise ValueError("a cycle has at least 3 vertices")
    return max(cycle_maxpair(w), cycle_minchain3(w))


def _odd_cycles_up_to(instance: IVCInstance, max_len: int):
    """Yield vertex tuples of simple odd cycles with ``3 <= len <= max_len``.

    Zero-weight vertices cannot raise ``minchain3`` past zero-including
    triples, but they still participate in cycles; enumeration runs on the
    full graph (the dedicated DFS enumerator, no networkx dependency).
    """
    from repro.stencil.subgraphs import enumerate_odd_cycles

    yield from enumerate_odd_cycles(instance.graph, max_len)


def odd_cycle_bound(instance: IVCInstance, max_len: int = 5) -> int:
    """Best odd-cycle lower bound over embedded cycles of bounded length.

    Enumerates simple odd cycles up to ``max_len`` vertices and returns the
    maximum of their ``minchain3`` values (their ``maxpair`` is already
    covered by :func:`maxpair_bound`).  Exponential in ``max_len``; intended
    for analysis on small/medium instances, not for the benchmark hot path.
    Returns 0 when the graph has no short odd cycle.
    """
    weights = instance.weights
    best = 0
    for cycle in _odd_cycles_up_to(instance, max_len):
        chain3 = cycle_minchain3(weights[np.asarray(cycle, dtype=np.int64)])
        if chain3 > best:
            best = chain3
    return best


def greedy_vertex_upper_bound(instance: IVCInstance) -> np.ndarray:
    """Per-vertex worst-case end color of *any* greedy coloring (Lemma 7).

    Vertex ``v`` is colored with an interval ending at most at
    ``Σ_{j∈Γ(v)} w(j) + (|Γ(v)| + 1) w(v) − |Γ(v)|``: in the worst case every
    neighbor holds a distinct interval and each is preceded by a gap of
    exactly ``w(v) − 1`` unusable colors.  Vertices with ``w(v) = 0`` end at
    0.  Vectorized over the CSR structure.
    """
    n = instance.num_vertices
    w = instance.weights
    deg = instance.graph.degrees()
    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    neighbor_sum = np.bincount(
        src, weights=w[instance.graph.indices].astype(np.float64), minlength=n
    ).astype(np.int64)
    bound = neighbor_sum + (deg + 1) * w - deg
    return np.where(w > 0, bound, 0).astype(np.int64)


def greedy_upper_bound(instance: IVCInstance) -> int:
    """Worst-case ``maxcolor`` of any greedy first-fit coloring (Lemma 7)."""
    if instance.num_vertices == 0:
        return 0
    return int(greedy_vertex_upper_bound(instance).max(initial=0))


def lower_bound(
    instance: IVCInstance,
    use_odd_cycles: bool = False,
    odd_cycle_max_len: int = 5,
) -> int:
    """Best cheap lower bound on ``maxcolor*``.

    Combines ``maxpair`` with the stencil clique-block bound when a geometry
    is present, and optionally with the bounded odd-cycle search.  This is
    the bound the paper compares heuristics against (the clique bound matches
    the optimum on ~95% of its solved instances).
    """
    best = maxpair_bound(instance)
    if instance.geometry is not None:
        best = max(best, clique_block_bound(instance))
    if use_odd_cycles:
        best = max(best, odd_cycle_bound(instance, max_len=odd_cycle_max_len))
    return best
