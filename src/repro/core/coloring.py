"""Coloring results: start vectors, ``maxcolor``, and validation.

A coloring is just the ``start`` function of Definition 1, stored as an
``int64`` vector parallel to the instance's weights.  Validation checks every
conflict edge for interval disjointness — vectorized over the whole edge set
so tests and experiments can afford to validate everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.interval import edge_overlaps
from repro.core.problem import IVCInstance


@dataclass(frozen=True)
class Coloring:
    """An interval coloring of an :class:`~repro.core.problem.IVCInstance`.

    Attributes
    ----------
    instance:
        The instance this coloring belongs to.
    starts:
        ``int64`` start color per vertex; vertex ``v`` occupies
        ``[starts[v], starts[v] + w(v))``.
    algorithm:
        Label of the producing algorithm (for reports).
    elapsed:
        Wall-clock seconds the producing algorithm took, if measured.
    """

    instance: IVCInstance
    starts: np.ndarray
    algorithm: str = ""
    elapsed: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        starts = np.ascontiguousarray(self.starts, dtype=np.int64)
        if len(starts) != self.instance.num_vertices:
            raise ValueError(
                f"expected {self.instance.num_vertices} starts, got {len(starts)}"
            )
        if starts.size and starts.min() < 0:
            raise ValueError("start colors must be non-negative")
        object.__setattr__(self, "starts", starts)

    # -------------------------------------------------------------- quantities
    @property
    def ends(self) -> np.ndarray:
        """Per-vertex interval ends ``start + w``."""
        return self.starts + self.instance.weights

    @property
    def maxcolor(self) -> int:
        """Number of colors used: ``max_v start(v) + w(v)`` (0 if no vertices)."""
        if self.instance.num_vertices == 0:
            return 0
        return int(self.ends.max())

    # -------------------------------------------------------------- validation
    def violations(self) -> np.ndarray:
        """All conflicting edges as an ``(k, 2)`` array (empty iff valid)."""
        edges = self.instance.graph.edges()
        if len(edges) == 0:
            return np.empty((0, 2), dtype=np.int64)
        mask = edge_overlaps(self.starts, self.instance.weights, edges)
        return edges[mask]

    def is_valid(self) -> bool:
        """Whether no two neighboring intervals intersect."""
        return len(self.violations()) == 0

    def check(self) -> "Coloring":
        """Raise :class:`ValueError` listing the first violations, else return self."""
        bad = self.violations()
        if len(bad):
            sample = ", ".join(f"({u}, {v})" for u, v in bad[:5])
            raise ValueError(
                f"invalid coloring ({len(bad)} conflicting edges; first: {sample})"
            )
        return self

    # ---------------------------------------------------------------- utility
    def with_algorithm(self, algorithm: str, elapsed: float = 0.0) -> "Coloring":
        """Return a copy relabeled with the producing algorithm."""
        return Coloring(
            instance=self.instance,
            starts=self.starts,
            algorithm=algorithm,
            elapsed=elapsed,
        )

    def interval_of(self, v: int) -> tuple[int, int]:
        """The ``(start, end)`` pair of vertex ``v``."""
        return int(self.starts[v]), int(self.starts[v] + self.instance.weights[v])

    def as_grid(self) -> np.ndarray:
        """Start colors reshaped to the stencil grid (stencil instances only)."""
        if self.instance.geometry is None:
            raise ValueError("instance has no stencil geometry")
        return self.instance.geometry.weights_as_grid(self.starts)
