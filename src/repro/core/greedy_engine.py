"""First-fit interval assignment — the primitive behind every greedy heuristic.

Section V.A of the paper: when a vertex ``v`` is picked, it receives the
lowest color interval of width ``w(v)`` that does not intersect the interval
of any already-colored neighbor.  Sorting the neighbor intervals by their
lower end lets a single scan find that interval, for a per-vertex cost of
``O(Γ(v) log Γ(v))`` and ``O(E log E)`` over the whole graph.

The module provides:

* :func:`first_fit_start` — the sort-and-scan primitive;
* :func:`first_fit_start_naive` — an O(maxcolor · Γ) conflict-jump variant
  kept for the engine ablation benchmark;
* :func:`greedy_color` — color all vertices in a given order;
* :func:`greedy_recolor_pass` — re-run first-fit on already-colored vertices
  (the post-optimization building block; never increases ``maxcolor``).

Zero-weight vertices occupy empty intervals: they are always assigned start 0
and never constrain anyone.

On stencil instances :func:`greedy_color` and :func:`greedy_recolor_pass`
dispatch to the wavefront-batched kernels of :mod:`repro.kernels.wavefront`
(identical starts, differentially tested) unless fast paths are disabled; the
per-vertex loops below remain the reference semantics.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.runtime.fastpath import resolve_fast_for

#: Sentinel start value for not-yet-colored vertices.
UNCOLORED = -1


def _check_permutation(order: np.ndarray, n: int) -> None:
    """Raise unless ``order`` is a permutation of ``0..n-1`` (O(n), no sort)."""
    if len(order) != n:
        raise ValueError("order must be a permutation of all vertices")
    if n == 0:
        return
    if int(order.min()) < 0 or int(order.max()) >= n:
        raise ValueError("order must be a permutation of all vertices")
    if int(np.bincount(order, minlength=n).max()) > 1:
        raise ValueError("order must be a permutation of all vertices")


def _is_permutation(order: np.ndarray, n: int) -> bool:
    """Cheap permutation test used to gate the wavefront kernels."""
    if len(order) != n:
        return False
    if n == 0:
        return True
    if int(order.min()) < 0 or int(order.max()) >= n:
        return False
    return int(np.bincount(order, minlength=n).max()) <= 1


def first_fit_start(nb_starts: Iterable[int], nb_ends: Iterable[int], w: int) -> int:
    """Lowest ``s >= 0`` such that ``[s, s + w)`` misses all neighbor intervals.

    Parameters
    ----------
    nb_starts, nb_ends:
        Starts and ends of the *non-empty* intervals already held by colored
        neighbors (parallel sequences, any order).
    w:
        Width of the interval to place; ``w == 0`` always fits at 0.

    Notes
    -----
    Implements the paper's sort-and-scan: neighbors sorted by lower end, one
    pass keeping the running frontier ``cur``; the first gap of length at
    least ``w`` wins.
    """
    if w == 0:
        return 0
    pairs = sorted(zip(nb_starts, nb_ends))
    cur = 0
    for a, b in pairs:
        if a - cur >= w:
            return cur
        if b > cur:
            cur = b
    return cur


def first_fit_start_naive(nb_starts, nb_ends, w: int) -> int:
    """Conflict-jump first fit (no sort): ablation baseline.

    Repeatedly tries the current candidate start and, on conflict, jumps to
    the end of a conflicting interval.  Worst case O(Γ²) per vertex versus
    O(Γ log Γ) for :func:`first_fit_start`; both return the same start.
    """
    if w == 0:
        return 0
    nb_starts = list(nb_starts)
    nb_ends = list(nb_ends)
    cur = 0
    moved = True
    while moved:
        moved = False
        for a, b in zip(nb_starts, nb_ends):
            if a < cur + w and cur < b:
                cur = b
                moved = True
    return cur


def _gather_neighbor_intervals(
    graph_indptr: np.ndarray,
    graph_indices: np.ndarray,
    starts: np.ndarray,
    weights: np.ndarray,
    v: int,
) -> tuple[list[int], list[int]]:
    """Starts/ends of the colored, non-empty neighbor intervals of ``v``."""
    nbs = graph_indices[graph_indptr[v] : graph_indptr[v + 1]]
    ns: list[int] = []
    ne: list[int] = []
    for u in nbs:
        s = starts[u]
        if s != UNCOLORED and weights[u] > 0:
            ns.append(s)
            ne.append(s + weights[u])
    return ns, ne


def greedy_color(
    instance: IVCInstance,
    order: np.ndarray,
    algorithm: str = "greedy",
    first_fit=first_fit_start,
    *,
    fast: Optional[bool] = None,
    check_order: bool = True,
) -> Coloring:
    """Color every vertex by first fit in the given order.

    Parameters
    ----------
    order:
        Permutation of ``0..n-1``; vertices are colored in this sequence.
    first_fit:
        First-fit primitive (swappable for the ablation benchmark).
    fast:
        Use the wavefront-batched kernel (stencil instances only; identical
        starts, differentially tested).  ``None`` follows the process-wide
        :func:`repro.kernels.config.fast_paths_enabled` switch and the
        auto-mode size threshold; generic graphs and custom ``first_fit``
        primitives always take the reference loop.
    check_order:
        Validate that ``order`` is a permutation (O(n)).  Callers generating
        orders by construction — tight recolor/search loops — pass ``False``.
    """
    n = instance.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if check_order:
        _check_permutation(order, n)
    elif len(order) != n:
        raise ValueError("order must be a permutation of all vertices")
    if (
        resolve_fast_for(fast, n)
        and instance.geometry is not None
        and first_fit is first_fit_start
    ):
        from repro.kernels.wavefront import wavefront_greedy_color

        starts = wavefront_greedy_color(instance, order)
        return Coloring(instance=instance, starts=starts, algorithm=algorithm)
    starts = np.full(n, UNCOLORED, dtype=np.int64)
    weights = instance.weights
    indptr = instance.graph.indptr
    indices = instance.graph.indices
    for v in order:
        v = int(v)
        ns, ne = _gather_neighbor_intervals(indptr, indices, starts, weights, v)
        starts[v] = first_fit(ns, ne, int(weights[v]))
    return Coloring(instance=instance, starts=starts, algorithm=algorithm)


def greedy_color_partial(
    instance: IVCInstance,
    starts: np.ndarray,
    vertices: Iterable[int],
    first_fit=first_fit_start,
) -> None:
    """First-fit color the given vertices in order, updating ``starts`` in place.

    Vertices already colored (``starts[v] != UNCOLORED``) are left untouched —
    the "greedy principle" of the clique-first heuristics.
    """
    weights = instance.weights
    indptr = instance.graph.indptr
    indices = instance.graph.indices
    for v in vertices:
        v = int(v)
        if starts[v] != UNCOLORED:
            continue
        ns, ne = _gather_neighbor_intervals(indptr, indices, starts, weights, v)
        starts[v] = first_fit(ns, ne, int(weights[v]))


def greedy_recolor_pass(
    instance: IVCInstance,
    starts: np.ndarray,
    order: Optional[np.ndarray] = None,
    first_fit=first_fit_start,
    *,
    fast: Optional[bool] = None,
) -> np.ndarray:
    """Re-run first fit on already-colored vertices, one at a time.

    Each vertex is momentarily removed and re-placed at the lowest interval
    compatible with its neighbors' *current* intervals.  Since its current
    start is itself compatible, no start ever increases, hence ``maxcolor``
    never increases either.  Returns a new starts array.

    Parameters
    ----------
    order:
        Recoloring sequence; defaults to vertex id order.
    """
    n = instance.num_vertices
    out = np.asarray(starts, dtype=np.int64).copy()
    if np.any(out == UNCOLORED):
        raise ValueError("recolor pass requires a fully colored instance")
    if order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = np.asarray(order, dtype=np.int64)
    if (
        resolve_fast_for(fast, n)
        and instance.geometry is not None
        and first_fit is first_fit_start
        and _is_permutation(order, n)
    ):
        from repro.kernels.wavefront import wavefront_recolor_pass

        return wavefront_recolor_pass(instance, out, order)
    weights = instance.weights
    indptr = instance.graph.indptr
    indices = instance.graph.indices
    for v in order:
        v = int(v)
        ns, ne = _gather_neighbor_intervals(indptr, indices, out, weights, v)
        out[v] = first_fit(ns, ne, int(weights[v]))
    return out
