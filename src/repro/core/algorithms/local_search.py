"""Local-search refinement of interval colorings (future-work extension).

The paper's conclusion asks for heuristics beating BDP/SGK; this module adds
a deterministic local search on top of any valid coloring:

* **compaction moves** — the greedy recoloring sweep (never worse);
* **critical-vertex kicks** — vertices whose interval *ends at* ``maxcolor``
  are forcibly re-placed at the lowest feasible start **above 0 … or**, when
  stuck, one blocking neighbor is lifted out of the way first (a 1-level
  ejection chain), followed by a compaction sweep.

The search is seeded deterministically, keeps the best coloring seen, and
stops after ``max_rounds`` rounds without improvement, so results are
reproducible.  Guarantee: output ``maxcolor`` ≤ input ``maxcolor``.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.post_opt import bdp_recolor_order
from repro.core.coloring import Coloring
from repro.core.greedy_engine import first_fit_start, greedy_recolor_pass
from repro.core.problem import IVCInstance


def _neighbor_intervals(instance: IVCInstance, starts: np.ndarray, v: int, skip: int = -1):
    """Starts/ends of v's colored positive neighbors, optionally skipping one."""
    ns, ne = [], []
    w = instance.weights
    for u in instance.graph.neighbors(v):
        u = int(u)
        if u == skip or w[u] == 0:
            continue
        ns.append(int(starts[u]))
        ne.append(int(starts[u] + w[u]))
    return ns, ne


def _maxcolor(instance: IVCInstance, starts: np.ndarray) -> int:
    if instance.num_vertices == 0:
        return 0
    return int((starts + instance.weights).max())


def _critical_vertices(instance: IVCInstance, starts: np.ndarray) -> np.ndarray:
    ends = starts + instance.weights
    top = ends.max(initial=0)
    return np.flatnonzero((ends == top) & (instance.weights > 0))


def _kick(instance: IVCInstance, starts: np.ndarray, v: int, rng: np.random.Generator) -> bool:
    """Try to pull critical vertex ``v`` below the current top color.

    First attempt a plain first-fit re-placement; if ``v`` is already at its
    first-fit position, lift one random blocking neighbor to the top and
    retry (ejection) — accepting only if the subsequent state is no worse.
    """
    w = int(instance.weights[v])
    top = _maxcolor(instance, starts)
    ns, ne = _neighbor_intervals(instance, starts, v)
    best = first_fit_start(ns, ne, w)
    if best < starts[v]:
        starts[v] = best
        return True
    # Ejection: move a blocking neighbor up, then retry v.  Blockers are
    # tried in a seeded random order until one yields a not-worse state.
    blockers = [
        int(u)
        for u in instance.graph.neighbors(v)
        if instance.weights[u] > 0 and starts[u] < starts[v]
    ]
    if not blockers:
        return False
    rng.shuffle(blockers)
    for u in blockers:
        saved_u, saved_v = int(starts[u]), int(starts[v])
        # Lift u to the lowest feasible position ignoring v, above v's start.
        nus, nue = _neighbor_intervals(instance, starts, u, skip=v)
        nus.append(0)
        nue.append(saved_v)  # forbid u from landing back under v's old start
        starts[u] = first_fit_start(nus, nue, int(instance.weights[u]))
        ns, ne = _neighbor_intervals(instance, starts, v)
        starts[v] = first_fit_start(ns, ne, w)
        if _maxcolor(instance, starts) > top or (
            starts[v] == saved_v and starts[u] == saved_u
        ):
            starts[u], starts[v] = saved_u, saved_v
            continue
        return True
    return False


def local_search(
    coloring: Coloring,
    max_rounds: int = 20,
    seed: int = 0,
) -> Coloring:
    """Refine a valid coloring; never returns a worse one.

    Each round: compaction sweep (clique-guided), then one kick attempt per
    critical vertex.  Stops after ``max_rounds`` rounds without improving
    ``maxcolor``.
    """
    from repro.core.greedy_engine import greedy_color

    instance = coloring.instance
    coloring.check()
    rng = np.random.default_rng(seed)
    starts = coloring.starts.copy()
    best = starts.copy()
    best_val = _maxcolor(instance, starts)
    stale = 0
    n = instance.num_vertices
    while stale < max_rounds:
        # Iterated greedy (Culberson, adapted to intervals): re-color from
        # scratch in ascending current-start order.  Each vertex's old start
        # stays feasible when its lower neighbors only moved down, so this
        # move is provably non-worsening.
        order = np.lexsort((rng.permutation(n), starts)).astype(np.int64)
        # Orders built by lexsort are permutations by construction, so the
        # O(n) re-validation is skipped inside the search loop.
        starts = greedy_color(instance, order, check_order=False).starts.copy()
        # Kick the vertices pinning maxcolor (may use 1-level ejections).
        for v in _critical_vertices(instance, starts):
            _kick(instance, starts, int(v), rng)
        starts = greedy_recolor_pass(
            instance, starts, rng.permutation(n).astype(np.int64)
        )
        val = _maxcolor(instance, starts)
        if val < best_val:
            best_val = val
            best = starts.copy()
            stale = 0
        else:
            stale += 1
            # Exploration: restart the walk from a noise-perturbed order;
            # may worsen the current state, the best is kept separately.
            noise = rng.integers(0, max(best_val // 8, 2), size=n)
            order = np.lexsort((rng.permutation(n), starts + noise)).astype(np.int64)
            starts = greedy_color(instance, order, check_order=False).starts.copy()
    return Coloring(
        instance=instance,
        starts=best,
        algorithm=f"{coloring.algorithm}+LS",
    ).check()
