"""Clique-first greedy heuristics: GKF and SGK (Section V.A).

The cliques of a 9-pt stencil are its 2×2 blocks (:math:`K_4`); of a 27-pt
stencil its 2×2×2 blocks (:math:`K_8`).  Since the heaviest clique usually
sets ``maxcolor``, both heuristics color cliques in non-increasing order of
total weight, leaving vertices already colored by an earlier clique untouched
(the "greedy principle").

* **GKF** colors the uncolored vertices of each clique in arbitrary
  (id) order.
* **SGK** is smarter inside each clique: in 2D it tries all ``4!``
  permutations of the clique's uncolored vertices and commits the one
  minimizing the clique's resulting top color; in 3D trying ``8!``
  permutations per block is too slow (as the paper found), so the uncolored
  vertices are simply sorted by non-increasing weight.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.core.coloring import Coloring
from repro.core.greedy_engine import (
    UNCOLORED,
    first_fit_start,
    greedy_color_partial,
)
from repro.core.problem import IVCInstance


def _sorted_blocks(instance: IVCInstance) -> np.ndarray:
    """Stencil blocks by non-increasing weight sum (stable)."""
    geo = instance.geometry
    if geo is None:
        raise ValueError("clique-first heuristics require a stencil geometry")
    blocks = geo.k4_blocks if instance.is_2d else geo.k8_blocks
    if len(blocks) == 0:
        return blocks
    sums = geo.block_weight_sums(instance.weights)
    return blocks[np.argsort(-sums, kind="stable")]


def _finish_leftovers(instance: IVCInstance, starts: np.ndarray) -> None:
    """Color any vertex not covered by a block (thin grids) in id order."""
    leftovers = np.flatnonzero(starts == UNCOLORED)
    if len(leftovers):
        greedy_color_partial(instance, starts, leftovers)


def greedy_largest_clique_first(instance: IVCInstance) -> Coloring:
    """Greedy Largest Clique First (GKF)."""
    starts = np.full(instance.num_vertices, UNCOLORED, dtype=np.int64)
    for block in _sorted_blocks(instance):
        greedy_color_partial(instance, starts, block)
    _finish_leftovers(instance, starts)
    return Coloring(instance=instance, starts=starts, algorithm="GKF")


def _clique_top_color(starts: np.ndarray, weights: np.ndarray, block: np.ndarray) -> int:
    """Highest end color used inside a block (the permutation score)."""
    return int((starts[block] + weights[block]).max())


def _best_permutation_fill(
    instance: IVCInstance, starts: np.ndarray, block: np.ndarray
) -> None:
    """Color a block's uncolored vertices with the best of all permutations.

    Tries every order of the block's currently uncolored vertices, greedily
    first-fitting each, and commits the order whose resulting top color over
    the whole block is smallest (first such order on ties).

    The neighbor-interval snapshot of each uncolored vertex is hoisted out of
    the ``4!``-permutation loop: intervals of already-committed neighbors are
    fixed for the whole block, so each permutation only patches in the few
    in-block assignments that vary (first fit sorts, so the append order is
    immaterial — identical results to rebuilding from CSR every time).
    """
    weights = instance.weights
    graph = instance.graph
    uncolored = [int(v) for v in block if starts[v] == UNCOLORED]
    if not uncolored:
        return
    in_block = set(uncolored)
    fixed: dict[int, tuple[list[int], list[int]]] = {}
    free: dict[int, list[tuple[int, int]]] = {}
    for v in uncolored:
        ns: list[int] = []
        ne: list[int] = []
        fr: list[tuple[int, int]] = []
        for u in graph.neighbors(v):
            u = int(u)
            w_u = int(weights[u])
            if u in in_block:
                if w_u > 0:
                    fr.append((u, w_u))
                continue
            s = int(starts[u])
            if s != UNCOLORED and w_u > 0:
                ns.append(s)
                ne.append(s + w_u)
        fixed[v] = (ns, ne)
        free[v] = fr
    colored_top = 0
    for v in block:
        v = int(v)
        if starts[v] != UNCOLORED:
            colored_top = max(colored_top, int(starts[v]) + int(weights[v]))
    best_assign: dict[int, int] | None = None
    best_score = None
    for perm in permutations(uncolored):
        assign: dict[int, int] = {}
        for v in perm:
            base_ns, base_ne = fixed[v]
            ns = list(base_ns)
            ne = list(base_ne)
            for u, w_u in free[v]:
                s = assign.get(u)
                if s is not None:
                    ns.append(s)
                    ne.append(s + w_u)
            assign[v] = first_fit_start(ns, ne, int(weights[v]))
        top = max(
            colored_top,
            max(assign[v] + int(weights[v]) for v in uncolored),
        )
        if best_score is None or top < best_score:
            best_score = top
            best_assign = assign
    assert best_assign is not None
    for v, s in best_assign.items():
        starts[v] = s


def smart_greedy_largest_clique_first(instance: IVCInstance) -> Coloring:
    """Smart Greedy Largest Clique First (SGK).

    2D: exhaustive ``4!`` permutation search per :math:`K_4`.
    3D: weight-sorted vertices per :math:`K_8` (the paper's shortcut — the
    ``8!`` search was too slow even for the authors).
    """
    starts = np.full(instance.num_vertices, UNCOLORED, dtype=np.int64)
    two_d = instance.is_2d
    for block in _sorted_blocks(instance):
        if two_d:
            _best_permutation_fill(instance, starts, block)
        else:
            uncolored = [int(v) for v in block if starts[v] == UNCOLORED]
            uncolored.sort(key=lambda v: (-int(instance.weights[v]), v))
            greedy_color_partial(instance, starts, uncolored)
    _finish_leftovers(instance, starts)
    return Coloring(instance=instance, starts=starts, algorithm="SGK")


def smart_greedy_weight_sorted(instance: IVCInstance) -> Coloring:
    """SGK variant using the 3D weight-sorted rule in any dimension.

    Ablation: quantifies what the 2D exhaustive permutation search buys over
    simple weight sorting inside each clique.
    """
    starts = np.full(instance.num_vertices, UNCOLORED, dtype=np.int64)
    for block in _sorted_blocks(instance):
        uncolored = [int(v) for v in block if starts[v] == UNCOLORED]
        uncolored.sort(key=lambda v: (-int(instance.weights[v]), v))
        greedy_color_partial(instance, starts, uncolored)
    _finish_leftovers(instance, starts)
    return Coloring(instance=instance, starts=starts, algorithm="SGK-ws")
