"""Greedy post-optimization (the "+ Post" of BDP, Section V.B).

BD colors by construction rather than by scarcity, so vertices can sit at
high colors with the low colors unused around them.  The fix is a greedy
recoloring sweep: each vertex is re-placed at the lowest interval compatible
with its neighbors' current intervals.  The sweep order matters; the paper
orders vertices by their cliques:

1. list every :math:`K_4` (2D) / :math:`K_8` (3D) block,
2. sort blocks by non-increasing total weight,
3. inside each block sort vertices by increasing current start,
4. keep each vertex's first occurrence.

:func:`post_optimize` exposes the same sweep for any coloring (used by the
ablation benchmarks to post-optimize other heuristics too).
"""

from __future__ import annotations

import numpy as np

from repro.core.coloring import Coloring
from repro.core.greedy_engine import greedy_recolor_pass
from repro.core.problem import IVCInstance


def bdp_recolor_order(
    instance: IVCInstance, starts: np.ndarray, *, fast: bool | None = None
) -> np.ndarray:
    """The clique-guided recoloring order of Section V.B.

    Returns a permutation of all vertices: block-by-block (blocks by
    non-increasing weight sum), vertices within a block by increasing current
    start, first occurrence kept; any vertex outside every block (thin grids)
    is appended in id order.  With fast paths enabled (the default) the
    block scan runs through the vectorized
    :func:`repro.kernels.chains.bdp_recolor_order_fast` — identical order.
    """
    geo = instance.geometry
    if geo is None:
        raise ValueError("the BDP order requires a stencil geometry")
    starts = np.asarray(starts, dtype=np.int64)
    blocks = geo.k4_blocks if instance.is_2d else geo.k8_blocks
    n = instance.num_vertices
    if len(blocks) == 0:
        return np.arange(n, dtype=np.int64)
    sums = geo.block_weight_sums(instance.weights)
    from repro.runtime.fastpath import resolve_fast_for

    if resolve_fast_for(fast, n):
        from repro.kernels.chains import bdp_recolor_order_fast

        return bdp_recolor_order_fast(blocks, sums, starts, n)
    block_order = np.argsort(-sums, kind="stable")
    seen = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    for b in block_order:
        block = blocks[b]
        inner = block[np.argsort(starts[block], kind="stable")]
        for v in inner:
            if not seen[v]:
                seen[v] = True
                order[pos] = v
                pos += 1
    for v in np.flatnonzero(~seen):
        order[pos] = v
        pos += 1
    return order


def post_optimize(coloring: Coloring, suffix: str = "+P") -> Coloring:
    """Apply the clique-guided recoloring sweep to any valid coloring.

    ``maxcolor`` never increases.  The result is labeled
    ``<algorithm><suffix>``.
    """
    instance = coloring.instance
    order = bdp_recolor_order(instance, coloring.starts)
    starts = greedy_recolor_pass(instance, coloring.starts, order)
    return Coloring(
        instance=instance,
        starts=starts,
        algorithm=f"{coloring.algorithm}{suffix}",
    )


def iterated_post_optimize(
    coloring: Coloring, max_passes: int = 10, suffix: str = "+IP"
) -> Coloring:
    """Repeat the recoloring sweep until a fixed point (Culberson-style
    iterated greedy, the post-optimization extension the paper cites).

    Each sweep recomputes the clique-guided order from the current starts and
    recolors; sweeps stop when no start moves or after ``max_passes``.
    ``maxcolor`` is non-increasing across sweeps.
    """
    instance = coloring.instance
    starts = np.asarray(coloring.starts, dtype=np.int64)
    for _ in range(max_passes):
        order = bdp_recolor_order(instance, starts)
        new = greedy_recolor_pass(instance, starts, order)
        if np.array_equal(new, starts):
            break
        starts = new
    return Coloring(
        instance=instance,
        starts=starts,
        algorithm=f"{coloring.algorithm}{suffix}",
    )
