"""Uniform access to the coloring heuristics, with timing.

The experiment drivers (Section VI suites, STKDE integration) run every
algorithm through :func:`color_with`, which times the call and stamps the
resulting :class:`~repro.core.coloring.Coloring` with its label and elapsed
seconds — mirroring how the paper reports quality and runtime together.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.core.algorithms.bipartite_decomposition import (
    bipartite_decomposition,
    bipartite_decomposition_post,
)
from repro.core.algorithms.clique_first import (
    greedy_largest_clique_first,
    smart_greedy_largest_clique_first,
)
from repro.core.algorithms.greedy import (
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
)
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance

#: All heuristics evaluated in Section VI, keyed by the paper's acronyms.
ALGORITHMS: Dict[str, Callable[[IVCInstance], Coloring]] = {
    "GLL": greedy_line_by_line,
    "GZO": greedy_zorder,
    "GLF": greedy_largest_first,
    "GKF": greedy_largest_clique_first,
    "SGK": smart_greedy_largest_clique_first,
    "BD": bipartite_decomposition,
    "BDP": bipartite_decomposition_post,
}


def _greedy_smallest_last(instance: IVCInstance) -> Coloring:
    from repro.core.greedy_engine import greedy_color
    from repro.core.orderings import smallest_last_order

    return greedy_color(instance, smallest_last_order(instance), algorithm="GSL")


def _glf_post(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.greedy import greedy_largest_first
    from repro.core.algorithms.post_opt import post_optimize

    return post_optimize(greedy_largest_first(instance), suffix="+P").with_algorithm("GLF+P")


def _bd_iterated(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.bipartite_decomposition import bipartite_decomposition
    from repro.core.algorithms.post_opt import iterated_post_optimize

    return iterated_post_optimize(bipartite_decomposition(instance)).with_algorithm("BD+IP")


def _sgk_weight_sorted(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.clique_first import smart_greedy_weight_sorted

    return smart_greedy_weight_sorted(instance)


#: Extension heuristics beyond the paper's seven: the Matula–Beck
#: smallest-last order (GSL), post-optimized GLF (GLF+P), iterated
#: fixed-point post-optimization of BD (BD+IP), and SGK's weight-sorted
#: shortcut applied everywhere (SGK-ws).
def _glf_local_search(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.greedy import greedy_largest_first
    from repro.core.algorithms.local_search import local_search

    return local_search(greedy_largest_first(instance), max_rounds=10).with_algorithm(
        "GLF+LS"
    )


def _bd_best_axis(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.bipartite_decomposition import (
        bipartite_decomposition_best_axis,
    )

    return bipartite_decomposition_best_axis(instance)


EXTENDED_ALGORITHMS: Dict[str, Callable[[IVCInstance], Coloring]] = {
    **ALGORITHMS,
    "GSL": _greedy_smallest_last,
    "GLF+P": _glf_post,
    "BD+IP": _bd_iterated,
    "SGK-ws": _sgk_weight_sorted,
    "BD-ax": _bd_best_axis,
    "GLF+LS": _glf_local_search,
}


def available_algorithms(instance: IVCInstance) -> list[str]:
    """Algorithm names applicable to this instance.

    All seven need a stencil geometry except GLL and GLF, which degrade
    gracefully to arbitrary graphs.
    """
    if instance.geometry is not None:
        return list(ALGORITHMS)
    return ["GLL", "GLF"]


def color_with(instance: IVCInstance, name: str) -> Coloring:
    """Run the named heuristic, timing it.

    Accepts both the paper's seven algorithms and the extension set.
    Returns the coloring stamped with ``algorithm=name`` and ``elapsed`` in
    seconds (``time.perf_counter``).
    """
    try:
        fn = EXTENDED_ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(EXTENDED_ALGORITHMS)}"
        ) from None
    t0 = time.perf_counter()
    coloring = fn(instance)
    elapsed = time.perf_counter() - t0
    return coloring.with_algorithm(name, elapsed=elapsed)
