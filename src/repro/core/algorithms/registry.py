"""Typed registry of the coloring heuristics, with timing.

The experiment drivers (Section VI suites, the batch engine, STKDE
integration) run every algorithm through :func:`color_with`, which times the
call and stamps the resulting :class:`~repro.core.coloring.Coloring` with its
label and elapsed seconds — mirroring how the paper reports quality and
runtime together.

Each heuristic is described by an :class:`AlgorithmSpec` (callable plus
capabilities: geometry requirement, supported stencil dimensions, paper-vs-
extension provenance) held in the process-wide :data:`REGISTRY`.  The legacy
``ALGORITHMS`` / ``EXTENDED_ALGORITHMS`` dicts remain available as live
mapping views over the registry, so existing callers keep working unchanged.
"""

from __future__ import annotations

import difflib
import time
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ExecutionContext

from repro.core.algorithms.bipartite_decomposition import (
    bipartite_decomposition,
    bipartite_decomposition_post,
)
from repro.core.algorithms.clique_first import (
    greedy_largest_clique_first,
    smart_greedy_largest_clique_first,
)
from repro.core.algorithms.greedy import (
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
)
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance

AlgorithmFn = Callable[[IVCInstance], Coloring]


class UnknownAlgorithmError(KeyError):
    """An algorithm name not present in the registry.

    Subclasses :class:`KeyError` so pre-existing ``except KeyError`` handlers
    keep working.  Carries the offending :attr:`name`, the :attr:`known`
    names, and a closest-match :attr:`suggestion` (or ``None``).
    """

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        self.known = sorted(known)
        matches = difflib.get_close_matches(name, self.known, n=1, cutoff=0.5)
        self.suggestion: str | None = matches[0] if matches else None
        hint = f" — did you mean {self.suggestion!r}?" if self.suggestion else ""
        super().__init__(
            f"unknown algorithm {name!r}{hint} (choose from {self.known})"
        )

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep the message readable.
        return self.args[0]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Capabilities and provenance of one registered heuristic.

    Attributes
    ----------
    name:
        The registry key (the paper's acronym for the seven Section V
        heuristics).
    fn:
        ``IVCInstance -> Coloring``, untimed; run it through
        :func:`color_with` to get timing and labeling.
    needs_geometry:
        Whether the heuristic requires a stencil geometry
        (``instance.geometry is not None``) or degrades gracefully to
        arbitrary conflict graphs.
    supported_dims:
        Stencil dimensionalities the heuristic handles (subset of ``(2, 3)``).
    is_extension:
        ``False`` for the paper's seven, ``True`` for this repo's extensions.
    description:
        One-line summary shown by ``stencil-ivc algorithms``.
    fast_fn:
        Optional vectorized fast-path implementation (see
        :mod:`repro.kernels.colorings`).  Must produce starts identical to
        ``fn`` — the differential test suite enforces this.  Used by
        :func:`color_with` when fast paths are enabled and the instance has a
        stencil geometry; generic graphs always fall back to ``fn``.
    """

    name: str
    fn: AlgorithmFn
    needs_geometry: bool = True
    supported_dims: tuple[int, ...] = (2, 3)
    is_extension: bool = False
    description: str = ""
    fast_fn: Optional[AlgorithmFn] = None

    def supports(self, instance: IVCInstance) -> bool:
        """Whether this heuristic can run on ``instance``."""
        if instance.geometry is None:
            return not self.needs_geometry
        if instance.is_2d:
            return 2 in self.supported_dims
        if instance.is_3d:
            return 3 in self.supported_dims
        return not self.needs_geometry  # pragma: no cover - unknown geometry


class Registry:
    """Ordered collection of :class:`AlgorithmSpec`, keyed by name.

    Iteration order is registration order, which for the default
    :data:`REGISTRY` is the paper's presentation order followed by the
    extensions.
    """

    def __init__(self) -> None:
        self._specs: dict[str, AlgorithmSpec] = {}

    # ------------------------------------------------------------- mutation
    def register(self, spec: AlgorithmSpec, *, replace: bool = False) -> AlgorithmSpec:
        """Add a spec; refuse silent overwrites unless ``replace=True``."""
        if not replace and spec.name in self._specs:
            raise ValueError(f"algorithm {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> AlgorithmSpec:
        """Remove and return a spec (raises :class:`UnknownAlgorithmError`)."""
        spec = self.get(name)
        del self._specs[name]
        return spec

    # -------------------------------------------------------------- lookup
    def get(self, name: str) -> AlgorithmSpec:
        """The spec registered under ``name``.

        Raises
        ------
        UnknownAlgorithmError
            If no such algorithm exists; the error carries a closest-match
            suggestion computed with :func:`difflib.get_close_matches`.
        """
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownAlgorithmError(name, self._specs) from None

    def select(
        self, instance: IVCInstance, *, include_extensions: bool = False
    ) -> list[str]:
        """Names of the algorithms applicable to ``instance``.

        Capability filtering via :meth:`AlgorithmSpec.supports`; extensions
        are excluded by default so the result matches the paper's seven on
        stencil instances.
        """
        return [
            spec.name
            for spec in self._specs.values()
            if (include_extensions or not spec.is_extension) and spec.supports(instance)
        ]

    def names(self, *, include_extensions: bool = True) -> list[str]:
        """All registered names, optionally restricted to the paper set."""
        return [
            s.name
            for s in self._specs.values()
            if include_extensions or not s.is_extension
        ]

    def specs(self, *, include_extensions: bool = True) -> list[AlgorithmSpec]:
        """All registered specs, in registration order."""
        return [
            s
            for s in self._specs.values()
            if include_extensions or not s.is_extension
        ]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


class _RegistryView(Mapping):
    """Live ``{name: fn}`` mapping over a predicate-filtered registry slice.

    Backs the legacy ``ALGORITHMS`` / ``EXTENDED_ALGORITHMS`` module globals:
    algorithms registered (or unregistered) later show up immediately.
    """

    def __init__(
        self, registry: Registry, predicate: Callable[[AlgorithmSpec], bool]
    ) -> None:
        self._registry = registry
        self._predicate = predicate

    def __getitem__(self, name: str) -> AlgorithmFn:
        spec = self._registry._specs.get(name)
        if spec is None or not self._predicate(spec):
            raise UnknownAlgorithmError(name, iter(self))
        return spec.fn

    def __iter__(self) -> Iterator[str]:
        return (
            s.name for s in self._registry._specs.values() if self._predicate(s)
        )

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{{{', '.join(f'{n!r}: ...' for n in self)}}}"


# --------------------------------------------------------------- extensions
def _greedy_smallest_last(instance: IVCInstance) -> Coloring:
    from repro.core.greedy_engine import greedy_color
    from repro.core.orderings import smallest_last_order

    return greedy_color(instance, smallest_last_order(instance), algorithm="GSL")


def _glf_post(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.greedy import greedy_largest_first
    from repro.core.algorithms.post_opt import post_optimize

    return post_optimize(greedy_largest_first(instance), suffix="+P").with_algorithm("GLF+P")


def _bd_iterated(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.bipartite_decomposition import bipartite_decomposition
    from repro.core.algorithms.post_opt import iterated_post_optimize

    return iterated_post_optimize(bipartite_decomposition(instance)).with_algorithm("BD+IP")


def _sgk_weight_sorted(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.clique_first import smart_greedy_weight_sorted

    return smart_greedy_weight_sorted(instance)


def _glf_local_search(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.greedy import greedy_largest_first
    from repro.core.algorithms.local_search import local_search

    return local_search(greedy_largest_first(instance), max_rounds=10).with_algorithm(
        "GLF+LS"
    )


def _bd_best_axis(instance: IVCInstance) -> Coloring:
    from repro.core.algorithms.bipartite_decomposition import (
        bipartite_decomposition_best_axis,
    )

    return bipartite_decomposition_best_axis(instance)


def _lazy_fast(attr: str) -> AlgorithmFn:
    """A fast-path binding resolved from :mod:`repro.kernels.colorings` at
    call time.

    Keeps ``core`` free of module-level imports of the (higher-layer)
    kernels package — the layering lint enforces that — while ``fast_fn is
    not None`` still advertises the binding to capability probes like the
    ``stencil-ivc algorithms`` fast-path column.
    """

    def call(instance: IVCInstance) -> Coloring:
        from repro.kernels import colorings

        return getattr(colorings, attr)(instance)

    call.__name__ = attr
    call.__qualname__ = attr
    return call


#: The process-wide default registry: the paper's seven heuristics in
#: presentation order, then this repo's extensions (the Matula–Beck
#: smallest-last order GSL, post-optimized GLF, iterated fixed-point
#: post-optimization of BD, SGK's weight-sorted shortcut, best-axis BD, and
#: local search on GLF).
REGISTRY = Registry()

for _spec in (
    AlgorithmSpec(
        "GLL", greedy_line_by_line, needs_geometry=False,
        description="greedy, line-by-line (lexicographic) order",
        fast_fn=_lazy_fast("gll_fast"),
    ),
    AlgorithmSpec(
        "GZO", greedy_zorder,
        description="greedy, Morton Z-order traversal",
        fast_fn=_lazy_fast("gzo_fast"),
    ),
    AlgorithmSpec(
        "GLF", greedy_largest_first, needs_geometry=False,
        description="greedy, heaviest-vertex-first order",
        fast_fn=_lazy_fast("glf_fast"),
    ),
    AlgorithmSpec(
        "GKF", greedy_largest_clique_first,
        description="greedy, heaviest-clique-block-first order",
    ),
    AlgorithmSpec(
        "SGK", smart_greedy_largest_clique_first,
        description="GKF with weight-sorted stacking inside each clique",
    ),
    AlgorithmSpec(
        "BD", bipartite_decomposition,
        description="bipartite decomposition (2-approx 2D / 4-approx 3D)",
        fast_fn=_lazy_fast("bd_fast"),
    ),
    AlgorithmSpec(
        "BDP", bipartite_decomposition_post,
        description="BD followed by the recoloring post-optimization sweep",
        fast_fn=_lazy_fast("bdp_fast"),
    ),
    AlgorithmSpec(
        "GSL", _greedy_smallest_last, needs_geometry=False, is_extension=True,
        description="greedy, Matula–Beck smallest-last order",
        fast_fn=_lazy_fast("gsl_fast"),
    ),
    AlgorithmSpec(
        "GLF+P", _glf_post, is_extension=True,
        description="GLF followed by the BDP post-optimization sweep",
    ),
    AlgorithmSpec(
        "BD+IP", _bd_iterated, is_extension=True,
        description="BD with post-optimization iterated to a fixed point",
    ),
    AlgorithmSpec(
        "SGK-ws", _sgk_weight_sorted, is_extension=True,
        description="SGK's weight-sorted stacking applied to every block",
    ),
    AlgorithmSpec(
        "BD-ax", _bd_best_axis, is_extension=True,
        description="BD across all decomposition axes, keeping the best",
    ),
    AlgorithmSpec(
        "GLF+LS", _glf_local_search, needs_geometry=False, is_extension=True,
        description="GLF improved by iterated-greedy local search",
    ),
):
    REGISTRY.register(_spec)


#: All heuristics evaluated in Section VI, keyed by the paper's acronyms
#: (live view over :data:`REGISTRY`).
ALGORITHMS: Mapping[str, AlgorithmFn] = _RegistryView(
    REGISTRY, lambda s: not s.is_extension
)

#: Paper heuristics plus this repo's extensions (live view over
#: :data:`REGISTRY`).
EXTENDED_ALGORITHMS: Mapping[str, AlgorithmFn] = _RegistryView(
    REGISTRY, lambda s: True
)


def available_algorithms(
    instance: IVCInstance, *, include_extensions: bool = False
) -> list[str]:
    """Algorithm names applicable to this instance.

    Pure capability filtering over the registry: a heuristic qualifies when
    its :class:`AlgorithmSpec` supports the instance's geometry (or lack
    thereof) and dimensionality.
    """
    return REGISTRY.select(instance, include_extensions=include_extensions)


def color_with(
    instance: IVCInstance,
    name: str,
    *,
    fast: Optional[bool] = None,
    context: Optional["ExecutionContext"] = None,
) -> Coloring:
    """Run the named heuristic, timing it.

    Accepts both the paper's seven algorithms and the extension set.
    Returns the coloring stamped with ``algorithm=name`` and ``elapsed`` in
    seconds (``time.perf_counter``).

    Parameters
    ----------
    fast:
        Use the vectorized kernel fast path when the spec declares one and
        the instance has a stencil geometry (automatic fallback to the
        reference implementation otherwise).  ``None`` (default) follows the
        context's :class:`~repro.runtime.config.RuntimeConfig` fast-path
        mode (and the legacy process switch) with the auto-mode size
        threshold applied, so miniature instances keep the reference loops;
        the resolved value is also scoped over the whole call, so
        ``fast=False`` disables the kernels inside every primitive the
        algorithm touches.
    context:
        The :class:`~repro.runtime.context.ExecutionContext` governing this
        call (fast-path config, substrate caches, metrics).  ``None`` uses
        the ambient context; an explicit one is made current for the
        duration of the call.

    Raises
    ------
    UnknownAlgorithmError
        If ``name`` is not registered (with a closest-match suggestion).
    """
    from repro.runtime.context import get_context, use_context
    from repro.runtime.fastpath import fast_paths, resolve_fast_for

    ctx = context if context is not None else get_context()
    spec = REGISTRY.get(name)
    use_fast = resolve_fast_for(fast, instance.num_vertices, context=ctx)
    fn = spec.fn
    if use_fast and spec.fast_fn is not None and instance.geometry is not None:
        fn = spec.fast_fn
    ctx.metrics.counter("registry.dispatch").inc()
    ctx.metrics.counter(
        "registry.dispatch_fast" if use_fast else "registry.dispatch_reference"
    ).inc()
    t0 = time.perf_counter()
    with use_context(ctx), fast_paths(use_fast):
        coloring = fn(instance)
    elapsed = time.perf_counter() - t0
    ctx.metrics.histogram("registry.color_seconds").observe(elapsed)
    return coloring.with_algorithm(name, elapsed=elapsed)
