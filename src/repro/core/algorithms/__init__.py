"""The heuristics of Section V behind a uniform registry.

========================  =============================================
Name                      Algorithm
========================  =============================================
``GLL``                   Greedy Line-by-Line
``GZO``                   Greedy Z-Order
``GLF``                   Greedy Largest First
``GKF``                   Greedy Largest Clique First
``SGK``                   Smart Greedy Largest Clique First
``BD``                    Bipartite Decomposition (2-approx 2D / 4-approx 3D)
``BDP``                   Bipartite Decomposition + Post-optimization
========================  =============================================

Use :func:`color_with` to run one by name with timing, or call the
individual functions directly.
"""

from repro.core.algorithms.bipartite_decomposition import (
    bipartite_decomposition,
    bipartite_decomposition_post,
    chain_color,
)
from repro.core.algorithms.clique_first import (
    greedy_largest_clique_first,
    smart_greedy_largest_clique_first,
)
from repro.core.algorithms.greedy import (
    greedy_largest_first,
    greedy_line_by_line,
    greedy_zorder,
)
from repro.core.algorithms.post_opt import bdp_recolor_order, post_optimize
from repro.core.algorithms.registry import (
    ALGORITHMS,
    EXTENDED_ALGORITHMS,
    REGISTRY,
    AlgorithmSpec,
    Registry,
    UnknownAlgorithmError,
    available_algorithms,
    color_with,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "EXTENDED_ALGORITHMS",
    "REGISTRY",
    "Registry",
    "UnknownAlgorithmError",
    "available_algorithms",
    "bdp_recolor_order",
    "bipartite_decomposition",
    "bipartite_decomposition_post",
    "chain_color",
    "color_with",
    "greedy_largest_clique_first",
    "greedy_largest_first",
    "greedy_line_by_line",
    "greedy_zorder",
    "post_optimize",
    "smart_greedy_largest_clique_first",
]
