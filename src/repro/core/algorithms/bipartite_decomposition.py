"""Bipartite Decomposition — the approximation algorithm (Section V.B).

2D construction: each of the ``Y`` rows is a chain, colored optimally by the
bipartite algorithm of Section III.B; with ``RC`` the largest row optimum
(a lower bound on ``maxcolor*``, being the optimum of a subgraph), even rows
keep their colors in ``[0, RC)`` and odd rows are shifted to ``[RC, 2RC)``.
Hence ``maxcolor <= 2 RC <= 2 maxcolor*`` — a 2-approximation.

3D construction: each ``z`` layer (a 9-pt stencil) is colored with the 2D
2-approximation; the layer graph is a chain, so shifting odd layers doubles
again — a 4-approximation.

``BDP`` re-compacts the BD coloring with a clique-guided greedy recoloring
pass (see :mod:`repro.core.algorithms.post_opt`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.coloring import Coloring
from repro.core.greedy_engine import greedy_recolor_pass
from repro.core.problem import IVCInstance
from repro.runtime.fastpath import resolve_fast_for


def chain_color(weights: np.ndarray) -> tuple[np.ndarray, int]:
    """Optimal interval coloring of a chain (path graph).

    Even positions start at 0; odd positions end at ``RC``, the maximum
    weight of two consecutive vertices (the chain's optimum).  Returns
    ``(starts, RC)``.  A single vertex is colored ``[0, w)`` with
    ``RC = w``.
    """
    w = np.asarray(weights, dtype=np.int64)
    n = len(w)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0
    if n == 1:
        return np.zeros(1, dtype=np.int64), int(w[0])
    rc = int(max(int(w.max()), int((w[:-1] + w[1:]).max())))
    starts = np.zeros(n, dtype=np.int64)
    odd = np.arange(n) % 2 == 1
    starts[odd] = rc - w[odd]
    return starts, rc


def _bd_starts_2d(instance: IVCInstance) -> tuple[np.ndarray, int]:
    """BD start vector and the row lower bound ``RC`` for a 2D instance."""
    geo = instance.geometry
    grid = instance.weight_grid()  # shape (X, Y); row j is grid[:, j]
    X, Y = geo.shape
    row_starts = np.empty((X, Y), dtype=np.int64)
    rc = 0
    for j in range(Y):
        starts_j, rc_j = chain_color(grid[:, j])
        row_starts[:, j] = starts_j
        rc = max(rc, rc_j)
    odd_rows = (np.arange(Y) % 2 == 1)[None, :]
    starts = row_starts + rc * odd_rows
    return starts.ravel(), rc


def _bd_starts_3d(instance: IVCInstance) -> tuple[np.ndarray, int]:
    """BD start vector and the layer bound ``LC`` for a 3D instance.

    ``LC`` is the maximum over layers of the 2D BD ``maxcolor`` (at most
    ``2 maxcolor*``), so the total ``2 LC <= 4 maxcolor*``.
    """
    geo = instance.geometry
    grid = instance.weight_grid()  # shape (X, Y, Z); layer k is grid[:, :, k]
    X, Y, Z = geo.shape
    layer_grid = geo.layer_grid()
    all_starts = np.empty((X, Y, Z), dtype=np.int64)
    lc = 0
    for k in range(Z):
        layer_instance = IVCInstance(
            graph=layer_grid.csr, weights=grid[:, :, k].ravel(), geometry=layer_grid
        )
        layer_starts, _rc = _bd_starts_2d(layer_instance)
        layer_starts = layer_starts.reshape(X, Y)
        all_starts[:, :, k] = layer_starts
        ends = layer_starts + grid[:, :, k]
        lc = max(lc, int(ends.max(initial=0)))
    odd_layers = (np.arange(Z) % 2 == 1)[None, None, :]
    starts = all_starts + lc * odd_layers
    return starts.ravel(), lc


def bd_with_bound(
    instance: IVCInstance, *, fast: Optional[bool] = None
) -> tuple[Coloring, int]:
    """Run BD and also return the decomposition bound (``RC`` in 2D, ``LC`` in 3D).

    In 2D the returned bound is a certified lower bound on ``maxcolor*``;
    the approximation tests rely on ``maxcolor(BD) <= 2 * RC``.  With fast
    paths enabled (the default) the per-row/per-layer loops run through the
    vectorized chain kernel of :mod:`repro.kernels.chains` — identical
    starts, differentially tested.
    """
    if not (instance.is_2d or instance.is_3d):
        raise ValueError("Bipartite Decomposition requires a stencil geometry")
    if resolve_fast_for(fast, instance.num_vertices):
        from repro.kernels.chains import bd_starts_2d, bd_starts_3d

        kernel = bd_starts_2d if instance.is_2d else bd_starts_3d
        grid_starts, bound = kernel(instance.weight_grid())
        starts = grid_starts.ravel()
    elif instance.is_2d:
        starts, bound = _bd_starts_2d(instance)
    else:
        starts, bound = _bd_starts_3d(instance)
    return Coloring(instance=instance, starts=starts, algorithm="BD"), bound


def bipartite_decomposition(instance: IVCInstance) -> Coloring:
    """Bipartite Decomposition (BD): 2-approx on 2DS-IVC, 4-approx on 3DS-IVC."""
    coloring, _bound = bd_with_bound(instance)
    return coloring


def bipartite_decomposition_best_axis(instance: IVCInstance) -> Coloring:
    """BD with the better of the two row orientations (extension).

    The paper decomposes along one fixed axis; transposing the grid swaps
    which dimension forms the chains, and the two orientations can give
    different ``RC``.  This variant runs both and keeps the smaller
    ``maxcolor`` — same 2-approximation guarantee, never worse than BD up to
    the orientation choice.  2D only (3D layers already decompose twice).
    """
    if not instance.is_2d:
        return bipartite_decomposition(instance)
    direct, _ = bd_with_bound(instance)
    transposed_instance = IVCInstance.from_grid_2d(
        instance.weight_grid().T, name=instance.name
    )
    swapped, _ = bd_with_bound(transposed_instance)
    if swapped.maxcolor < direct.maxcolor:
        starts = swapped.starts.reshape(transposed_instance.geometry.shape).T.ravel()
        return Coloring(instance=instance, starts=starts, algorithm="BD-ax")
    return direct.with_algorithm("BD-ax")


def bipartite_decomposition_post(instance: IVCInstance) -> Coloring:
    """Bipartite Decomposition + Post-optimization (BDP).

    Recolors the BD solution one vertex at a time by first fit, in the
    clique-guided order of Section V.B: blocks by non-increasing weight sum,
    vertices within a block by increasing current start.  Recoloring never
    raises a start, so ``maxcolor(BDP) <= maxcolor(BD)`` and the
    approximation guarantee carries over.
    """
    from repro.core.algorithms.post_opt import bdp_recolor_order

    coloring, _bound = bd_with_bound(instance)
    order = bdp_recolor_order(instance, coloring.starts)
    starts = greedy_recolor_pass(instance, coloring.starts, order)
    return Coloring(instance=instance, starts=starts, algorithm="BDP")
