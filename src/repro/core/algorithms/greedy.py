"""Order-based greedy heuristics: GLL, GZO, GLF (Section V.A)."""

from __future__ import annotations

from repro.core.coloring import Coloring
from repro.core.greedy_engine import greedy_color
from repro.core.orderings import largest_first_order, line_by_line_order, zorder_order
from repro.core.problem import IVCInstance


def greedy_line_by_line(instance: IVCInstance) -> Coloring:
    """Greedy Line-by-Line (GLL): first fit scanning lines then planes.

    A geometric order — a vertex is never colored after all 8 (or 26) of its
    neighbors, which sidesteps the greedy worst case of Lemma 7.
    """
    return greedy_color(instance, line_by_line_order(instance), algorithm="GLL")


def greedy_zorder(instance: IVCInstance) -> Coloring:
    """Greedy Z-Order (GZO): first fit along the Morton curve.

    Favors no particular grid dimension; the recursive traversal keeps
    spatially close vertices close in the coloring sequence.
    """
    return greedy_color(instance, zorder_order(instance), algorithm="GZO")


def greedy_largest_first(instance: IVCInstance) -> Coloring:
    """Greedy Largest First (GLF): first fit by non-increasing weight.

    Heavy vertices are colored before their neighborhoods fragment, so their
    (expensive) intervals stay low.  The paper's quality/speed sweet spot on
    3D instances.
    """
    return greedy_color(instance, largest_first_order(instance), algorithm="GLF")
