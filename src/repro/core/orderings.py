"""Vertex orderings for greedy coloring (Section V.A).

Two families, per the paper's analysis of the greedy worst case:

* **geometric** orders (line-by-line, Z-order) ensure a vertex is rarely
  colored after all of its neighbors;
* **weight** orders (largest first) color heavy vertices before their
  neighborhoods fill with awkwardly spaced intervals.

Clique-driven orders (GKF/SGK) interleave ordering and coloring and live in
:mod:`repro.core.algorithms.clique_first`.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import IVCInstance
from repro.stencil.zorder import morton_argsort_2d, morton_argsort_3d


def identity_order(n: int) -> np.ndarray:
    """Vertices in id order."""
    return np.arange(n, dtype=np.int64)


def line_by_line_order(instance: IVCInstance) -> np.ndarray:
    """Scan lines, then planes (GLL).  Falls back to id order off-stencil."""
    if instance.geometry is None:
        return identity_order(instance.num_vertices)
    return instance.geometry.line_by_line_order()


def zorder_order(instance: IVCInstance) -> np.ndarray:
    """Morton (Z-order) traversal of the stencil grid (GZO)."""
    geo = instance.geometry
    if geo is None:
        raise ValueError("Z-order requires a stencil geometry")
    if instance.is_2d:
        return morton_argsort_2d(geo.shape)
    return morton_argsort_3d(geo.shape)


def largest_first_order(instance: IVCInstance) -> np.ndarray:
    """Vertices by non-increasing weight, ties by id (GLF)."""
    return np.argsort(-instance.weights, kind="stable").astype(np.int64)


def random_order(instance: IVCInstance, seed: int = 0) -> np.ndarray:
    """Uniformly random permutation (baseline for ordering ablations)."""
    rng = np.random.default_rng(seed)
    return rng.permutation(instance.num_vertices).astype(np.int64)


def smallest_last_order(instance: IVCInstance) -> np.ndarray:
    """Matula–Beck smallest-last ordering, weighted.

    Classic-coloring extension from the paper's related work: repeatedly
    remove the vertex whose *remaining weighted degree* (sum of uncolored
    neighbors' weights plus its own) is smallest; color in reverse removal
    order.  For interval coloring this tends to leave the heaviest, most
    constrained vertices for first placement.
    """
    import heapq

    n = instance.num_vertices
    w = instance.weights
    graph = instance.graph
    score = np.empty(n, dtype=np.int64)
    for v in range(n):
        nbs = graph.neighbors(v)
        score[v] = w[v] + int(w[nbs].sum())
    removed = np.zeros(n, dtype=bool)
    # Ties broken toward removing lighter vertices first, so heavy vertices
    # surface at the front of the coloring order.
    heap = [(int(score[v]), int(w[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order = np.empty(n, dtype=np.int64)
    pos = n - 1
    while heap:
        s, _wv, v = heapq.heappop(heap)
        if removed[v] or s != score[v]:
            continue  # stale entry
        removed[v] = True
        order[pos] = v
        pos -= 1
        for u in graph.neighbors(v):
            u = int(u)
            if not removed[u]:
                score[u] -= int(w[v])
                heapq.heappush(heap, (int(score[u]), int(w[u]), u))
    return order
