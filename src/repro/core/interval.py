"""Half-open color intervals.

A vertex ``v`` with start color ``s`` and weight ``w`` occupies the half-open
interval ``[s, s + w)`` (Definition 1 of the paper).  Zero-weight vertices
occupy the empty interval, which intersects nothing — they can always be
colored at start 0 and never constrain their neighbors.

These helpers are deliberately tiny: everything operates on integers or numpy
arrays so the hot paths stay vectorizable.
"""

from __future__ import annotations

import numpy as np


def intervals_overlap(start_a: int, w_a: int, start_b: int, w_b: int) -> bool:
    """Whether ``[start_a, start_a + w_a)`` and ``[start_b, start_b + w_b)`` intersect.

    Empty intervals (zero weight) never intersect anything.
    """
    if w_a == 0 or w_b == 0:
        return False
    return start_a < start_b + w_b and start_b < start_a + w_a


def overlap_matrix(starts: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Pairwise boolean overlap matrix for a set of intervals (vectorized).

    Entry ``(u, v)`` is True iff the intervals of ``u`` and ``v`` intersect;
    the diagonal is True for every non-empty interval.  Intended for
    exhaustive validation in tests, not for hot paths.
    """
    starts = np.asarray(starts, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    ends = starts + weights
    lt = starts[:, None] < ends[None, :]
    nonempty = weights > 0
    return lt & lt.T & nonempty[:, None] & nonempty[None, :]


def edge_overlaps(
    starts: np.ndarray, weights: np.ndarray, edges: np.ndarray
) -> np.ndarray:
    """Boolean mask of edges whose endpoint intervals intersect (vectorized).

    Parameters
    ----------
    edges:
        ``(m, 2)`` array of vertex-id pairs.
    """
    starts = np.asarray(starts, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.int64)
    if len(edges) == 0:
        return np.zeros(0, dtype=bool)
    u = edges[:, 0]
    v = edges[:, 1]
    ends = starts + weights
    return (
        (starts[u] < ends[v])
        & (starts[v] < ends[u])
        & (weights[u] > 0)
        & (weights[v] > 0)
    )


def interval_str(start: int, weight: int) -> str:
    """Human-readable rendering ``[s, e)`` used in reports and examples."""
    return f"[{start}, {start + weight})"
