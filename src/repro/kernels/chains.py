"""Row/layer chain kernels: vectorized Bipartite Decomposition assembly.

The reference BD colors one chain (row) per Python iteration via
``chain_color`` and, in 3D, one layer per iteration on top of that.  All
chains of a grid are independent, so the whole decomposition collapses into a
handful of whole-grid numpy expressions:

* per-chain optimum ``RC_j = max(max w, max consecutive-pair sum)`` down every
  chain at once,
* even positions start at 0, odd positions end at their chain's ``RC_j``,
* odd chains shift by the global ``RC`` (and odd layers by the global ``LC``).

The results are bit-identical to the sequential construction — same local
``RC_j`` per chain, same global shifts — which the differential tests assert.
"""

from __future__ import annotations

import numpy as np


def bd_starts_2d(grid: np.ndarray) -> tuple[np.ndarray, int]:
    """Vectorized 2D Bipartite Decomposition.

    ``grid`` is the ``(X, Y)`` weight grid; chain ``j`` is ``grid[:, j]``.
    Returns ``(starts, RC)`` with ``starts`` shaped like ``grid`` and ``RC``
    the largest per-chain optimum (the certified lower bound).
    """
    w = np.asarray(grid, dtype=np.int64)
    X, Y = w.shape
    rc_j = w.max(axis=0, initial=0)
    if X > 1:
        rc_j = np.maximum(rc_j, (w[:-1, :] + w[1:, :]).max(axis=0))
    starts = np.zeros((X, Y), dtype=np.int64)
    odd_i = np.arange(X) % 2 == 1
    starts[odd_i, :] = rc_j[None, :] - w[odd_i, :]
    rc = int(rc_j.max(initial=0))
    odd_j = np.arange(Y) % 2 == 1
    starts[:, odd_j] += rc
    return starts, rc


def bd_starts_3d(grid: np.ndarray) -> tuple[np.ndarray, int]:
    """Vectorized 3D Bipartite Decomposition.

    Each ``z`` layer gets the 2D construction with its own per-layer ``RC``;
    odd layers then shift by the global layer bound ``LC`` (the maximum layer
    ``maxcolor``).  Returns ``(starts, LC)``.
    """
    w = np.asarray(grid, dtype=np.int64)
    X, Y, Z = w.shape
    rc_jk = w.max(axis=0, initial=0)  # (Y, Z) per-chain optima
    if X > 1:
        rc_jk = np.maximum(rc_jk, (w[:-1, :, :] + w[1:, :, :]).max(axis=0))
    starts = np.zeros((X, Y, Z), dtype=np.int64)
    odd_i = np.arange(X) % 2 == 1
    starts[odd_i, :, :] = rc_jk[None, :, :] - w[odd_i, :, :]
    rc_k = rc_jk.max(axis=0, initial=0)  # (Z,) per-layer RC
    odd_j = np.arange(Y) % 2 == 1
    starts[:, odd_j, :] += rc_k[None, None, :]
    ends = starts + w
    lc = int(ends.max(initial=0))
    odd_k = np.arange(Z) % 2 == 1
    starts[:, :, odd_k] += lc
    return starts, lc


def bdp_recolor_order_fast(
    blocks: np.ndarray, block_weight_sums: np.ndarray, starts: np.ndarray, n: int
) -> np.ndarray:
    """Vectorized clique-guided recolor order (Section V.B).

    Blocks by non-increasing weight sum (stable), vertices within a block by
    increasing current start (stable), first occurrence kept, block-less
    vertices appended in id order — identical to the reference Python loop.
    """
    if len(blocks) == 0:
        return np.arange(n, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    ordered = blocks[np.argsort(-block_weight_sums, kind="stable")]
    inner = np.argsort(starts[ordered], axis=1, kind="stable")
    flat = np.take_along_axis(ordered, inner, axis=1).ravel()
    _, first = np.unique(flat, return_index=True)
    order = flat[np.sort(first)]
    if len(order) < n:
        seen = np.zeros(n, dtype=bool)
        seen[order] = True
        order = np.concatenate([order, np.flatnonzero(~seen)])
    return order.astype(np.int64)
