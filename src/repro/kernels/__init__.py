"""Vectorized stencil coloring kernels (the repo's perf subsystem).

Three layers, all differentially tested to be bit-identical to the reference
Python loops in :mod:`repro.core`:

* :mod:`repro.kernels.substrate` — per-shape LRU caches of geometry, CSR
  adjacency, padded neighbor tables, and wavefront schedules;
* :mod:`repro.kernels.wavefront` — wavefront-batched first-fit coloring and
  recoloring (the ``O(E log E)`` primitive, without the per-vertex loop);
* :mod:`repro.kernels.chains` — vectorized Bipartite Decomposition chain
  assembly and the clique-guided recolor order.

The process-wide switch lives in :mod:`repro.kernels.config`
(``REPRO_FAST_PATHS=0`` disables everything); the registry wrappers in
:mod:`repro.kernels.colorings` bind the kernels to algorithm names; and
:mod:`repro.kernels.bench` measures kernel-vs-reference speedups
(``stencil-ivc bench-kernels``).
"""

from repro.kernels.config import (
    MIN_AUTO_SIZE,
    fast_paths,
    fast_paths_enabled,
    resolve_fast,
    resolve_fast_for,
    set_fast_paths,
)
from repro.kernels.substrate import (
    Substrate,
    analytic_levels,
    cache_sizes,
    clear_caches,
    get_substrate,
    shared_geometry_2d,
    shared_geometry_3d,
)
from repro.kernels.wavefront import wavefront_greedy_color, wavefront_recolor_pass

__all__ = [
    "MIN_AUTO_SIZE",
    "Substrate",
    "analytic_levels",
    "cache_sizes",
    "clear_caches",
    "fast_paths",
    "fast_paths_enabled",
    "get_substrate",
    "resolve_fast",
    "resolve_fast_for",
    "set_fast_paths",
    "shared_geometry_2d",
    "shared_geometry_3d",
    "wavefront_greedy_color",
    "wavefront_recolor_pass",
]
