"""Shared per-shape substrate: cached geometry, adjacency, and offset tables.

Stencil instances of the same shape share everything except their weights:
the CSR adjacency, the padded neighbor-offset table the vectorized kernels
gather through, the :math:`K_4`/:math:`K_8` block tables, and the geometric
wavefront schedules.  Benchmark suites construct hundreds of instances over a
handful of shapes, and the batch engine replays the same shapes in every
worker process — so this module memoizes all of it behind two small LRU
caches, keyed by ``(stencil type, grid shape)``:

* :func:`shared_geometry` — one :class:`~repro.stencil.grid2d.StencilGrid2D` /
  :class:`~repro.stencil.grid3d.StencilGrid3D` per shape, so the
  ``cached_property`` CSR and block tables are built once and shared by every
  instance of that shape (``IVCInstance.from_grid_2d/3d`` call this);
* :func:`get_substrate` — the kernel-facing :class:`Substrate` bundling the
  padded neighbor table and a per-order wavefront-schedule cache.

The caches live on the :class:`~repro.runtime.context.ExecutionContext`
(under the ``"kernels.substrate"`` scoped key), sized by its
:class:`~repro.runtime.config.RuntimeConfig` and emitting hit/miss/eviction
counters into its metrics registry.  Every accessor takes an optional
``context`` and defaults to the ambient :func:`~repro.runtime.context.get_context`,
so existing call sites behave exactly as before: one cache per process,
guarded by a lock (safe under threads), populated lazily per engine worker —
no cross-process shared state to corrupt.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext, get_context
from repro.runtime.fingerprint import array_digest
from repro.stencil.generic import CSRGraph
from repro.stencil.grid2d import StencilGrid2D
from repro.stencil.grid3d import StencilGrid3D

Geometry = Union[StencilGrid2D, StencilGrid3D]

# Default capacities under the environment-derived config, kept as module
# constants for compatibility; context-aware code reads its RuntimeConfig.
_DEFAULT_CONFIG = RuntimeConfig.from_env()
#: Shapes kept per LRU cache (geometries and substrates separately).
CACHE_SIZE = _DEFAULT_CONFIG.substrate_cache_size
#: Wavefront schedules kept per substrate (one per distinct vertex order).
WAVEFRONT_CACHE_SIZE = _DEFAULT_CONFIG.wavefront_cache_size

#: A wavefront schedule: ``verts[ptr[b]:ptr[b + 1]]`` is batch ``b``.
Wavefront = tuple[np.ndarray, np.ndarray]


def _build_neighbor_table(csr: CSRGraph) -> np.ndarray:
    """CSR adjacency as a dense ``(n, max_degree)`` table padded with ``n``.

    The pad value ``n`` points one past the last vertex, so kernels index
    extended (length ``n + 1``) state arrays and padding rows behave like
    colored-with-nothing neighbors.
    """
    n = csr.num_vertices
    degrees = csr.degrees()
    width = int(degrees.max(initial=0))
    table = np.full((n, width), n, dtype=np.int64)
    if len(csr.indices):
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        cols = np.arange(len(csr.indices), dtype=np.int64) - np.repeat(
            csr.indptr[:-1], degrees
        )
        table[rows, cols] = csr.indices
    return table


def _line_by_line_levels(shape: tuple[int, ...]) -> np.ndarray:
    """Analytic wavefront levels for the line-by-line (GLL) order.

    In a 9-pt stencil visited line-by-line, vertex ``(i, j)`` depends on
    ``(i - 1, j)`` and the three row-``j - 1`` neighbors, all of which sit at
    strictly smaller ``i + 2j``; every later-visited neighbor sits at strictly
    larger ``i + 2j``.  Hence the level sets of ``i + 2j`` (and ``i + 2j + 4k``
    for the 27-pt stencil) are pairwise-independent batches that replay the
    sequential scan exactly.  Computed with one broadcast — no graph traversal.
    """
    if len(shape) == 2:
        X, Y = shape
        lev = np.arange(X, dtype=np.int64)[:, None] + 2 * np.arange(Y, dtype=np.int64)
        return lev.ravel()
    X, Y, Z = shape
    lev = (
        np.arange(X, dtype=np.int64)[:, None, None]
        + 2 * np.arange(Y, dtype=np.int64)[None, :, None]
        + 4 * np.arange(Z, dtype=np.int64)[None, None, :]
    )
    return lev.ravel()


def analytic_levels(shape: tuple[int, ...]) -> np.ndarray:
    """Public closed form of the GLL wavefront level of every cell.

    ``levels[flat(i, j)] = i + 2j`` (``i + 2j + 4k`` in 3D), raveled in C
    order.  For any two *adjacent* cells the sign of the level difference
    equals the sign of the GLL rank difference, so comparing levels is
    comparing scan order — the property the dirty-region recolor engine's
    predecessor masks rely on.
    """
    return _line_by_line_levels(tuple(int(d) for d in shape))


def analytic_wavefront(shape: tuple[int, ...]) -> Wavefront:
    """The GLL wavefront schedule of a grid shape, from the closed form.

    Unlike :meth:`Substrate.wavefront_for` this needs no order array, no
    digest, and — crucially for the tiler — no materialized adjacency: the
    schedule is derived purely from the level sets of ``i + 2j (+ 4k)``.
    Cost and memory are ``O(cells)``, so it is safe to call per region on
    arbitrarily large streamed bands.
    """
    return _levels_to_wavefront(_line_by_line_levels(tuple(int(d) for d in shape)))


def _levels_to_wavefront(levels: np.ndarray) -> Wavefront:
    """Group vertices by level into a ``(verts, ptr)`` batch schedule."""
    verts = np.argsort(levels, kind="stable").astype(np.int64)
    counts = np.bincount(levels[verts])
    counts = counts[counts > 0]
    ptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return verts, ptr


def _kahn_wavefront(nbr_table: np.ndarray, rank: np.ndarray) -> Wavefront:
    """Wavefront schedule for an arbitrary order, by vectorized Kahn rounds.

    Directed edges point from earlier-rank to later-rank endpoints; batch
    ``b`` is the ``b``-th frontier of the resulting DAG.  Every vertex lands
    after all its earlier-order neighbors and before all its later-order
    neighbors, so batched first fit replays the sequential scan exactly; and
    two adjacent vertices never share a frontier.  Total work is ``O(E)``
    spread over one numpy round per DAG level — cheap for geometric and
    weight orders, whose level counts grow like the grid diameter, not ``n``.
    """
    n = len(rank)
    rank_ext = np.append(rank, np.int64(n))  # pad slot: later than everything
    indeg = (rank_ext[nbr_table] < rank[:, None]).sum(axis=1, dtype=np.int64)
    indeg_ext = np.append(indeg, np.int64(1) << 40)  # pad slot never reaches 0
    frontier = np.flatnonzero(indeg == 0).astype(np.int64)
    batches: list[np.ndarray] = []
    while frontier.size:
        batches.append(frontier)
        rows = nbr_table[frontier]
        later = rank_ext[rows] > rank[frontier][:, None]
        targets = rows[later]
        np.subtract.at(indeg_ext, targets, 1)
        candidates = np.unique(targets)
        frontier = candidates[indeg_ext[candidates] == 0]
    verts = np.concatenate(batches) if batches else np.empty(0, dtype=np.int64)
    ptr = np.zeros(len(batches) + 1, dtype=np.int64)
    if batches:
        np.cumsum([len(b) for b in batches], out=ptr[1:])
    return verts, ptr


@dataclass
class Substrate:
    """Everything shape-dependent the kernels need, built once per shape.

    Attributes
    ----------
    geometry:
        The (shared) stencil geometry.
    nbr_table:
        ``(n, max_degree)`` neighbor ids, padded with ``n``.
    wavefront_cache_size:
        Schedules kept in the per-order LRU (from the building context's
        :class:`~repro.runtime.config.RuntimeConfig`).
    """

    geometry: Geometry
    nbr_table: np.ndarray
    wavefront_cache_size: int = WAVEFRONT_CACHE_SIZE
    _wavefronts: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def num_vertices(self) -> int:
        return self.geometry.num_vertices

    @property
    def max_degree(self) -> int:
        return self.nbr_table.shape[1]

    @property
    def blocks(self) -> np.ndarray:
        """The :math:`K_4` / :math:`K_8` block table of the geometry."""
        if isinstance(self.geometry, StencilGrid2D):
            return self.geometry.k4_blocks
        return self.geometry.k8_blocks

    def wavefront_for(self, order: np.ndarray) -> Wavefront:
        """The batch schedule replaying ``order``, cached per distinct order.

        The line-by-line order gets its analytic level sets; any other
        permutation goes through the Kahn construction.  Schedules are cached
        by an order digest, so shape-only orders (GLL, GZO) are computed once
        per shape and weight orders (GLF, GSL) once per weight vector.
        """
        digest = array_digest(order)
        with self._lock:
            cached = self._wavefronts.get(digest)
            if cached is not None:
                self._wavefronts.move_to_end(digest)
                return cached
        if np.array_equal(order, self.geometry.line_by_line_order()):
            wavefront = _levels_to_wavefront(_line_by_line_levels(self.geometry.shape))
        else:
            rank = np.empty(len(order), dtype=np.int64)
            rank[order] = np.arange(len(order), dtype=np.int64)
            wavefront = _kahn_wavefront(self.nbr_table, rank)
        with self._lock:
            self._wavefronts[digest] = wavefront
            while len(self._wavefronts) > self.wavefront_cache_size:
                self._wavefronts.popitem(last=False)
        return wavefront


class _ShapeCache:
    """A tiny thread-safe LRU keyed by ``(stencil type, shape)``.

    Tracks hit/miss/eviction counters (monotonic over the cache lifetime,
    surviving :meth:`clear`) so the service ``/metrics`` snapshot and
    ``bench-kernels`` can report substrate-cache effectiveness.  The same
    events are mirrored into the owning context's metrics registry under
    ``<name>.hits`` / ``<name>.misses`` / ``<name>.evictions``.
    """

    def __init__(
        self,
        maxsize: int,
        *,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "",
    ) -> None:
        self.maxsize = maxsize
        self._items: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metrics = metrics
        self._name = name

    def _count(self, event: str, amount: int = 1) -> None:
        if self._metrics is not None and self._name:
            self._metrics.counter(f"{self._name}.{event}").inc(amount)

    def get_or_build(self, key, build):
        with self._lock:
            item = self._items.get(key)
            if item is not None:
                self.hits += 1
                self._items.move_to_end(key)
                self._count("hits")
                return item
            self.misses += 1
        self._count("misses")
        item = build()
        with self._lock:
            cached = self._items.setdefault(key, item)
            self._items.move_to_end(key)
            evicted = 0
            while len(self._items) > self.maxsize:
                self._items.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            self._count("evictions", evicted)
        return cached

    def stats(self) -> dict[str, int]:
        """Counters and occupancy: hits, misses, evictions, size, maxsize."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._items),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        with self._lock:
            self._items.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class _SubstrateState:
    """The per-context substrate caches (scoped key ``"kernels.substrate"``)."""

    def __init__(self, config: RuntimeConfig, metrics: MetricsRegistry) -> None:
        self.geometries = _ShapeCache(
            config.substrate_cache_size, metrics=metrics, name="substrate.geometries"
        )
        self.substrates = _ShapeCache(
            config.substrate_cache_size, metrics=metrics, name="substrate.substrates"
        )
        self.wavefront_cache_size = config.wavefront_cache_size


def _state(context: Optional[ExecutionContext] = None) -> _SubstrateState:
    ctx = context if context is not None else get_context()
    return ctx.scoped(
        "kernels.substrate", lambda: _SubstrateState(ctx.config, ctx.metrics)
    )


def _key(kind: str, shape: tuple[int, ...]) -> tuple:
    return (kind, tuple(int(d) for d in shape))


def shared_geometry_2d(
    X: int, Y: int, *, context: Optional[ExecutionContext] = None
) -> StencilGrid2D:
    """The context-shared 9-pt geometry for an ``X×Y`` grid."""
    return _state(context).geometries.get_or_build(
        _key("2d", (X, Y)), lambda: StencilGrid2D(X, Y)
    )


def shared_geometry_3d(
    X: int, Y: int, Z: int, *, context: Optional[ExecutionContext] = None
) -> StencilGrid3D:
    """The context-shared 27-pt geometry for an ``X×Y×Z`` grid."""
    return _state(context).geometries.get_or_build(
        _key("3d", (X, Y, Z)), lambda: StencilGrid3D(X, Y, Z)
    )


def get_substrate(
    geometry: Geometry, *, context: Optional[ExecutionContext] = None
) -> Substrate:
    """The shared :class:`Substrate` for a stencil geometry.

    Two geometries of equal type and shape map to the same substrate, so the
    neighbor table and wavefront schedules are built once per shape no matter
    how many instances (or benchmark cells) run over it.
    """
    state = _state(context)
    kind = "2d" if isinstance(geometry, StencilGrid2D) else "3d"

    def build() -> Substrate:
        shared = (
            shared_geometry_2d(*geometry.shape, context=context)
            if kind == "2d"
            else shared_geometry_3d(*geometry.shape, context=context)
        )
        return Substrate(
            geometry=shared,
            nbr_table=_build_neighbor_table(shared.csr),
            wavefront_cache_size=state.wavefront_cache_size,
        )

    return state.substrates.get_or_build(_key(kind, geometry.shape), build)


def clear_caches(context: Optional[ExecutionContext] = None) -> None:
    """Drop every cached geometry and substrate (tests, memory pressure)."""
    state = _state(context)
    state.geometries.clear()
    state.substrates.clear()


def cache_sizes(context: Optional[ExecutionContext] = None) -> dict[str, int]:
    """Current entry counts of the shape caches (observability hook)."""
    state = _state(context)
    return {
        "geometries": len(state.geometries),
        "substrates": len(state.substrates),
    }


def substrate_stats(
    context: Optional[ExecutionContext] = None,
) -> dict[str, dict[str, int]]:
    """Hit/miss/eviction counters of both shape caches.

    Counters are cache-lifetime monotonic (``clear_caches`` drops entries
    but not counters), so rates computed from deltas are meaningful.  Exposed
    in the coloring service ``metrics`` snapshot and the ``bench-kernels``
    report.
    """
    state = _state(context)
    return {
        "geometries": state.geometries.stats(),
        "substrates": state.substrates.stats(),
    }
