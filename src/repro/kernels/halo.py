"""Region coloring with preset boundary cells (the tiler's kernel).

:func:`color_region` first-fit colors a rectangular sub-grid of a 9-pt or
27-pt stencil in the paper's GLL order, with some cells *preset* to starts
already known from outside the region (tile halos recorded by the seam
pass, or the carry column/plane of the previous streamed band).

Correctness hinges on *when* a preset value becomes visible.  Under GLL the
predecessors of a cell are exactly its neighbors with a smaller analytic
wavefront level (``i + 2j``, ``i + 2j + 4k`` — see
:func:`repro.kernels.substrate.analytic_wavefront`), and that holds for
*any* sub-rectangle because the local level differs from the global one by
a constant.  So preset cells are not written up front: they are scheduled
into the wavefront like everyone else and their known value is stored when
their batch runs.  A later-level preset (e.g. the *zipper* row below a
tile, whose cells follow some interior cells in the global scan and precede
others) therefore constrains exactly the cells it precedes globally and is
invisible to the cells it follows — which is what makes tiled colorings
bit-identical to the monolithic scan (``docs/tiling.md`` has the full
invariant).

Neighborhoods are gathered analytically by offset arithmetic — eight
(twenty-six) shifted index computations per batch with bounds masking —
instead of through the substrate's dense neighbor table.  A materialized
table costs ``cells × degree × 8`` bytes (half a gigabyte for one streamed
16384-wide band), which would defeat the tiler's memory bound; the gather
costs only the batch itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.substrate import analytic_wavefront
from repro.kernels.wavefront import UNCOLORED, first_fit_intervals
from repro.stencil.grid2d import OFFSETS_9PT
from repro.stencil.grid3d import OFFSETS_27PT

__all__ = ["color_region", "gather_neighbors_2d", "gather_neighbors_3d"]

_OFF_2D = np.asarray(OFFSETS_9PT, dtype=np.int64)  # (8, 2)
_OFF_3D = np.asarray(OFFSETS_27PT, dtype=np.int64)  # (26, 3)


def _gather_neighbors_2d(
    batch: np.ndarray, shape: tuple[int, int], pad: np.int64
) -> np.ndarray:
    """Flat neighbor ids ``(b, 8)`` of ``batch``; out-of-region slots → pad."""
    X, Y = shape
    i, j = batch // Y, batch % Y
    ni = i[:, None] + _OFF_2D[:, 0][None, :]
    nj = j[:, None] + _OFF_2D[:, 1][None, :]
    ok = (ni >= 0) & (ni < X) & (nj >= 0) & (nj < Y)
    return np.where(ok, ni * Y + nj, pad)


def _gather_neighbors_3d(
    batch: np.ndarray, shape: tuple[int, int, int], pad: np.int64
) -> np.ndarray:
    """Flat neighbor ids ``(b, 26)`` of ``batch``; out-of-region slots → pad."""
    X, Y, Z = shape
    k = batch % Z
    rest = batch // Z
    i, j = rest // Y, rest % Y
    ni = i[:, None] + _OFF_3D[:, 0][None, :]
    nj = j[:, None] + _OFF_3D[:, 1][None, :]
    nk = k[:, None] + _OFF_3D[:, 2][None, :]
    ok = (ni >= 0) & (ni < X) & (nj >= 0) & (nj < Y) & (nk >= 0) & (nk < Z)
    return np.where(ok, (ni * Y + nj) * Z + nk, pad)


# Public aliases: the incremental recolor engine (repro/incremental) walks
# dependency cones with the same analytic offset gather the tiler uses.
gather_neighbors_2d = _gather_neighbors_2d
gather_neighbors_3d = _gather_neighbors_3d


def color_region(
    weights: np.ndarray,
    preset_mask: Optional[np.ndarray] = None,
    preset_starts: Optional[np.ndarray] = None,
) -> np.ndarray:
    """GLL first-fit starts of a grid region, honoring preset boundary cells.

    Parameters
    ----------
    weights:
        The region's weights, shaped ``(X, Y)`` or ``(X, Y, Z)``.
    preset_mask:
        Boolean array of the same shape; ``True`` cells take their value
        from ``preset_starts`` (at their wavefront level — see the module
        docstring) instead of being first-fit colored.
    preset_starts:
        The known global starts of the masked cells (ignored elsewhere).

    Returns
    -------
    np.ndarray
        ``int64`` starts of the region, same shape as ``weights``.  With no
        preset cells this is exactly the monolithic GLL kernel's output for
        the region as a standalone grid.
    """
    weights = np.ascontiguousarray(weights, dtype=np.int64)
    shape = weights.shape
    if weights.ndim not in (2, 3):
        raise ValueError(f"weights must be 2D or 3D, got {weights.ndim}D")
    n = weights.size
    pad = np.int64(n)
    gather = _gather_neighbors_2d if weights.ndim == 2 else _gather_neighbors_3d

    verts, ptr = analytic_wavefront(shape)
    starts_ext = np.full(n + 1, UNCOLORED, dtype=np.int64)
    weights_ext = np.empty(n + 1, dtype=np.int64)
    weights_ext[:-1] = weights.ravel()
    weights_ext[-1] = 0

    flat_mask = None
    flat_pre = None
    if preset_mask is not None:
        if preset_starts is None:
            raise ValueError("preset_mask given without preset_starts")
        flat_mask = np.ascontiguousarray(preset_mask, dtype=bool).ravel()
        flat_pre = np.ascontiguousarray(preset_starts, dtype=np.int64).ravel()
        if flat_mask.size != n or flat_pre.size != n:
            raise ValueError("preset arrays must match the region shape")

    for b in range(len(ptr) - 1):
        batch = verts[ptr[b] : ptr[b + 1]]
        if flat_mask is None:
            free, pre = batch, None
        else:
            m = flat_mask[batch]
            free, pre = batch[~m], batch[m]
        if free.size:
            rows = gather(free, shape, pad)
            starts_ext[free] = first_fit_intervals(
                starts_ext[rows], weights_ext[rows], weights_ext[free]
            )
        if pre is not None and pre.size:
            starts_ext[pre] = flat_pre[pre]
    return starts_ext[:-1].reshape(shape)
