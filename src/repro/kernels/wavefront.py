"""Wavefront-batched first-fit coloring kernels.

The reference :func:`~repro.core.greedy_engine.greedy_color` visits one vertex
per Python iteration, gathering its neighbor intervals with list appends.  On
a stencil the neighborhood is fixed and regular, so the same scan can run in
strided batches: partition the visit order into *wavefronts* — batches whose
members are pairwise non-adjacent and respect the order's dependency DAG (see
:meth:`~repro.kernels.substrate.Substrate.wavefront_for`) — and, per batch,

1. gather all neighbor starts/ends with one fancy-indexed read over the
   substrate's padded neighbor table,
2. ``np.argsort`` the intervals along ``axis=1`` (the paper's sort step, for
   the whole batch at once),
3. replace the paper's sequential scan with its closed form: the frontier
   before the ``c``-th sorted interval is the prefix maximum of the earlier
   interval ends, so the first fit is the frontier at the first position
   whose gap is wide enough — one ``np.maximum.accumulate`` and one
   ``argmax`` per batch instead of one Python iteration per interval.

Because every vertex still sees exactly the neighbors that precede it in the
order — colored — and none that follow it, the result is *bit-identical* to
the sequential reference for every permutation, which the differential tests
assert.  Empty (zero-weight) intervals always land at 0, also matching the
reference.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels.substrate import Substrate, get_substrate

#: Mirrors :data:`repro.core.greedy_engine.UNCOLORED` (kept literal to avoid
#: an import cycle; asserted equal in the tests).
UNCOLORED = -1

#: Sentinel start pushing invalid neighbor slots past every real interval in
#: the per-batch sort; large enough that ``_BIG - cur >= w`` always holds, so
#: the scan terminates on the first padding column exactly like the reference
#: scan terminates at the end of its neighbor list.
_BIG = np.int64(1) << 62


def _first_fit_batch(
    batch: np.ndarray,
    nbr_table: np.ndarray,
    starts_ext: np.ndarray,
    weights_ext: np.ndarray,
) -> np.ndarray:
    """First-fit starts for a batch of pairwise non-adjacent vertices.

    Gathers each vertex's neighbor intervals through the substrate's padded
    neighbor table and hands them to :func:`first_fit_intervals`.
    """
    rows = nbr_table[batch]  # (b, max_degree) neighbor ids, padded
    if rows.shape[1] == 0:
        return np.zeros(len(batch), dtype=np.int64)
    return first_fit_intervals(starts_ext[rows], weights_ext[rows], weights_ext[batch])


def first_fit_intervals(
    s: np.ndarray, wn: np.ndarray, w: np.ndarray
) -> np.ndarray:
    """First-fit starts from pre-gathered neighbor intervals.

    ``s``/``wn`` are ``(b, d)`` neighbor starts and weights (``UNCOLORED``
    or zero-weight slots are ignored); ``w`` is the ``(b,)`` weights being
    placed.  Rows must be pairwise non-adjacent for the batch semantics to
    replay the sequential scan.

    The reference scan keeps a running frontier ``cur`` (the maximum end seen
    so far, starting at 0) and returns ``cur`` at the first sorted interval
    whose lower end leaves a gap of at least ``w``.  Equivalently: with
    ``frontier[c]`` the prefix maximum of ends *before* sorted position
    ``c``, the answer is ``frontier[c*]`` for the first ``c*`` with
    ``lo[c*] - frontier[c*] >= w``, or the total maximum end if no interval
    leaves a gap.  The ``_BIG`` padding behaves like the end of the neighbor
    list: its gap is unbounded, so rows with spare padding always "fit" there
    at exactly the frontier the reference would return.

    Exposed (beyond :func:`_first_fit_batch`'s table gather) for callers
    that compute neighborhoods analytically — the halo kernel
    (:mod:`repro.kernels.halo`) gathers stencil neighbors by offset
    arithmetic instead of materializing an adjacency table.
    """
    if s.shape[1] == 0:
        return np.zeros(len(s), dtype=np.int64)
    valid = (s != UNCOLORED) & (wn > 0)
    lo = np.where(valid, s, _BIG)
    hi = np.where(valid, s + wn, _BIG)
    # Sort neighbor intervals by lower end.  Ties need no secondary key: the
    # scan's outcome at a tied lower end is independent of the tie order.
    cols = np.argsort(lo, axis=1, kind="stable")
    lo = np.take_along_axis(lo, cols, axis=1)
    hi = np.take_along_axis(hi, cols, axis=1)
    frontier = np.empty_like(hi)
    frontier[:, 0] = 0
    np.maximum.accumulate(hi[:, :-1], axis=1, out=frontier[:, 1:])
    fits = (lo - frontier) >= np.asarray(w)[:, None]
    first = np.argmax(fits, axis=1)
    out = np.take_along_axis(frontier, first[:, None], axis=1)[:, 0]
    # Fully valid rows may have no gap at all: the fit is past the last
    # interval, at the running maximum of every end.
    no_gap = ~np.take_along_axis(fits, first[:, None], axis=1)[:, 0]
    if no_gap.any():
        out[no_gap] = np.maximum(frontier[no_gap, -1], hi[no_gap, -1])
    return out


def _run_wavefronts(
    substrate: Substrate,
    weights: np.ndarray,
    verts: np.ndarray,
    ptr: np.ndarray,
    starts_ext: np.ndarray,
) -> np.ndarray:
    """Color every batch of a wavefront schedule, updating ``starts_ext``."""
    weights_ext = np.empty(len(weights) + 1, dtype=np.int64)
    weights_ext[:-1] = weights
    weights_ext[-1] = 0
    nbr_table = substrate.nbr_table
    for b in range(len(ptr) - 1):
        batch = verts[ptr[b] : ptr[b + 1]]
        starts_ext[batch] = _first_fit_batch(batch, nbr_table, starts_ext, weights_ext)
    return starts_ext[:-1]


def wavefront_greedy_color(
    instance, order: np.ndarray, substrate: Optional[Substrate] = None
) -> np.ndarray:
    """Starts of the first-fit coloring of ``instance`` in ``order``.

    Bit-identical to the reference ``greedy_color`` loop for any permutation;
    requires a stencil geometry (callers fall back to the reference on
    generic graphs).
    """
    if substrate is None:
        substrate = get_substrate(instance.geometry)
    verts, ptr = substrate.wavefront_for(np.asarray(order, dtype=np.int64))
    starts_ext = np.full(instance.num_vertices + 1, UNCOLORED, dtype=np.int64)
    return _run_wavefronts(substrate, instance.weights, verts, ptr, starts_ext)


def wavefront_recolor_pass(
    instance,
    starts: np.ndarray,
    order: np.ndarray,
    substrate: Optional[Substrate] = None,
) -> np.ndarray:
    """Batched re-run of first fit on an already-colored instance.

    The wavefront argument carries over unchanged: when a batch is recolored,
    its members' earlier-order neighbors hold their *new* starts and the
    later-order neighbors their *old* ones — exactly the state the sequential
    ``greedy_recolor_pass`` sees.  Returns a new starts array.
    """
    if substrate is None:
        substrate = get_substrate(instance.geometry)
    verts, ptr = substrate.wavefront_for(np.asarray(order, dtype=np.int64))
    starts_ext = np.empty(instance.num_vertices + 1, dtype=np.int64)
    starts_ext[:-1] = starts
    starts_ext[-1] = UNCOLORED
    return _run_wavefronts(substrate, instance.weights, verts, ptr, starts_ext)
