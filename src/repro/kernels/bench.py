"""Kernel-vs-reference microbenchmark (``stencil-ivc bench-kernels``).

Times each registry algorithm that declares a fast path twice per grid —
once through the reference Python loops (``fast=False``) and once through
the vectorized kernels (``fast=True``) — on the same random weights, checks
the two colorings are *identical* (same starts array, not just the same
maxcolor), and reports cells/second plus the speedup.  The results feed
``BENCH_kernels.json`` and the CI benchmark-smoke step, which fails the
build on any kernel/reference divergence.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

#: Registry algorithms benchmarked by default: the greedy family's fastest
#: order (GLL), the weight-driven order (GLF), and both chain algorithms.
DEFAULT_ALGORITHMS = ("GLL", "GLF", "BD", "BDP")


def _random_instance(shape: tuple[int, ...], seed: int):
    from repro.core.problem import IVCInstance

    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 1000, size=shape, dtype=np.int64)
    label = "x".join(str(s) for s in shape)
    if len(shape) == 2:
        return IVCInstance.from_grid_2d(weights, name=f"bench-{label}")
    return IVCInstance.from_grid_3d(weights, name=f"bench-{label}")


def _best_time(fn, reps: int) -> tuple[float, object]:
    """Minimum wall time over ``reps`` calls, plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(max(1, reps)):
        t0 = perf_counter()
        value = fn()
        best = min(best, perf_counter() - t0)
    return best, value


def bench_cell(
    instance,
    algorithm: str,
    reps: int = 3,
    runtime: str = "auto",
) -> dict:
    """Benchmark one (instance, algorithm) cell: reference vs kernel.

    ``runtime`` restricts which side runs: ``"auto"`` (the default) times
    both and compares them; ``"kernels"`` / ``"reference"`` time only that
    path (the skipped side's fields are ``None`` and ``identical`` is
    ``None`` — there is nothing to diverge).

    Returns a flat record with timings, throughputs, the speedup, and an
    ``identical`` flag comparing the two colorings' start arrays.
    """
    from repro.core.algorithms.registry import color_with

    ref_seconds = kernel_seconds = None
    ref = fast = None
    if runtime in ("auto", "reference"):
        ref_seconds, ref = _best_time(
            lambda: color_with(instance, algorithm, fast=False), reps
        )
    if runtime in ("auto", "kernels"):
        kernel_seconds, fast = _best_time(
            lambda: color_with(instance, algorithm, fast=True), reps
        )
    cells = instance.num_vertices
    shape = tuple(int(s) for s in instance.geometry.shape)

    def _rate(seconds):
        if seconds is None:
            return None
        return cells / seconds if seconds > 0 else float("inf")

    return {
        "shape": list(shape),
        "dim": len(shape),
        "algorithm": algorithm,
        "cells": int(cells),
        "ref_seconds": ref_seconds,
        "kernel_seconds": kernel_seconds,
        "ref_cells_per_sec": _rate(ref_seconds),
        "kernel_cells_per_sec": _rate(kernel_seconds),
        "speedup": (
            ref_seconds / kernel_seconds
            if ref_seconds is not None and kernel_seconds
            else None
        ),
        "identical": (
            bool(np.array_equal(ref.starts, fast.starts))
            if ref is not None and fast is not None
            else None
        ),
        "maxcolor": int((fast if fast is not None else ref).maxcolor),
    }


def run_kernel_benchmark(
    sizes_2d: Sequence[int] = (128, 256, 512),
    sizes_3d: Sequence[int] = (16, 32, 40),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    reps: int = 3,
    seed: int = 0,
    runtime: str = "auto",
) -> dict:
    """Sweep square 2D and cubic 3D grids, timing reference vs kernel.

    Returns the full ``BENCH_kernels.json`` document: per-cell ``results``,
    a ``headline`` picking out the greedy numbers on the largest 2D and 3D
    grids, and an ``all_identical`` flag that is ``False`` if *any* cell's
    kernel coloring diverged from the reference.
    """
    from repro.kernels.substrate import substrate_stats

    shapes: list[tuple[int, ...]] = [(n, n) for n in sizes_2d]
    shapes += [(n, n, n) for n in sizes_3d]
    results = []
    for shape in shapes:
        instance = _random_instance(shape, seed)
        for algorithm in algorithms:
            results.append(bench_cell(instance, algorithm, reps=reps, runtime=runtime))

    def _headline(dim: int) -> Optional[dict]:
        greedy = [
            r
            for r in results
            if r["dim"] == dim
            and r["algorithm"].startswith("G")
            and r["speedup"] is not None
        ]
        if not greedy:
            return None
        biggest = max(r["cells"] for r in greedy)
        best = max(
            (r for r in greedy if r["cells"] == biggest), key=lambda r: r["speedup"]
        )
        return {
            "shape": best["shape"],
            "algorithm": best["algorithm"],
            "speedup": best["speedup"],
            "kernel_cells_per_sec": best["kernel_cells_per_sec"],
        }

    return {
        "meta": {
            "tool": "stencil-ivc bench-kernels",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "reps": int(reps),
            "seed": int(seed),
            "algorithms": list(algorithms),
            "runtime": runtime,
        },
        "results": results,
        "headline": {
            "greedy_2d": _headline(2),
            "greedy_3d": _headline(3),
        },
        "substrate": substrate_stats(),
        # None means "not compared" (single-path run) — only an explicit
        # False (a real divergence) fails the build.
        "all_identical": all(r["identical"] is not False for r in results),
    }


def write_benchmark(report: dict, path: str | Path) -> Path:
    """Write a benchmark report as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def summary_line(report: dict) -> str:
    """The one-line speedup summary printed by the CLI."""
    parts = []
    for key in ("greedy_2d", "greedy_3d"):
        head = report["headline"].get(key)
        if head is not None:
            shape = "x".join(str(s) for s in head["shape"])
            parts.append(f"{head['algorithm']} {shape}: {head['speedup']:.1f}x")
    if report.get("meta", {}).get("runtime", "auto") != "auto":
        status = f"{report['meta']['runtime']} only, not compared"
    else:
        status = "identical" if report["all_identical"] else "DIVERGED"
    joined = ", ".join(parts) if parts else "no greedy cells"
    sub = report.get("substrate", {}).get("substrates", {})
    cache = (
        f"; substrate cache {sub['hits']} hits / {sub['misses']} misses"
        if sub
        else ""
    )
    return f"kernels vs reference: {joined} ({status}){cache}"


def format_report(report: dict) -> str:
    """Human-readable table of every benchmarked cell."""
    lines = [
        f"{'shape':>12} {'algorithm':>9} {'ref s':>9} {'kernel s':>9} "
        f"{'speedup':>8} {'Mcells/s':>9} {'same':>5}"
    ]
    def _sec(value) -> str:
        return f"{value:>9.4f}" if value is not None else f"{'-':>9}"

    for r in report["results"]:
        shape = "x".join(str(s) for s in r["shape"])
        speedup = f"{r['speedup']:>7.1f}x" if r["speedup"] is not None else f"{'-':>8}"
        rate = r["kernel_cells_per_sec"] or r["ref_cells_per_sec"] or 0.0
        same = "-" if r["identical"] is None else ("yes" if r["identical"] else "NO")
        lines.append(
            f"{shape:>12} {r['algorithm']:>9} {_sec(r['ref_seconds'])} "
            f"{_sec(r['kernel_seconds'])} {speedup} "
            f"{rate / 1e6:>9.2f} {same:>5}"
        )
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:  # pragma: no cover - thin CLI
    """Standalone entry point mirroring ``stencil-ivc bench-kernels``."""
    from repro.cli import build_parser

    args = build_parser().parse_args(["bench-kernels"] + list(argv or []))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main(sys.argv[1:]))
