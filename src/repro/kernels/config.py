"""Process-wide fast-path switch for the vectorized kernels.

The wavefront and chain kernels in :mod:`repro.kernels` are differentially
tested to produce *identical* colorings to the reference Python loops, so they
are enabled by default.  Three knobs turn them off:

* the ``REPRO_FAST_PATHS=0`` environment variable (read at import, so it also
  governs freshly spawned engine worker processes);
* :func:`set_fast_paths` for a process-wide toggle;
* the :func:`fast_paths` context manager for a scoped override (used by
  :func:`~repro.core.algorithms.registry.color_with` so an explicit
  ``fast=False`` reaches every primitive underneath the algorithm).

Auto mode (``fast=None``) additionally applies a size threshold: batched
NumPy dispatch has fixed overhead that dominates on miniature instances, so
the kernels only engage automatically from :data:`MIN_AUTO_SIZE` vertices
up (``REPRO_FAST_PATHS_MIN_SIZE``).  An explicit ``fast=True`` always takes
the kernel regardless of size — benchmarks and differential tests rely on
that to exercise the kernels on degenerate grids.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

_enabled: bool = os.environ.get("REPRO_FAST_PATHS", "1") != "0"

#: Minimum vertex count for the kernels to engage in auto mode.  Break-even
#: for the wavefront kernels sits around a few thousand vertices (see
#: ``BENCH_kernels.json``); below it the reference loops win.
MIN_AUTO_SIZE: int = int(os.environ.get("REPRO_FAST_PATHS_MIN_SIZE", "4096"))


def fast_paths_enabled() -> bool:
    """Whether the vectorized kernels are currently enabled."""
    return _enabled


def set_fast_paths(enabled: bool) -> None:
    """Enable or disable the vectorized kernels process-wide."""
    global _enabled
    _enabled = bool(enabled)


def resolve_fast(fast: Optional[bool]) -> bool:
    """Normalize a per-call ``fast`` argument: ``None`` follows the global switch."""
    return _enabled if fast is None else bool(fast)


def resolve_fast_for(fast: Optional[bool], num_vertices: int) -> bool:
    """Per-call fast decision with the auto-mode size threshold applied.

    Explicit ``True``/``False`` win unconditionally; ``None`` follows the
    global switch *and* requires at least :data:`MIN_AUTO_SIZE` vertices, so
    miniature instances keep the (faster there) reference loops.
    """
    if fast is not None:
        return bool(fast)
    return _enabled and num_vertices >= MIN_AUTO_SIZE


@contextmanager
def fast_paths(enabled: bool) -> Iterator[None]:
    """Scoped override of the fast-path switch (restores the previous value)."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous
