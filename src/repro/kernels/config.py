"""Compatibility re-export of the fast-path switch, which now lives in
:mod:`repro.runtime.fastpath`.

Resolution moved into the runtime layer so :mod:`repro.core` can decide
fast/slow without importing the kernels (the registry binds kernel functions
lazily).  The semantics are unchanged — see the runtime module for the
precedence rules; import from there in new code.
"""

from repro.runtime.fastpath import (
    MIN_AUTO_SIZE,
    fast_paths,
    fast_paths_enabled,
    resolve_fast,
    resolve_fast_for,
    set_fast_paths,
)

__all__ = [
    "MIN_AUTO_SIZE",
    "fast_paths",
    "fast_paths_enabled",
    "resolve_fast",
    "resolve_fast_for",
    "set_fast_paths",
]
