"""Registry-facing fast-path implementations of the coloring heuristics.

Thin wrappers binding each heuristic's vertex order to the wavefront/chain
kernels with ``fast=True`` pinned and the redundant permutation re-check
skipped (the orders are permutations by construction).  These are what
:class:`~repro.core.algorithms.registry.AlgorithmSpec.fast_fn` points at;
:func:`~repro.core.algorithms.registry.color_with` falls back to the
reference implementation automatically for instances without a stencil
geometry.
"""

from __future__ import annotations

from repro.core.algorithms.bipartite_decomposition import bd_with_bound
from repro.core.coloring import Coloring
from repro.core.greedy_engine import greedy_color, greedy_recolor_pass
from repro.core.orderings import (
    largest_first_order,
    line_by_line_order,
    smallest_last_order,
    zorder_order,
)
from repro.core.problem import IVCInstance


def gll_fast(instance: IVCInstance) -> Coloring:
    """GLL through the wavefront kernel (analytic line-by-line batches)."""
    return greedy_color(
        instance, line_by_line_order(instance), algorithm="GLL",
        fast=True, check_order=False,
    )


def gzo_fast(instance: IVCInstance) -> Coloring:
    """GZO through the wavefront kernel (Morton-order batches)."""
    return greedy_color(
        instance, zorder_order(instance), algorithm="GZO",
        fast=True, check_order=False,
    )


def glf_fast(instance: IVCInstance) -> Coloring:
    """GLF through the wavefront kernel (weight-order batches)."""
    return greedy_color(
        instance, largest_first_order(instance), algorithm="GLF",
        fast=True, check_order=False,
    )


def gsl_fast(instance: IVCInstance) -> Coloring:
    """GSL through the wavefront kernel (the order itself stays sequential)."""
    return greedy_color(
        instance, smallest_last_order(instance), algorithm="GSL",
        fast=True, check_order=False,
    )


def bd_fast(instance: IVCInstance) -> Coloring:
    """BD through the vectorized chain kernel."""
    coloring, _bound = bd_with_bound(instance, fast=True)
    return coloring


def bdp_fast(instance: IVCInstance) -> Coloring:
    """BDP: chain-kernel BD + vectorized order + wavefront recolor pass."""
    from repro.core.algorithms.post_opt import bdp_recolor_order

    coloring, _bound = bd_with_bound(instance, fast=True)
    order = bdp_recolor_order(instance, coloring.starts, fast=True)
    starts = greedy_recolor_pass(instance, coloring.starts, order, fast=True)
    return Coloring(instance=instance, starts=starts, algorithm="BDP")
