"""Region-addressable weight sources for out-of-core tiled coloring.

The tiler (:mod:`repro.tiling`) never materializes a full weight grid: the
seam pass streams outer-axis bands and the interior pass fetches one padded
tile at a time.  Both go through a :class:`WeightSource` — an object that
knows the grid ``shape`` and can produce any rectangular ``region`` of it as
a C-contiguous ``int64`` array.

Three backends cover the use cases:

* :class:`ArrayWeightSource` — wraps an in-memory array (tests, modest
  grids, and the :func:`repro.api.color` facade's tiled mode on ndarrays);
* :class:`MemmapWeightSource` — a ``.npy`` file opened with
  ``mmap_mode="r"``, so only the touched pages are resident;
* :class:`SyntheticWeightSource` — a deterministic counter-based generator
  (splitmix64 finalizer over the cell's flat index), so arbitrarily large
  benchmark grids cost no storage at all and any region can be produced
  independently of any other.  ``numpy``'s ``Generator`` cannot do this —
  its streams are sequential — which is why the hash-based scheme exists.

Every source is picklable (workers of the tile pool receive one through the
pool initializer) and carries a :meth:`WeightSource.fingerprint` that names
its content, used by the tile run log to refuse resuming against different
weights.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

__all__ = [
    "WeightSource",
    "ArrayWeightSource",
    "MemmapWeightSource",
    "SyntheticWeightSource",
    "as_weight_source",
]

#: A half-open per-axis region: ``((lo0, hi0), (lo1, hi1)[, (lo2, hi2)])``.
Region = tuple[tuple[int, int], ...]


class WeightSource:
    """Abstract region-addressable grid of ``int64`` weights."""

    shape: tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_cells(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64))

    def region(self, box: Region) -> np.ndarray:
        """The weights of ``box`` as a fresh C-contiguous ``int64`` array."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """A stable hex digest naming this source's full content."""
        raise NotImplementedError

    def _check_box(self, box: Region) -> Region:
        box = tuple((int(lo), int(hi)) for lo, hi in box)
        if len(box) != len(self.shape):
            raise ValueError(f"region rank {len(box)} != grid rank {len(self.shape)}")
        for (lo, hi), dim in zip(box, self.shape):
            if not (0 <= lo <= hi <= dim):
                raise ValueError(f"region {box} out of bounds for shape {self.shape}")
        return box


class ArrayWeightSource(WeightSource):
    """An in-memory weight grid (canonicalized to ``int64``)."""

    def __init__(self, weights: np.ndarray) -> None:
        arr = np.ascontiguousarray(weights, dtype=np.int64)
        if arr.ndim not in (2, 3):
            raise ValueError(f"weights must be 2D or 3D, got {arr.ndim}D")
        if arr.size and arr.min() < 0:
            raise ValueError("weights must be non-negative")
        self._arr = arr
        self.shape = arr.shape

    def region(self, box: Region) -> np.ndarray:
        box = self._check_box(box)
        slices = tuple(slice(lo, hi) for lo, hi in box)
        return np.ascontiguousarray(self._arr[slices])

    def fingerprint(self) -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(f"array|{'x'.join(map(str, self.shape))}|".encode())
        h.update(self._arr.tobytes())
        return h.hexdigest()


class MemmapWeightSource(WeightSource):
    """A ``.npy`` weight grid read through a memory map.

    The map is opened lazily (and re-opened after unpickling), so peak
    resident memory tracks the regions actually touched, not the file size.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        self._mm: Optional[np.ndarray] = None
        self.shape = tuple(int(d) for d in self._open().shape)
        if len(self.shape) not in (2, 3):
            raise ValueError(f"weights must be 2D or 3D, got {len(self.shape)}D")

    def _open(self) -> np.ndarray:
        if self._mm is None:
            self._mm = np.load(self.path, mmap_mode="r")
        return self._mm

    def __getstate__(self) -> dict:
        return {"path": self.path, "shape": self.shape}

    def __setstate__(self, state: dict) -> None:
        self.path = state["path"]
        self.shape = state["shape"]
        self._mm = None

    def region(self, box: Region) -> np.ndarray:
        box = self._check_box(box)
        slices = tuple(slice(lo, hi) for lo, hi in box)
        return np.ascontiguousarray(self._open()[slices], dtype=np.int64)

    def fingerprint(self) -> str:
        h = hashlib.blake2b(digest_size=16)
        h.update(f"npy|{self.path}|{'x'.join(map(str, self.shape))}".encode())
        return h.hexdigest()


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, vectorized over a ``uint64`` array."""
    with np.errstate(over="ignore"):
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))


class SyntheticWeightSource(WeightSource):
    """Deterministic pseudo-random weights in ``[low, high)``, by cell hash.

    Cell ``(i, j[, k])`` hashes its global flat index with the seed through
    the splitmix64 finalizer, so every region is computed independently yet
    the full grid is a single reproducible function of ``(shape, seed)``.
    """

    def __init__(
        self,
        shape: Sequence[int],
        *,
        seed: int = 0,
        low: int = 1,
        high: int = 101,
    ) -> None:
        self.shape = tuple(int(d) for d in shape)
        if len(self.shape) not in (2, 3) or any(d < 1 for d in self.shape):
            raise ValueError(f"shape must be 2 or 3 positive dims, got {self.shape}")
        if not 0 <= low < high:
            raise ValueError(f"need 0 <= low < high, got [{low}, {high})")
        self.seed = int(seed)
        self.low = int(low)
        self.high = int(high)

    def region(self, box: Region) -> np.ndarray:
        box = self._check_box(box)
        axes = [np.arange(lo, hi, dtype=np.uint64) for lo, hi in box]
        if len(axes) == 2:
            Y = np.uint64(self.shape[1])
            idx = axes[0][:, None] * Y + axes[1][None, :]
        else:
            Y, Z = np.uint64(self.shape[1]), np.uint64(self.shape[2])
            idx = (axes[0][:, None, None] * Y + axes[1][None, :, None]) * Z + axes[2][
                None, None, :
            ]
        seed64 = np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)
        mixed = _splitmix64(idx ^ _splitmix64(seed64))
        span = np.uint64(self.high - self.low)
        return (self.low + (mixed % span).astype(np.int64)).astype(np.int64)

    def fingerprint(self) -> str:
        spec = (
            f"synthetic|{'x'.join(map(str, self.shape))}"
            f"|seed={self.seed}|low={self.low}|high={self.high}"
        )
        return hashlib.blake2b(spec.encode(), digest_size=16).hexdigest()


def as_weight_source(obj) -> WeightSource:
    """Coerce ndarray / ``.npy`` path / source into a :class:`WeightSource`."""
    if isinstance(obj, WeightSource):
        return obj
    if isinstance(obj, (str, Path)):
        return MemmapWeightSource(obj)
    return ArrayWeightSource(np.asarray(obj))
