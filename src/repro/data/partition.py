"""Balanced rectilinear partitioning (the paper's citation [2], Nicol 1994).

The paper's Figure 1 decomposes space *rectilinearly*: cut positions per
axis, not necessarily uniform.  Uniform grids (``repro.data.voxelize``) are
the simplest rectilinear partitions; this module adds **load-balanced**
cuts: per-axis cut positions chosen to equalize the point marginals, subject
to the ``cell >= 2 x bandwidth`` width constraint that keeps the conflict
graph a 9-pt/27-pt stencil.

Balancing the per-region loads directly lowers the clique lower bound
(the heaviest 2×2 block of a balanced grid is lighter), which translates
into fewer colors — quantified by ``bench_ablation_partition.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import IVCInstance
from repro.data.events import PointDataset


def _feasible_cuts(prefix: np.ndarray, parts: int, min_slots: int, cap: float) -> list[int] | None:
    """Cut slots so every part's load <= cap and width >= min_slots, or None.

    Simple greedy extension is *not* safe under minimum widths (ending a
    part later can force heavy slots into a successor's mandatory window),
    so feasibility is decided by reachability DP: ``reach[k][j]`` — can the
    first ``j`` slots be cut into ``k`` valid parts — computed layer by
    layer with vectorized range marking, then cuts reconstructed backward.
    """
    total_slots = len(prefix) - 1
    layers = [np.zeros(total_slots + 1, dtype=bool) for _ in range(parts + 1)]
    layers[0][0] = True
    for k in range(1, parts + 1):
        sources = np.flatnonzero(layers[k - 1])
        if len(sources) == 0:
            return None
        lo = sources + min_slots
        # Furthest end per source with load <= cap.
        hi = np.searchsorted(prefix, prefix[sources] + cap, side="right") - 1
        hi = np.minimum(hi, total_slots)
        valid = lo <= hi
        if not np.any(valid):
            return None
        diff = np.zeros(total_slots + 2, dtype=np.int64)
        np.add.at(diff, lo[valid], 1)
        np.add.at(diff, hi[valid] + 1, -1)
        layers[k] = np.cumsum(diff[:-1]) > 0
    if not layers[parts][total_slots]:
        return None
    # Backward reconstruction.
    cuts = [total_slots]
    j = total_slots
    for k in range(parts, 0, -1):
        i_min = int(np.searchsorted(prefix, prefix[j] - cap, side="left"))
        i_max = j - min_slots
        window = np.flatnonzero(layers[k - 1][i_min : i_max + 1])
        assert len(window), "reconstruction must succeed on a feasible layer"
        i = i_min + int(window[-1])
        cuts.append(i)
        j = i
    cuts.reverse()
    assert cuts[0] == 0
    return cuts


def balance_cuts_1d(counts: np.ndarray, parts: int, min_slots: int = 1) -> np.ndarray:
    """Cut a 1D count array into ``parts`` contiguous parts minimizing the
    maximum part load, each part at least ``min_slots`` wide.

    Returns the cut indices (length ``parts + 1``, starting 0 and ending
    ``len(counts)``).  Exact: binary search over achievable max loads with a
    greedy feasibility check.
    """
    counts = np.asarray(counts, dtype=np.int64)
    slots = len(counts)
    if parts < 1:
        raise ValueError("parts must be positive")
    if min_slots < 1:
        raise ValueError("min_slots must be positive")
    if parts * min_slots > slots:
        raise ValueError(
            f"{parts} parts of >= {min_slots} slots do not fit in {slots} slots"
        )
    prefix = np.concatenate([[0], np.cumsum(counts)])
    # Binary search over integer cap values; exact for integer counts.
    lo, hi = 0, int(prefix[-1])
    best = None
    while lo <= hi:
        mid = (lo + hi) // 2
        cuts = _feasible_cuts(prefix, parts, min_slots, mid)
        if cuts is not None:
            best = cuts
            hi = mid - 1
        else:
            lo = mid + 1
    assert best is not None  # cap = total is always feasible given widths fit
    return np.asarray(best, dtype=np.int64)


def part_loads(counts: np.ndarray, cuts: np.ndarray) -> np.ndarray:
    """Per-part load sums for a cut vector."""
    prefix = np.concatenate([[0], np.cumsum(np.asarray(counts, dtype=np.int64))])
    return prefix[cuts[1:]] - prefix[cuts[:-1]]


def balanced_rectilinear_instance(
    dataset: PointDataset,
    axes: tuple[int, ...],
    parts: tuple[int, ...],
    bandwidths: tuple[float, ...],
    resolution: int = 256,
    name: str = "",
) -> IVCInstance:
    """A stencil instance from a load-balanced rectilinear decomposition.

    Parameters
    ----------
    axes:
        Dataset axes to partition: two of ``(0, 1, 2)`` for a 2DS-IVC
        instance, three for a 3DS-IVC instance.
    parts:
        Number of parts per chosen axis.
    bandwidths:
        Interaction radius per chosen axis; every part is at least twice
        this wide, so the conflict graph stays a Moore stencil.
    resolution:
        Slots per axis used to discretize cut positions.

    Cuts are chosen independently per axis on the point marginals (the
    rectilinear restriction), then the weights are the per-cell point counts
    under the non-uniform grid.
    """
    if len(axes) not in (2, 3) or len(parts) != len(axes) or len(bandwidths) != len(axes):
        raise ValueError("axes, parts, bandwidths must align and be 2D or 3D")
    edges_per_axis = []
    for axis, n_parts, bandwidth in zip(axes, parts, bandwidths):
        lo, hi = dataset.extent[axis]
        span = hi - lo
        if 2.0 * bandwidth * n_parts > span + 1e-12:
            raise ValueError(
                f"axis {axis}: {n_parts} parts of >= {2 * bandwidth} do not fit in {span}"
            )
        slot_width = span / resolution
        min_slots = max(1, int(np.ceil(2.0 * bandwidth / slot_width)))
        slot_idx = np.clip(
            ((dataset.points[:, axis] - lo) / span * resolution).astype(np.int64),
            0,
            resolution - 1,
        )
        marginal = np.bincount(slot_idx, minlength=resolution)
        cuts = balance_cuts_1d(marginal, n_parts, min_slots=min_slots)
        edges_per_axis.append(lo + cuts.astype(np.float64) * slot_width)
    # Histogram with non-uniform bin edges.
    coords = [dataset.points[:, axis] for axis in axes]
    grid, _ = np.histogramdd(np.column_stack(coords), bins=edges_per_axis)
    grid = grid.astype(np.int64)
    label = name or f"{dataset.name}-balanced-{'x'.join(map(str, parts))}"
    metadata = {
        "dataset": dataset.name,
        "partition": "balanced-rectilinear",
        "axes": tuple(int(a) for a in axes),
        "cut_edges": [e.tolist() for e in edges_per_axis],
    }
    if len(axes) == 2:
        return IVCInstance.from_grid_2d(grid, name=label, metadata=metadata)
    return IVCInstance.from_grid_3d(grid, name=label, metadata=metadata)


def uniform_rectilinear_instance(
    dataset: PointDataset,
    axes: tuple[int, ...],
    parts: tuple[int, ...],
    name: str = "",
) -> IVCInstance:
    """The uniform-grid counterpart of :func:`balanced_rectilinear_instance`
    (same part counts, equal-width cells) for ablation comparisons."""
    edges_per_axis = [
        np.linspace(dataset.extent[axis][0], dataset.extent[axis][1], n + 1)
        for axis, n in zip(axes, parts)
    ]
    coords = [dataset.points[:, axis] for axis in axes]
    grid, _ = np.histogramdd(np.column_stack(coords), bins=edges_per_axis)
    grid = grid.astype(np.int64)
    label = name or f"{dataset.name}-uniform-{'x'.join(map(str, parts))}"
    if len(axes) == 2:
        return IVCInstance.from_grid_2d(grid, name=label)
    return IVCInstance.from_grid_3d(grid, name=label)
