"""Point-event dataset container.

Events live in a 3D ``(x, y, t)`` space — two spatial coordinates plus time,
exactly the shape of the STKDE inputs of Section VI.A/VII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Axis names in storage order.
AXES = ("x", "y", "t")


@dataclass(frozen=True)
class PointDataset:
    """A set of spatio-temporal events.

    Attributes
    ----------
    name:
        Dataset label (used throughout the experiment reports).
    points:
        ``(N, 3)`` float array of ``(x, y, t)`` coordinates.
    extent:
        ``(3, 2)`` array of per-axis ``(lo, hi)`` bounds; must contain all
        points and is the domain that gets voxelized.
    """

    name: str
    points: np.ndarray
    extent: np.ndarray
    metadata: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        pts = np.ascontiguousarray(self.points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {pts.shape}")
        ext = np.ascontiguousarray(self.extent, dtype=np.float64)
        if ext.shape != (3, 2):
            raise ValueError(f"extent must be (3, 2), got {ext.shape}")
        if np.any(ext[:, 0] >= ext[:, 1]):
            raise ValueError("extent lo must be < hi on every axis")
        if len(pts):
            lo_ok = (pts >= ext[:, 0]).all()
            hi_ok = (pts <= ext[:, 1]).all()
            if not (lo_ok and hi_ok):
                raise ValueError("some points fall outside the extent")
        object.__setattr__(self, "points", pts)
        object.__setattr__(self, "extent", ext)

    @property
    def num_points(self) -> int:
        """Number of events."""
        return len(self.points)

    def axis_length(self, axis: int) -> float:
        """Length of the extent along an axis (0=x, 1=y, 2=t)."""
        return float(self.extent[axis, 1] - self.extent[axis, 0])

    def restrict(self, box: np.ndarray, name: str | None = None) -> "PointDataset":
        """Sub-dataset of the points inside ``box`` (a ``(3, 2)`` extent).

        Used to build the PollenUS analogue (Pollen restricted to a
        US-like bounding box).
        """
        box = np.asarray(box, dtype=np.float64)
        mask = np.ones(len(self.points), dtype=bool)
        for axis in range(3):
            mask &= (self.points[:, axis] >= box[axis, 0]) & (
                self.points[:, axis] <= box[axis, 1]
            )
        return PointDataset(
            name=name or f"{self.name}-restricted",
            points=self.points[mask],
            extent=box,
            metadata=dict(self.metadata),
        )
