"""Spatio-temporal event data and stencil-instance construction (Section VI.A).

The paper evaluates on four point datasets (events at ``(x, y, t)``) obtained
from the STKDE authors; those are not redistributable, so
:mod:`~repro.data.synthetic` generates deterministic synthetic analogues that
reproduce each dataset's qualitative weight regime (clustering, sparsity,
skew) — see DESIGN.md §3 for the substitution argument.

:mod:`~repro.data.voxelize` turns a point cloud into stencil weight grids
(rectilinear decomposition with the cell-size ≥ 2×bandwidth constraint, 2D
projections onto the xy/xt/yt planes), and :mod:`~repro.data.instances`
builds the full experiment suites (all powers of two per axis, plus the
largest dimension the bandwidth admits).
"""

from repro.data.events import PointDataset
from repro.data.instances import DEFAULT_BANDWIDTH_FRACTIONS, build_suite_2d, build_suite_3d
from repro.data.synthetic import (
    dengue_like,
    fluanimal_like,
    pollen_like,
    pollenus_like,
    standard_datasets,
)
from repro.data.voxelize import (
    candidate_dims,
    max_dim_for_bandwidth,
    project_points,
    voxel_counts_2d,
    voxel_counts_3d,
)
from repro.data.weights import (
    ArrayWeightSource,
    MemmapWeightSource,
    SyntheticWeightSource,
    WeightSource,
    as_weight_source,
)

__all__ = [
    "ArrayWeightSource",
    "DEFAULT_BANDWIDTH_FRACTIONS",
    "MemmapWeightSource",
    "PointDataset",
    "SyntheticWeightSource",
    "WeightSource",
    "as_weight_source",
    "build_suite_2d",
    "build_suite_3d",
    "candidate_dims",
    "dengue_like",
    "fluanimal_like",
    "max_dim_for_bandwidth",
    "pollen_like",
    "pollenus_like",
    "project_points",
    "standard_datasets",
    "voxel_counts_2d",
    "voxel_counts_3d",
]
