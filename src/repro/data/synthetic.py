"""Deterministic synthetic analogues of the paper's four datasets.

The coloring algorithms only ever see voxel-count weight grids, so what
matters is the *distribution* of counts each dataset induces — its
clustering, sparsity, and skew.  The paper itself explains ranking
differences via those regimes (e.g. "the instances of FluAnimal are very
sparse").  Each generator below targets one regime:

* :func:`dengue_like` — urban epidemic: a few tight Gaussian clusters in a
  city-sized extent, two years of seasonal case arrivals (dense, strongly
  clustered counts).
* :func:`fluanimal_like` — worldwide animal surveillance: very few events
  spread over a world-sized extent and 15 years (extremely sparse grids,
  mostly zero cells).
* :func:`pollen_like` — geolocated tweets: many cluster centers with
  power-law sizes over a wide extent, a three-month season with a burst
  (heavy-tailed, high-variance counts).
* :func:`pollenus_like` — the Pollen analogue restricted to a
  continental-US-like box (same regime, denser occupancy).

All generators take a seed and are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.data.events import PointDataset


def _clip_to_extent(points: np.ndarray, extent: np.ndarray) -> np.ndarray:
    """Clamp points into the extent (cluster tails may escape)."""
    return np.clip(points, extent[:, 0], extent[:, 1])


def dengue_like(num_points: int = 1500, seed: int = 20100101) -> PointDataset:
    """Dengue-fever analogue: tight urban clusters, seasonal time profile."""
    rng = np.random.default_rng(seed)
    extent = np.array([[0.0, 30.0], [0.0, 25.0], [0.0, 730.0]])  # km, km, days
    centers = np.array([[8.0, 7.0], [21.0, 15.0], [12.0, 19.0], [25.0, 5.0]])
    spread = np.array([3.5, 5.0, 2.5, 4.0])
    weights = np.array([0.45, 0.25, 0.2, 0.1])
    n_bg = int(num_points * 0.35)  # citywide background cases
    n_cl = num_points - n_bg
    which = rng.choice(len(centers), size=n_cl, p=weights)
    cluster_xy = centers[which] + rng.normal(scale=spread[which][:, None], size=(n_cl, 2))
    bg_xy = np.column_stack([rng.uniform(0, 30, n_bg), rng.uniform(0, 25, n_bg)])
    xy = np.vstack([cluster_xy, bg_xy])
    # Two seasonal outbreaks a year: mixture of four Gaussian waves.
    waves = np.array([120.0, 320.0, 480.0, 680.0])
    t = waves[rng.integers(0, 4, size=num_points)] + rng.normal(scale=25.0, size=num_points)
    points = _clip_to_extent(np.column_stack([xy, t]), extent)
    return PointDataset("Dengue", points, extent, metadata={"regime": "dense-clustered"})


def fluanimal_like(num_points: int = 250, seed: int = 20010101) -> PointDataset:
    """Avian-influenza analogue: very sparse worldwide events over 15 years."""
    rng = np.random.default_rng(seed)
    extent = np.array([[-180.0, 180.0], [-60.0, 75.0], [0.0, 5475.0]])  # lon, lat, days
    # A handful of tight hotspots plus a thin uniform background.
    hotspots = np.array(
        [[105.0, 35.0], [100.0, 15.0], [30.0, 50.0], [-90.0, 40.0], [135.0, -25.0]]
    )
    n_hot = int(num_points * 0.8)
    which = rng.integers(0, len(hotspots), size=n_hot)
    hot_xy = hotspots[which] + rng.normal(scale=4.0, size=(n_hot, 2))
    n_bg = num_points - n_hot
    bg_xy = np.column_stack(
        [rng.uniform(-180.0, 180.0, n_bg), rng.uniform(-60.0, 75.0, n_bg)]
    )
    xy = np.vstack([hot_xy, bg_xy])
    # Outbreak years: events bunch into a few seasons over the 15-year span.
    seasons = rng.uniform(0.0, 5475.0, size=8)
    t = seasons[rng.integers(0, len(seasons), size=num_points)] + rng.normal(
        scale=90.0, size=num_points
    )
    points = _clip_to_extent(np.column_stack([xy, t]), extent)
    return PointDataset("FluAnimal", points, extent, metadata={"regime": "very-sparse"})


def _power_law_clusters(
    rng: np.random.Generator,
    num_points: int,
    num_centers: int,
    extent: np.ndarray,
    spread: float,
    zipf: float = 0.8,
) -> np.ndarray:
    """Points around random centers with Zipf-like cluster sizes."""
    centers = np.column_stack(
        [
            rng.uniform(extent[0, 0], extent[0, 1], num_centers),
            rng.uniform(extent[1, 0], extent[1, 1], num_centers),
        ]
    )
    sizes = 1.0 / np.arange(1, num_centers + 1) ** zipf
    sizes /= sizes.sum()
    which = rng.choice(num_centers, size=num_points, p=sizes)
    return centers[which] + rng.normal(scale=spread, size=(num_points, 2))


def pollen_like(num_points: int = 12000, seed: int = 20160201) -> PointDataset:
    """Pollen-tweet analogue: heavy-tailed city clusters over a broad
    population background, springtime burst."""
    rng = np.random.default_rng(seed)
    extent = np.array([[-170.0, 170.0], [-55.0, 70.0], [0.0, 90.0]])  # lon, lat, days
    n_bg = int(num_points * 0.4)  # diffuse background chatter
    n_cl = num_points - n_bg
    cluster_xy = _power_law_clusters(rng, n_cl, num_centers=200, extent=extent, spread=12.0)
    bg_xy = np.column_stack(
        [rng.uniform(-170.0, 170.0, n_bg), rng.uniform(-55.0, 70.0, n_bg)]
    )
    xy = np.vstack([cluster_xy, bg_xy])
    # Season ramps up: time density increases linearly into a late burst.
    t = 90.0 * np.sqrt(rng.uniform(0.0, 1.0, size=num_points))
    points = _clip_to_extent(np.column_stack([xy, t]), extent)
    return PointDataset("Pollen", points, extent, metadata={"regime": "heavy-tailed"})


#: Continental-US-like bounding box in the Pollen coordinate frame.
US_BOX = np.array([[-125.0, -66.0], [24.0, 50.0], [0.0, 90.0]])


def pollenus_like(num_points: int = 12000, seed: int = 20160201) -> PointDataset:
    """PollenUS analogue: the Pollen generator restricted to a US-like box.

    Mirrors the paper: PollenUS *is* Pollen filtered to the contiguous US.
    To keep the restriction non-trivial the underlying Pollen sample places
    half of its cluster centers inside the box.
    """
    rng = np.random.default_rng(seed + 1)
    extent = np.array([[-170.0, 170.0], [-55.0, 70.0], [0.0, 90.0]])
    n_in = num_points // 2
    n_bg = int(n_in * 0.4)
    inside = _power_law_clusters(
        rng, n_in - n_bg, num_centers=80, extent=US_BOX, spread=5.0
    )
    bg = np.column_stack(
        [
            rng.uniform(US_BOX[0, 0], US_BOX[0, 1], n_bg),
            rng.uniform(US_BOX[1, 0], US_BOX[1, 1], n_bg),
        ]
    )
    outside = _power_law_clusters(
        rng, num_points - n_in, num_centers=80, extent=extent, spread=12.0
    )
    xy = np.vstack([inside, bg, outside])
    t = 90.0 * np.sqrt(rng.uniform(0.0, 1.0, size=num_points))
    points = _clip_to_extent(np.column_stack([xy, t]), extent)
    full = PointDataset("Pollen-extended", points, extent)
    return PointDataset(
        "PollenUS",
        full.restrict(US_BOX).points,
        US_BOX,
        metadata={"regime": "heavy-tailed-dense"},
    )


def standard_datasets(scale: float = 1.0, seed: int = 0) -> list[PointDataset]:
    """The four datasets of Section VI.A at a given size scale.

    ``scale`` multiplies every generator's point count (use < 1 for quick
    tests, 1 for the benchmark suites).
    """

    def n(base: int) -> int:
        return max(10, int(base * scale))

    return [
        dengue_like(n(1500), seed=20100101 + seed),
        fluanimal_like(n(400), seed=20010101 + seed),
        pollen_like(n(12000), seed=20160201 + seed),
        pollenus_like(n(12000), seed=20160201 + seed),
    ]
