"""Experiment-suite construction (Section VI.A).

For every dataset, bandwidth, and (for 2D) projection plane, the paper builds
one instance per combination of axis dimensions, where each axis sweeps all
powers of two up to — plus exactly — the largest dimension the bandwidth
admits.  This module reproduces that construction; suite sizes are controlled
by a dimension cap so the full sweep stays laptop-sized (the construction
rule, not the instance count, is what the experiments depend on).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Sequence

import numpy as np

from repro.core.problem import IVCInstance
from repro.data.events import PointDataset
from repro.data.synthetic import standard_datasets
from repro.data.voxelize import (
    PLANES,
    candidate_dims,
    max_dim_for_bandwidth,
    project_points,
    voxel_counts_2d,
    voxel_counts_3d,
)

#: Bandwidths as fractions of the axis extent (low/mid/high resolution of the
#: paper's configurations: a larger bandwidth forces a coarser grid).
DEFAULT_BANDWIDTH_FRACTIONS: dict[str, float] = {
    "highbw": 1.0 / 8.0,
    "midbw": 1.0 / 16.0,
    "lowbw": 1.0 / 32.0,
}


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs bounding a suite sweep.

    Attributes
    ----------
    dim_cap:
        Maximum cells per axis (truncates the powers-of-two sweep).
    max_cells:
        Skip dimension combinations whose total vertex count exceeds this.
    bandwidth_fractions:
        Mapping of bandwidth label to fraction of each axis extent.
    """

    dim_cap: int = 32
    max_cells: int = 4096
    bandwidth_fractions: dict[str, float] | None = None

    def fractions(self) -> dict[str, float]:
        return self.bandwidth_fractions or DEFAULT_BANDWIDTH_FRACTIONS


def _axis_candidates(
    axis_lengths: Sequence[float], fraction: float, cap: int
) -> list[list[int]]:
    out = []
    for length in axis_lengths:
        bandwidth = fraction * length
        out.append(candidate_dims(max_dim_for_bandwidth(length, bandwidth), cap=cap))
    return out


def build_suite_2d(
    datasets: Iterable[PointDataset] | None = None,
    config: SuiteConfig = SuiteConfig(),
) -> list[IVCInstance]:
    """All 2DS-IVC instances: dataset × plane × bandwidth × dimension combo."""
    if datasets is None:
        datasets = standard_datasets()
    instances: list[IVCInstance] = []
    for dataset in datasets:
        for plane in PLANES:
            _pts, ext = project_points(dataset, plane)
            lengths = [float(ext[a, 1] - ext[a, 0]) for a in range(2)]
            for bw_label, fraction in config.fractions().items():
                cand = _axis_candidates(lengths, fraction, config.dim_cap)
                if not all(cand):
                    continue
                for dims in product(*cand):
                    if int(np.prod(dims)) > config.max_cells:
                        continue
                    grid = voxel_counts_2d(dataset, plane, dims)
                    instances.append(
                        IVCInstance.from_grid_2d(
                            grid,
                            name=f"{dataset.name}-{plane}-{bw_label}-{dims[0]}x{dims[1]}",
                            metadata={
                                "dataset": dataset.name,
                                "plane": plane,
                                "bandwidth": bw_label,
                                "dims": tuple(int(d) for d in dims),
                            },
                        )
                    )
    return instances


def build_suite_3d(
    datasets: Iterable[PointDataset] | None = None,
    config: SuiteConfig = SuiteConfig(dim_cap=16, max_cells=8192),
) -> list[IVCInstance]:
    """All 3DS-IVC instances: dataset × bandwidth × dimension combo."""
    if datasets is None:
        datasets = standard_datasets()
    instances: list[IVCInstance] = []
    for dataset in datasets:
        lengths = [dataset.axis_length(a) for a in range(3)]
        for bw_label, fraction in config.fractions().items():
            cand = _axis_candidates(lengths, fraction, config.dim_cap)
            if not all(cand):
                continue
            for dims in product(*cand):
                if int(np.prod(dims)) > config.max_cells:
                    continue
                grid = voxel_counts_3d(dataset, dims)
                instances.append(
                    IVCInstance.from_grid_3d(
                        grid,
                        name=(
                            f"{dataset.name}-{bw_label}-"
                            f"{dims[0]}x{dims[1]}x{dims[2]}"
                        ),
                        metadata={
                            "dataset": dataset.name,
                            "bandwidth": bw_label,
                            "dims": tuple(int(d) for d in dims),
                        },
                    )
                )
    return instances
