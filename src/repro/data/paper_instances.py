"""Canonical small instances from the paper's Figures 2 and 3.

* :func:`figure2_odd_cycle` — an odd cycle embedded in a 9-pt stencil whose
  optimal coloring (30) strictly exceeds the max-clique bound (25); the gap
  is certified by the odd-cycle ``minchain3`` bound of Theorem 1.
* :func:`figure3_two_cycles` — two odd cycles coupled by two edges where the
  optimum strictly exceeds *both* lower bounds (Section III.D: "lower bounds
  are not tight").  The paper's own figure did not survive text extraction;
  this instance was found by exact search and exhibits the same phenomenon
  (bounds = 14, optimum > 14; the paper's instance had optimum 17).

Both are verified against the exact solvers in the test suite and the
Figure 2/3 benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import IVCInstance

#: The induced 7-cycle used by :func:`figure2_odd_cycle`, as stencil cells.
FIGURE2_CELLS: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 2), (1, 3), (2, 2), (3, 1), (2, 0), (1, 0),
)
#: Weights along the cycle: maxpair 25, minchain3 30.
FIGURE2_WEIGHTS: tuple[int, ...] = (10, 10, 10, 15, 10, 15, 10)

#: Figure 2's certified values.
FIGURE2_CLIQUE_BOUND = 25
FIGURE2_OPTIMUM = 30


def figure2_odd_cycle() -> IVCInstance:
    """The Figure 2 instance: an induced odd cycle inside a 4×4 9-pt stencil.

    The seven positive-weight cells form a chordless cycle (no two
    non-consecutive cells are Moore-adjacent), so the positive-weight
    conflict graph is exactly :math:`C_7`.  The max-clique bound is 25 but
    Theorem 1 gives ``max(maxpair, minchain3) = max(25, 30) = 30``, which is
    also the optimum.
    """
    grid = np.zeros((4, 4), dtype=np.int64)
    for cell, w in zip(FIGURE2_CELLS, FIGURE2_WEIGHTS):
        grid[cell] = w
    return IVCInstance.from_grid_2d(grid, name="figure2-odd-cycle")


def figure2_cycle_graph() -> IVCInstance:
    """The abstract :math:`C_7` of Figure 2 (cycle graph, same weights)."""
    edges = [(i, (i + 1) % 7) for i in range(7)]
    return IVCInstance.from_edges(7, edges, FIGURE2_WEIGHTS, name="figure2-c7")


#: Weights of the two coupled 5-cycles of :func:`figure3_two_cycles`.
FIGURE3_WEIGHTS_A: tuple[int, ...] = (3, 6, 5, 7, 6)
FIGURE3_WEIGHTS_B: tuple[int, ...] = (7, 6, 4, 3, 5)
#: The best Section III lower bound on this instance (odd-cycle minchain3;
#: maxpair is 13).
FIGURE3_BOUNDS = 14
#: The exact optimum (branch-and-bound + MILP certified).
FIGURE3_OPTIMUM = 16


def figure3_two_cycles() -> IVCInstance:
    """Two odd cycles with two pairs of neighboring vertices (Figure 3).

    Vertices 0–4 form one 5-cycle, 5–9 the other; cross edges (0,5) and
    (1,6) couple them.  The best Section III bound is the odd-cycle bound
    (14), yet no 14- or 15-coloring exists: the optimum is 16.
    """
    edges = (
        [(i, (i + 1) % 5) for i in range(5)]
        + [(5 + i, 5 + (i + 1) % 5) for i in range(5)]
        + [(0, 5), (1, 6)]
    )
    weights = list(FIGURE3_WEIGHTS_A) + list(FIGURE3_WEIGHTS_B)
    return IVCInstance.from_edges(10, edges, weights, name="figure3-two-cycles")
