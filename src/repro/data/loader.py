"""Loading real spatio-temporal event data.

The paper's four datasets are not redistributable, but anyone holding
comparable data (e.g. the STKDE authors' files, or any CSV of events with
two spatial coordinates and a timestamp) can drop it in and rerun every
experiment on it.  :func:`load_events_csv` accepts a plain CSV with
configurable columns; :func:`from_arrays` wraps already-parsed arrays.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.events import PointDataset


def from_arrays(
    name: str,
    x,
    y,
    t,
    extent=None,
    pad_fraction: float = 0.01,
) -> PointDataset:
    """Build a dataset from coordinate arrays.

    ``extent`` defaults to the data's bounding box padded by
    ``pad_fraction`` per axis (so boundary events don't sit exactly on the
    voxelization edge).
    """
    points = np.column_stack(
        [
            np.asarray(x, dtype=np.float64),
            np.asarray(y, dtype=np.float64),
            np.asarray(t, dtype=np.float64),
        ]
    )
    if len(points) == 0:
        raise ValueError("no events")
    if extent is None:
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.where(hi - lo > 0, hi - lo, 1.0)
        extent = np.column_stack([lo - pad_fraction * span, hi + pad_fraction * span])
    return PointDataset(name=name, points=points, extent=np.asarray(extent, float))


def load_events_csv(
    path,
    name: str | None = None,
    x_column: str = "x",
    y_column: str = "y",
    t_column: str = "t",
    delimiter: str = ",",
    extent=None,
) -> PointDataset:
    """Load events from a CSV file with a header row.

    Parameters
    ----------
    x_column, y_column, t_column:
        Header names of the two spatial coordinates and the timestamp
        (any numeric encoding — days, seconds, epoch — works, since only
        relative positions matter to the decomposition).
    """
    path = Path(path)
    xs: list[float] = []
    ys: list[float] = []
    ts: list[float] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise ValueError(f"{path} has no header row")
        missing = {x_column, y_column, t_column} - set(reader.fieldnames)
        if missing:
            raise ValueError(f"{path} is missing columns {sorted(missing)}")
        for row_number, row in enumerate(reader, start=2):
            try:
                xs.append(float(row[x_column]))
                ys.append(float(row[y_column]))
                ts.append(float(row[t_column]))
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{row_number}: bad numeric value") from exc
    if not xs:
        raise ValueError(f"{path} contains no event rows")
    return from_arrays(name or path.stem, xs, ys, ts, extent=extent)


def load_directory(
    directory,
    pattern: str = "*.csv",
    **kwargs,
) -> list[PointDataset]:
    """Load every matching CSV in a directory (one dataset per file)."""
    directory = Path(directory)
    datasets = [
        load_events_csv(path, **kwargs) for path in sorted(directory.glob(pattern))
    ]
    if not datasets:
        raise ValueError(f"no files matching {pattern} under {directory}")
    return datasets
