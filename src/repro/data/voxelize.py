"""Rectilinear decomposition of point clouds into stencil weight grids.

The parallel STKDE strategy partitions space into uniform boxes no smaller
than **twice the bandwidth** per axis; a box then conflicts exactly with its
Moore neighbors, giving the 9-pt / 27-pt stencil conflict graph whose vertex
weights are the per-box point counts (Sections I, VI.A, VII).

This module provides the bandwidth-to-dimension arithmetic, the powers-of-two
dimension sweep of Section VI.A, axis projections for the 2D experiments, and
vectorized voxel counting.
"""

from __future__ import annotations

import numpy as np

from repro.data.events import PointDataset

#: The three projection planes used for the 2DS-IVC experiments.
PLANES: dict[str, tuple[int, int]] = {"xy": (0, 1), "xt": (0, 2), "yt": (1, 2)}


def max_dim_for_bandwidth(axis_length: float, bandwidth: float) -> int:
    """Largest cell count so each cell is at least ``2 * bandwidth`` wide."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if axis_length <= 0:
        raise ValueError("axis length must be positive")
    return max(1, int(np.floor(axis_length / (2.0 * bandwidth))))


def candidate_dims(max_dim: int, cap: int | None = None) -> list[int]:
    """The paper's dimension sweep: all powers of two ``<= max_dim``, plus
    ``max_dim`` itself.

    Dimensions below 2 are dropped (a 1-wide stencil degenerates to a lower
    dimension, excluded by Definition 2/3).  ``cap`` optionally truncates the
    sweep to keep experiment suites laptop-sized.
    """
    if max_dim < 2:
        return []
    dims = []
    p = 2
    while p <= max_dim:
        dims.append(p)
        p *= 2
    if max_dim not in dims:
        dims.append(max_dim)
    if cap is not None:
        dims = [d for d in dims if d <= cap]
    return sorted(dims)


def project_points(dataset: PointDataset, plane: str) -> tuple[np.ndarray, np.ndarray]:
    """Project onto one of the ``xy``/``xt``/``yt`` planes.

    Returns ``(points_2d, extent_2d)`` with shapes ``(N, 2)`` and ``(2, 2)``.
    """
    try:
        a, b = PLANES[plane]
    except KeyError:
        raise ValueError(f"unknown plane {plane!r}; use one of {sorted(PLANES)}") from None
    return dataset.points[:, [a, b]], dataset.extent[[a, b]]


def _counts(points: np.ndarray, extent: np.ndarray, dims: tuple[int, ...]) -> np.ndarray:
    """Per-cell point counts over a uniform grid (vectorized binning)."""
    ndim = len(dims)
    if points.size == 0:
        return np.zeros(dims, dtype=np.int64)
    idx = np.empty((len(points), ndim), dtype=np.int64)
    for axis in range(ndim):
        lo, hi = extent[axis]
        span = hi - lo
        scaled = (points[:, axis] - lo) / span * dims[axis]
        idx[:, axis] = np.clip(scaled.astype(np.int64), 0, dims[axis] - 1)
    flat = np.ravel_multi_index(tuple(idx.T), dims)
    counts = np.bincount(flat, minlength=int(np.prod(dims)))
    return counts.reshape(dims).astype(np.int64)


def voxel_counts_3d(dataset: PointDataset, dims: tuple[int, int, int]) -> np.ndarray:
    """Point counts on an ``(X, Y, Z)`` grid over the dataset extent."""
    if len(dims) != 3:
        raise ValueError("dims must be (X, Y, Z)")
    return _counts(dataset.points, dataset.extent, tuple(int(d) for d in dims))


def voxel_counts_2d(
    dataset: PointDataset, plane: str, dims: tuple[int, int]
) -> np.ndarray:
    """Point counts on an ``(X, Y)`` grid of a plane projection."""
    if len(dims) != 2:
        raise ValueError("dims must be (X, Y)")
    pts, ext = project_points(dataset, plane)
    return _counts(pts, ext, tuple(int(d) for d in dims))


def density_ascii(grid: np.ndarray, width: int = 48) -> str:
    """A coarse ASCII rendering of a 2D count grid (used by the Fig. 4 bench).

    Rows are printed with the second axis vertical, darker glyphs for denser
    cells, downsampled to at most ``width`` columns.
    """
    if grid.ndim != 2:
        raise ValueError("density_ascii expects a 2D grid")
    glyphs = " .:-=+*#%@"
    g = grid.astype(np.float64)
    step = max(1, int(np.ceil(g.shape[0] / width)))
    if step > 1:
        pad = (-g.shape[0]) % step
        g = np.pad(g, ((0, pad), (0, 0)))
        g = g.reshape(g.shape[0] // step, step, g.shape[1]).sum(axis=1)
    top = g.max()
    if top <= 0:
        return "\n".join(" " * g.shape[0] for _ in range(g.shape[1]))
    scaled = np.sqrt(g / top)  # sqrt for visibility of sparse cells
    levels = np.minimum((scaled * (len(glyphs) - 1)).astype(int), len(glyphs) - 1)
    lines = []
    for j in range(g.shape[1] - 1, -1, -1):
        lines.append("".join(glyphs[levels[i, j]] for i in range(g.shape[0])))
    return "\n".join(lines)
