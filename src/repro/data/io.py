"""Instance and coloring persistence.

Instances round-trip through ``.npz`` archives carrying the weight grid (for
stencil instances) or the edge list (for general graphs), plus name and
metadata.  Colorings save alongside as plain ``.npy`` start vectors — the
format the CLI's ``solve --output`` writes.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance


def save_instance(instance: IVCInstance, path) -> None:
    """Save an instance to a ``.npz`` archive."""
    path = Path(path)
    payload = {
        "name": np.array(instance.name),
        "metadata": np.array(json.dumps(instance.metadata, default=str)),
    }
    if instance.geometry is not None:
        payload["weight_grid"] = instance.weight_grid()
    else:
        payload["weights"] = instance.weights
        payload["edges"] = instance.graph.edges()
        payload["num_vertices"] = np.array(instance.num_vertices)
    np.savez_compressed(path, **payload)


def load_instance(path) -> IVCInstance:
    """Load an instance saved by :func:`save_instance`."""
    with np.load(Path(path), allow_pickle=False) as data:
        name = str(data["name"])
        metadata = json.loads(str(data["metadata"]))
        if "weight_grid" in data:
            grid = data["weight_grid"]
            if grid.ndim == 2:
                return IVCInstance.from_grid_2d(grid, name=name, metadata=metadata)
            if grid.ndim == 3:
                return IVCInstance.from_grid_3d(grid, name=name, metadata=metadata)
            raise ValueError(f"unsupported grid rank {grid.ndim}")
        instance = IVCInstance.from_edges(
            int(data["num_vertices"]),
            [tuple(e) for e in data["edges"]],
            data["weights"],
            name=name,
        )
        instance.metadata.update(metadata)
        return instance


def save_coloring(coloring: Coloring, path) -> None:
    """Save a coloring's start vector (grid-shaped for stencil instances)."""
    if coloring.instance.geometry is not None:
        np.save(Path(path), coloring.as_grid())
    else:
        np.save(Path(path), coloring.starts)


def load_coloring(instance: IVCInstance, path, algorithm: str = "loaded") -> Coloring:
    """Load a start vector saved by :func:`save_coloring` for ``instance``."""
    starts = np.load(Path(path))
    return Coloring(instance=instance, starts=starts.ravel(), algorithm=algorithm)
