"""Not-All-Equal 3-SAT.

An NAE-3SAT instance has ``n`` boolean variables and ``m`` clauses of three
*distinct, positive* variables; an assignment satisfies a clause iff the
three values are not all equal (at least one true and one false).  Two
properties make it convenient for reductions (Section IV): no negations are
needed, and the bitwise complement of a solution is also a solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterator, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class NAE3SAT:
    """An NAE-3SAT formula.

    Attributes
    ----------
    num_vars:
        Number of boolean variables, indexed ``0 .. num_vars - 1``.
    clauses:
        Tuples of three distinct variable indices, each sorted increasingly
        (the reduction assumes ``j1 < j2 < j3``).
    """

    num_vars: int
    clauses: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if self.num_vars < 1:
            raise ValueError("need at least one variable")
        normalized = []
        for clause in self.clauses:
            if len(clause) != 3 or len(set(clause)) != 3:
                raise ValueError(f"clause {clause} must have three distinct variables")
            lo, mid, hi = sorted(int(v) for v in clause)
            if lo < 0 or hi >= self.num_vars:
                raise ValueError(f"clause {clause} out of range for n={self.num_vars}")
            normalized.append((lo, mid, hi))
        object.__setattr__(self, "clauses", tuple(normalized))

    @property
    def num_clauses(self) -> int:
        """Number of clauses ``m``."""
        return len(self.clauses)

    # -------------------------------------------------------------- semantics
    def clause_satisfied(self, clause: tuple[int, int, int], assignment: Sequence[bool]) -> bool:
        """Whether the clause's three values are not all equal."""
        a, b, c = (bool(assignment[v]) for v in clause)
        return not (a == b == c)

    def is_satisfied(self, assignment: Sequence[bool]) -> bool:
        """Whether every clause is NAE-satisfied by the assignment."""
        if len(assignment) != self.num_vars:
            raise ValueError(f"assignment must have {self.num_vars} values")
        return all(self.clause_satisfied(cl, assignment) for cl in self.clauses)

    # ---------------------------------------------------------------- solving
    def solve_brute_force(self) -> Optional[tuple[bool, ...]]:
        """First satisfying assignment in lexicographic order, or ``None``.

        Exponential (``2^n``); guarded to small formulas.  By the complement
        symmetry it only needs to scan assignments with variable 0 false,
        halving the work.
        """
        if self.num_vars > 24:
            raise ValueError("brute force is limited to 24 variables")
        for tail in product((False, True), repeat=self.num_vars - 1):
            assignment = (False, *tail)
            if self.is_satisfied(assignment):
                return assignment
        return None

    def is_satisfiable(self) -> bool:
        """Whether some assignment NAE-satisfies the formula (brute force)."""
        return self.solve_brute_force() is not None

    def count_solutions(self) -> int:
        """Number of satisfying assignments (always even, by complementation)."""
        if self.num_vars > 20:
            raise ValueError("counting is limited to 20 variables")
        return sum(
            1
            for bits in product((False, True), repeat=self.num_vars)
            if self.is_satisfied(bits)
        )


def random_nae3sat(num_vars: int, num_clauses: int, seed: int = 0) -> NAE3SAT:
    """Uniformly random formula: each clause is a random 3-subset of variables."""
    if num_vars < 3:
        raise ValueError("need at least three variables for a clause")
    rng = np.random.default_rng(seed)
    clauses = []
    for _ in range(num_clauses):
        trio = rng.choice(num_vars, size=3, replace=False)
        clauses.append(tuple(sorted(int(v) for v in trio)))
    return NAE3SAT(num_vars=num_vars, clauses=tuple(clauses))


def all_clause_sets(num_vars: int, num_clauses: int) -> Iterator[NAE3SAT]:
    """Every formula with exactly ``num_clauses`` distinct clauses (exhaustive tests)."""
    pool = list(combinations(range(num_vars), 3))
    for chosen in combinations(pool, num_clauses):
        yield NAE3SAT(num_vars=num_vars, clauses=tuple(chosen))


def unsatisfiable_example() -> NAE3SAT:
    """The smallest unsatisfiable monotone NAE-3SAT formula: the Fano plane.

    A monotone NAE-3SAT formula is satisfiable iff its clause hypergraph is
    2-colorable (no clause monochromatic).  The Fano plane — 7 points, 7
    lines — is the smallest 3-uniform hypergraph that is not 2-colorable,
    so its lines as clauses give the smallest unsatisfiable instance.
    """
    fano = ((0, 1, 2), (0, 3, 4), (0, 5, 6), (1, 3, 5), (1, 4, 6), (2, 3, 6), (2, 4, 5))
    return NAE3SAT(num_vars=7, clauses=fano)
