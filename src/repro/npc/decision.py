"""Decision oracles for "colorable with at most K colors?".

Two independent engines answer the NP-complete decision question on small
instances:

* the CSP search of :mod:`repro.core.exact.branch_and_bound` (pure Python,
  forward checking), and
* the MILP of :mod:`repro.core.exact.milp` with the objective replaced by
  feasibility at ``M = K``.

:func:`decide_stencil_coloring` picks an engine (or tries the CSP first and
falls back to the MILP when the search budget blows).  Having two engines
lets the NP-completeness tests cross-validate the reduction without trusting
a single solver.
"""

from __future__ import annotations

from typing import Optional

from repro.core.coloring import Coloring
from repro.core.exact.branch_and_bound import SearchBudgetExceeded, decide_coloring
from repro.core.exact.milp import milp_decide
from repro.core.problem import IVCInstance


def decide_stencil_coloring(
    instance: IVCInstance,
    k: int,
    method: str = "auto",
    csp_node_budget: int = 200_000,
    milp_time_limit: float = 120.0,
) -> Optional[Coloring]:
    """A coloring with ``maxcolor <= k`` or ``None`` (proven impossible).

    Parameters
    ----------
    method:
        ``"csp"`` — DFS with forward checking; ``"milp"`` — HiGHS
        feasibility; ``"auto"`` — CSP first, MILP on budget blow-up.
    """
    if method == "csp":
        return decide_coloring(instance, k, node_budget=csp_node_budget)
    if method == "milp":
        return milp_decide(instance, k, time_limit=milp_time_limit)
    if method == "auto":
        try:
            return decide_coloring(instance, k, node_budget=csp_node_budget)
        except SearchBudgetExceeded:
            return milp_decide(instance, k, time_limit=milp_time_limit)
    raise ValueError(f"unknown method {method!r}; use 'csp', 'milp' or 'auto'")
