"""NP-completeness machinery (Section IV of the paper).

The decision version of 3DS-IVC ("colorable with at most K colors?") is
NP-complete; the proof reduces from Not-All-Equal 3-SAT.  This subpackage
makes the reduction executable:

* :mod:`~repro.npc.nae3sat` — NAE-3SAT instances, a brute-force solver, and
  generators for exhaustive/random validation.
* :mod:`~repro.npc.reduction` — the tube/wire/triangle gadget construction
  mapping a formula to a 27-pt stencil instance with threshold ``K = 14``.
* :mod:`~repro.npc.decision` — decision oracles (CSP search or MILP) plus
  the two directions of the equivalence: building a 14-coloring from a
  satisfying assignment and reading an assignment back off a coloring.
"""

from repro.npc.decision import decide_stencil_coloring
from repro.npc.nae3sat import NAE3SAT, random_nae3sat
from repro.npc.reduction import (
    Reduction,
    assignment_from_coloring,
    build_reduction,
    coloring_from_assignment,
)

__all__ = [
    "NAE3SAT",
    "Reduction",
    "assignment_from_coloring",
    "build_reduction",
    "coloring_from_assignment",
    "decide_stencil_coloring",
    "random_nae3sat",
]
