"""The NAE-3SAT → 3DS-IVC reduction (Section IV).

Given a formula with ``n`` variables and ``m`` clauses, build a 27-pt stencil
instance of size ``(2n+10) × 9 × 2m`` with weights in ``{0, 3, 7}`` that is
colorable with ``K = 14`` colors iff the formula is NAE-satisfiable.

Construction (paper coordinates are 1-indexed; ``p = 2i - 1`` is the column
of variable ``i``):

* **Tubes** — for every variable, a chain of 7s alternating between
  ``y = 2`` (odd layers) and ``y = 1`` (even layers) across the full depth.
  Under ``K = 14`` adjacent 7s must occupy ``[0, 7)`` and ``[7, 14)``
  alternately, so the whole chain carries one boolean "polarity".
* **Wires** — in the layer of clause ``j`` (``z = 2j + 1``), a chain of 7s
  from each clause variable's tube vertex to the clause gadget.  All chain
  turns are 45° (straight or diagonal) so the 7-subgraph stays a tree, and
  every wire has *even* length, so the terminal 7 carries exactly the
  variable's polarity.
* **Clause triangle** — three weight-3 vertices, pairwise adjacent, each
  adjacent to exactly one wire terminal.  If all three terminals share a
  polarity they block one half of ``[0, 14)``, leaving 7 colors for three
  mutually-conflicting 3s that need 9 — infeasible.  With mixed polarities a
  feasible placement always exists.

The paper's figure enumerating the right-hand side of the clause layer did
not survive text extraction, so the gadget geometry here (terminal routing
and triangle placement) is an equivalent reconstruction preserving the
invariants the proof actually uses; ``tests/npc`` validates the equivalence
exhaustively on small formulas against brute-force NAE-3SAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.npc.nae3sat import NAE3SAT

#: The decision threshold of the reduction.
K_REDUCTION = 14

Cell = tuple[int, int, int]  # paper-style 1-indexed (x, y, z)


@dataclass(frozen=True)
class Reduction:
    """The instance produced by :func:`build_reduction`, plus its bookkeeping.

    Attributes
    ----------
    formula:
        The source NAE-3SAT formula.
    instance:
        The 3DS-IVC instance (zeros everywhere except tubes/wires/triangles).
    k:
        The decision threshold (always 14).
    seven_cells:
        Maps each weight-7 cell to ``(variable, parity)`` where ``parity`` is
        its chain distance from the variable's tube base mod 2.
    var_base:
        Maps each variable to its tube base cell ``(2i-1, 2, 1)`` whose
        interval defines the variable's truth value (``[0,7)`` = true).
    clause_gadgets:
        Per clause: ``(terminals, threes)`` where ``terminals[q]`` is the
        terminal 7-cell of the clause's ``q``-th wire and ``threes[q]`` the
        weight-3 cell attached to it.
    """

    formula: NAE3SAT
    instance: IVCInstance
    k: int
    seven_cells: dict[Cell, tuple[int, int]]
    var_base: dict[int, Cell]
    clause_gadgets: tuple[tuple[tuple[Cell, ...], tuple[Cell, ...]], ...]

    def flat_id(self, cell: Cell) -> int:
        """Flat vertex id of a paper-style 1-indexed cell."""
        x, y, z = cell
        return int(self.instance.geometry.vertex_id(x - 1, y - 1, z - 1))


def _wire_cells(p: int, n: int, which: int) -> list[Cell]:
    """In-layer chain cells of a wire, in order, starting at the tube vertex.

    ``which`` is 0/1/2 for the clause's first/second/third variable.  ``z``
    is filled in by the caller.  All turns are 45° so consecutive cells are
    the only adjacent pairs within the chain.
    """
    right = 2 * n  # x = 2n; the gadget occupies columns 2n+1 .. 2n+7
    cells: list[tuple[int, int]] = []
    if which == 0:
        cells += [(p, y) for y in range(2, 8)]          # vertical y=2..7
        cells += [(p + 1, 8)]                            # 45° up-right
        cells += [(x, 8) for x in range(p + 2, right + 5)]  # y=8 run to 2n+4
    elif which == 1:
        cells += [(p, y) for y in range(2, 6)]          # vertical y=2..5
        cells += [(p + 1, 6)]
        cells += [(x, 6) for x in range(p + 2, right + 4)]  # y=6 run to 2n+3
        cells += [(right + 4, 5)]                        # 45° down to terminal
    else:
        cells += [(p, y) for y in range(2, 4)]          # vertical y=2..3
        cells += [(p + 1, 4)]
        cells += [(x, 4) for x in range(p + 2, right + 2)]  # y=4 run to 2n+1
        cells += [(right + 2, 3)]                        # 45° down
        cells += [(x, 3) for x in range(right + 3, right + 7)]  # y=3 run to 2n+6
        cells += [(right + 7, 4), (right + 7, 5)]        # 45° up, then vertical
    return [(x, y, 0) for x, y in cells]  # z placeholder


def _triangle_cells(n: int) -> tuple[Cell, ...]:
    """The three mutually-adjacent weight-3 cells of a clause layer."""
    right = 2 * n
    return ((right + 5, 7, 0), (right + 5, 6, 0), (right + 6, 6, 0))


def build_reduction(formula: NAE3SAT) -> Reduction:
    """Construct the 3DS-IVC instance of the reduction for ``formula``."""
    n = formula.num_vars
    m = formula.num_clauses
    if m < 1:
        raise ValueError("the reduction needs at least one clause")
    W, H, D = 2 * n + 10, 9, 2 * m
    grid = np.zeros((W, H, D), dtype=np.int64)

    def put(cell: Cell, w: int) -> None:
        x, y, z = cell
        if not (1 <= x <= W and 1 <= y <= H and 1 <= z <= D):
            raise AssertionError(f"cell {cell} outside the {W}x{H}x{D} grid")
        if grid[x - 1, y - 1, z - 1] not in (0, w):
            raise AssertionError(f"cell {cell} assigned conflicting weights")
        grid[x - 1, y - 1, z - 1] = w

    seven_cells: dict[Cell, tuple[int, int]] = {}
    var_base: dict[int, Cell] = {}

    # Tubes: variable i sits in column p = 2i + 1 (0-indexed i -> paper 2i-1).
    for var in range(n):
        p = 2 * var + 1
        var_base[var] = (p, 2, 1)
        for z in range(1, D + 1):
            cell = (p, 2, z) if z % 2 == 1 else (p, 1, z)
            put(cell, 7)
            seven_cells[cell] = (var, (z - 1) % 2)

    gadgets = []
    for j, clause in enumerate(formula.clauses):
        z = 2 * j + 1
        terminals: list[Cell] = []
        for which, var in enumerate(clause):
            p = 2 * var + 1
            chain = [(x, y, z) for x, y, _ in _wire_cells(p, n, which)]
            base_parity = (z - 1) % 2  # parity of the tube vertex in this layer
            for dist, cell in enumerate(chain):
                parity = (base_parity + dist) % 2
                if cell in seven_cells:
                    # Only the tube vertex itself may be revisited (dist 0).
                    if dist != 0 or seven_cells[cell] != (var, parity):
                        raise AssertionError(f"wire overlap at {cell}")
                    continue
                put(cell, 7)
                seven_cells[cell] = (var, parity)
            terminals.append(chain[-1])
        threes = tuple((x, y, z) for x, y, _ in _triangle_cells(n))
        for cell in threes:
            put(cell, 3)
        gadgets.append((tuple(terminals), threes))

    instance = IVCInstance.from_grid_3d(
        grid,
        name=f"nae3sat-n{n}-m{m}",
        metadata={"reduction": "NAE3SAT", "k": K_REDUCTION},
    )
    return Reduction(
        formula=formula,
        instance=instance,
        k=K_REDUCTION,
        seven_cells=seven_cells,
        var_base=var_base,
        clause_gadgets=tuple(gadgets),
    )


def coloring_from_assignment(reduction: Reduction, assignment) -> Coloring:
    """The constructive direction: a satisfying assignment → a 14-coloring.

    7-cells take ``[0,7)`` or ``[7,14)`` according to their variable's value
    and chain parity; each clause triangle is placed using the clause's
    minority polarity.  The result is validated before being returned.
    """
    formula = reduction.formula
    if not formula.is_satisfied(assignment):
        raise ValueError("assignment does not satisfy the formula")
    starts = np.zeros(reduction.instance.num_vertices, dtype=np.int64)
    for cell, (var, parity) in reduction.seven_cells.items():
        base = 0 if assignment[var] else 7
        starts[reduction.flat_id(cell)] = base if parity == 0 else 7 - base
    for (terminals, threes) in reduction.clause_gadgets:
        term_starts = [int(starts[reduction.flat_id(t)]) for t in terminals]
        # Majority polarity blocks one half; its 3s live in the other half.
        majority = 0 if sum(1 for s in term_starts if s == 0) >= 2 else 7
        minority = 7 - majority
        placed_minor = 0
        for q, t_start in enumerate(term_starts):
            three = reduction.flat_id(threes[q])
            if t_start == majority:
                # Avoid the majority half: stack inside the minority half.
                starts[three] = minority + 3 * placed_minor
                placed_minor += 1
            else:
                starts[three] = majority
    coloring = Coloring(
        instance=reduction.instance, starts=starts, algorithm="reduction-witness"
    ).check()
    if coloring.maxcolor > reduction.k:
        raise AssertionError("witness coloring exceeded K=14")
    return coloring


def assignment_from_coloring(reduction: Reduction, coloring: Coloring) -> tuple[bool, ...]:
    """The extraction direction: read variable values off the tube bases.

    Variable ``i`` is true iff its tube base ``(2i-1, 2, 1)`` is colored in
    the lower half ``[0, 7)``.
    """
    if coloring.maxcolor > reduction.k:
        raise ValueError(f"coloring uses {coloring.maxcolor} > K={reduction.k} colors")
    coloring.check()
    values = []
    for var in range(reduction.formula.num_vars):
        start = int(coloring.starts[reduction.flat_id(reduction.var_base[var])])
        values.append(start < 7)
    return tuple(values)
