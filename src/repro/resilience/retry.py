"""Retry policies with exponential backoff, seeded jitter, and a budget.

One :class:`RetryPolicy` describes *how* to retry (attempt budget, backoff
curve, jitter); it owns no state, so a single policy object can be shared by
many clients.  Delays are computed from an explicit ``random.Random`` (or
none, for the deterministic upper-bound curve), keeping chaos runs
reproducible.

Retrying is only sound for idempotent work.  Everything routed through
these policies in this tree qualifies: service requests are
content-addressed (the same weights + algorithm always produce the same
coloring, and re-asking at worst re-hits the cache) and engine cells are
pure functions of their instance.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

T = TypeVar("T")

__all__ = ["RetryPolicy", "call_with_retries"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a bounded attempt budget.

    Attributes
    ----------
    retries:
        Additional attempts after the first (``0`` disables retrying).
    base_delay:
        Backoff before the first retry, in seconds.
    max_delay:
        Ceiling on any single backoff, in seconds.
    multiplier:
        Geometric growth factor between consecutive backoffs.
    jitter:
        Fraction of each delay that is randomized: the actual sleep is
        uniform in ``[delay * (1 - jitter), delay]``.  ``0`` sleeps the full
        deterministic delay.
    """

    retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative, got {self.retries}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before retry number ``attempt`` (0-based), in seconds."""
        full = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if rng is None or self.jitter == 0.0:
            return full
        return full * (1.0 - self.jitter * rng.random())

    def should_retry(self, attempt: int) -> bool:
        """Whether retry number ``attempt`` (0-based) is within budget."""
        return attempt < self.retries


def call_with_retries(
    fn: Callable[[], T],
    policy: RetryPolicy,
    *,
    retry_on: tuple[type[BaseException], ...] = (Exception,),
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
) -> T:
    """Call ``fn`` under ``policy``, retrying on ``retry_on`` exceptions.

    ``on_retry(attempt, exc)`` is invoked before each backoff (for counters
    and logging).  The final failure re-raises unmodified.
    """
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if not policy.should_retry(attempt):
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(policy.delay(attempt, rng))
            attempt += 1
