"""Deterministic, seeded fault injection for chaos testing.

A :class:`FaultPlan` is a set of :class:`FaultPoint` rules, each naming an
*injection site* (a dotted string compiled into the production code, e.g.
``engine.cell`` or ``client.send``), a fault *kind*, and a firing
probability.  Whether a point fires for a given ``(site, token)`` pair is a
pure function of the plan seed — a blake2b hash of ``seed|site|kind|token``
compared against the probability — so a chaos run is exactly reproducible:
the same plan on the same workload injects the same faults in the same
places, regardless of thread/process scheduling.

Sites pass a *token* identifying the unit of work (a cell id plus its
attempt number, a request id, a cache key).  Including the attempt number in
the token is what lets retried work draw a fresh decision: a cell that
crashed on attempt 0 rolls new dice on attempt 1 instead of crashing
forever.

Hook sites compiled into the tree
---------------------------------
================== ======================= =================================
site               kinds honoured          where
================== ======================= =================================
``engine.cell``    crash, error, slow      engine worker, per cell attempt
``client.send``    drop, partial, slow     service clients, before the write
``client.recv``    drop, slow              service clients, before the read
``service.compute`` error, slow            batcher kernel dispatch (fast
                                           attempt only — triggers the
                                           degraded slow-path fallback)
``cache.spill.write`` corrupt, torn        result-cache spill append
``service.recolor`` crash, error, slow     recolor verb, before seed/delta
                                           state is mutated (retry-safe)
``durability.journal.append`` torn, error  session WAL append: ``torn``
                                           writes half the record then
                                           raises (the un-acked delta is
                                           re-sent and re-journaled),
                                           ``error`` fails before writing
``durability.checkpoint.write`` corrupt, stale  session checkpoint
                                           compaction: ``corrupt`` damages
                                           the snapshot so read-back
                                           verification rejects it (journal
                                           kept), ``stale`` skips the
                                           checkpoint (journal grows)
================== ======================= =================================

Activation
----------
Programmatic: :func:`install_plan` / :func:`clear_plan`.  Environment: set
``REPRO_FAULTS`` to a spec string (see :func:`parse_fault_spec`), e.g.::

    REPRO_FAULTS="seed=11;engine.cell:crash=0.2;client.send:drop=0.1,max=5"

The environment plan is parsed lazily on first use, so freshly forked engine
workers and spawned servers observe the same plan.  With no plan installed
every hook is a no-op costing one ``None`` check.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "FaultPoint",
    "FaultPlan",
    "InjectedFault",
    "parse_fault_spec",
    "install_plan",
    "clear_plan",
    "active_plan",
    "draw",
    "inject",
]

#: Exit code of a worker process killed by an injected ``crash`` fault.
CRASH_EXIT_CODE = 70


class InjectedFault(RuntimeError):
    """Raised by an ``error``-kind fault point (or by custom hook sites)."""


@dataclass(frozen=True)
class FaultPoint:
    """One injection rule: fire ``kind`` at ``site`` with ``probability``.

    Attributes
    ----------
    site:
        Dotted injection-site name the rule applies to.
    kind:
        Fault behaviour — what the hook site does when the point fires
        (``crash``, ``error``, ``slow``, ``drop``, ``partial``, ``corrupt``,
        ``torn``; sites honour the subset that makes sense for them).
    probability:
        Chance in ``[0, 1]`` that the point fires for a given token
        (deterministic per ``(seed, site, kind, token)``).
    max_fires:
        Per-process budget; once exhausted the point never fires again in
        this process.  ``None`` means unlimited.
    delay:
        Sleep duration in seconds for ``slow`` faults.
    """

    site: str
    kind: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    delay: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")


def _unit_draw(seed: int, site: str, kind: str, token: str) -> float:
    """A deterministic uniform draw in ``[0, 1)`` for one decision."""
    h = hashlib.blake2b(
        f"{seed}|{site}|{kind}|{token}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(h, "big") / 2**64


@dataclass
class FaultPlan:
    """A seeded set of fault points, with per-process fire accounting."""

    seed: int = 0
    points: list[FaultPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._fired: dict[int, int] = {}
        self._log: list[tuple[str, str, str]] = []

    def draw(self, site: str, token: str) -> Optional[FaultPoint]:
        """The fault point firing at ``site`` for ``token``, if any.

        The probability decision is deterministic in the plan seed; the
        ``max_fires`` budget is per-process state guarded by a lock.
        """
        for idx, point in enumerate(self.points):
            if point.site != site:
                continue
            if _unit_draw(self.seed, site, point.kind, token) >= point.probability:
                continue
            with self._lock:
                fired = self._fired.get(idx, 0)
                if point.max_fires is not None and fired >= point.max_fires:
                    continue
                self._fired[idx] = fired + 1
                self._log.append((site, point.kind, token))
            return point
        return None

    def fired(self) -> list[tuple[str, str, str]]:
        """Every ``(site, kind, token)`` fired so far in this process."""
        with self._lock:
            return list(self._log)

    def fire_counts(self) -> dict[str, int]:
        """Per-``site:kind`` fire counts in this process."""
        with self._lock:
            counts: dict[str, int] = {}
            for idx, n in self._fired.items():
                point = self.points[idx]
                label = f"{point.site}:{point.kind}"
                counts[label] = counts.get(label, 0) + n
            return counts


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse a compact fault spec into a :class:`FaultPlan`.

    Grammar: ``;``-separated segments, each either ``seed=N`` or
    ``site:kind=prob`` with optional ``,``-separated options ``max=N``
    (per-process fire budget) and ``delay=S`` (seconds, for ``slow``)::

        seed=11;engine.cell:crash=0.2;client.send:drop=0.1,max=5
        service.compute:slow=1.0,delay=0.2
    """
    plan = FaultPlan()
    for segment in text.split(";"):
        segment = segment.strip()
        if not segment:
            continue
        if segment.startswith("seed="):
            plan.seed = int(segment[len("seed="):])
            continue
        head, _, opts = segment.partition(",")
        try:
            target, prob_text = head.split("=")
            site, kind = target.rsplit(":", 1)
        except ValueError:
            raise ValueError(
                f"bad fault segment {segment!r}: expected site:kind=prob"
            ) from None
        max_fires: Optional[int] = None
        delay = 0.05
        for opt in opts.split(","):
            opt = opt.strip()
            if not opt:
                continue
            name, _, value = opt.partition("=")
            if name == "max":
                max_fires = int(value)
            elif name == "delay":
                delay = float(value)
            else:
                raise ValueError(f"unknown fault option {opt!r} in {segment!r}")
        plan.points.append(
            FaultPoint(
                site=site.strip(),
                kind=kind.strip(),
                probability=float(prob_text),
                max_fires=max_fires,
                delay=delay,
            )
        )
    return plan


_PLAN: Optional[FaultPlan] = None
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` clears, like :func:`clear_plan`)."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        _PLAN = plan
        _ENV_CHECKED = True  # an explicit install overrides the environment


def clear_plan() -> None:
    """Remove any installed plan and forget the environment parse."""
    global _PLAN, _ENV_CHECKED
    with _INSTALL_LOCK:
        _PLAN = None
        _ENV_CHECKED = False


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, lazily parsing ``REPRO_FAULTS`` on first use."""
    global _PLAN, _ENV_CHECKED
    if _ENV_CHECKED:
        return _PLAN
    with _INSTALL_LOCK:
        if not _ENV_CHECKED:
            spec = os.environ.get("REPRO_FAULTS", "")
            _PLAN = parse_fault_spec(spec) if spec.strip() else None
            _ENV_CHECKED = True
    return _PLAN


def draw(site: str, token: str) -> Optional[FaultPoint]:
    """Hook-site helper: the firing point for ``(site, token)``, or ``None``.

    Use this where the site interprets the fault itself (connection drops,
    spill corruption); use :func:`inject` for the generic semantics.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.draw(site, token)


def inject(site: str, token: str) -> Optional[FaultPoint]:
    """Apply generic fault semantics at ``site`` and return the fired point.

    ``crash`` exits the process immediately (``os._exit`` — no cleanup,
    like ``kill -9``); ``error`` raises :class:`InjectedFault`; ``slow``
    sleeps ``delay`` seconds then proceeds.  Other kinds are returned to the
    caller to interpret.
    """
    point = draw(site, token)
    if point is None:
        return None
    if point.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if point.kind == "error":
        raise InjectedFault(f"injected {site} fault for {token!r}")
    if point.kind == "slow":
        time.sleep(point.delay)
    return point
