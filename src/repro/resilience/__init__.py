"""Resilience layer: seeded fault injection and retry/backoff policies.

* :mod:`~repro.resilience.faults` — :class:`FaultPlan`/:class:`FaultPoint`
  deterministic fault injection, activated programmatically or via the
  ``REPRO_FAULTS`` environment variable, with hook sites compiled into the
  engine workers, the service connection path, and the cache spill I/O.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` exponential backoff
  with seeded jitter, shared by the service clients and the load generator.

The recovery paths these drive (pool supervision + resume in
:func:`repro.engine.run_grid`, reconnecting clients, the server's degraded
mode) are implemented in their home modules; this package only owns the
fault model and the retry math.
"""

from repro.resilience.faults import (
    FaultPlan,
    FaultPoint,
    InjectedFault,
    active_plan,
    clear_plan,
    install_plan,
    parse_fault_spec,
)
from repro.resilience.retry import RetryPolicy, call_with_retries

__all__ = [
    "FaultPlan",
    "FaultPoint",
    "InjectedFault",
    "RetryPolicy",
    "active_plan",
    "call_with_retries",
    "clear_plan",
    "install_plan",
    "parse_fault_spec",
]
