"""JSONL tile run log: per-tile completion records, resumable.

Mirrors the engine's run log (:mod:`repro.engine.runlog`) at tile
granularity.  The first line is a *header* naming the plan and the weight
source (by fingerprint); :func:`read_tile_log` refuses to adopt records
whose header does not match the current run, so a stale log against a
different grid, tile shape, or weight content is ignored wholesale rather
than corrupting a resume.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "TileRecord",
    "TileLogWriter",
    "read_tile_log",
    "STATUS_OK",
    "STATUS_ERROR",
]

STATUS_OK = "ok"
STATUS_ERROR = "error"

_HEADER_KIND = "tiling-header"


@dataclass
class TileRecord:
    """The outcome of one tile's interior coloring."""

    pos: int
    index: tuple[int, ...]
    status: str = STATUS_OK
    maxcolor: Optional[int] = None
    digest: Optional[str] = None
    elapsed: Optional[float] = None
    error: Optional[str] = None
    worker: Optional[str] = None
    resumed: bool = field(default=False, compare=False)

    def to_json(self) -> str:
        payload = asdict(self)
        payload["index"] = list(self.index)
        payload.pop("resumed", None)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "TileRecord":
        known = {f for f in cls.__dataclass_fields__ if f != "resumed"}
        kwargs = {k: v for k, v in payload.items() if k in known}
        kwargs["index"] = tuple(kwargs.get("index", ()))
        return cls(**kwargs)


class TileLogWriter:
    """Append-only JSONL writer, header first, one record per line."""

    def __init__(
        self,
        path: Union[str, Path],
        *,
        plan_fingerprint: str,
        source_fingerprint: str,
        algorithm: str = "GLL",
    ) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", buffering=1)
        header = {
            "kind": _HEADER_KIND,
            "plan": plan_fingerprint,
            "source": source_fingerprint,
            "algorithm": algorithm,
        }
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")

    def write(self, record: TileRecord) -> None:
        self._fh.write(record.to_json() + "\n")

    def close(self) -> None:
        self._fh.close()


def read_tile_log(
    path: Union[str, Path],
    *,
    plan_fingerprint: str,
    source_fingerprint: str,
) -> dict[int, TileRecord]:
    """Completed (``ok``) tiles of a matching earlier log, keyed by position.

    Returns ``{}`` when the file is missing, unreadable, or headed by a
    different plan/source fingerprint.  Torn trailing lines (a run killed
    mid-write) are skipped; later duplicates win, matching append order.
    """
    try:
        text = Path(path).read_text()
    except OSError:
        return {}
    adopted: dict[int, TileRecord] = {}
    header_ok = False
    for lineno, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if lineno == 0:
            header_ok = (
                payload.get("kind") == _HEADER_KIND
                and payload.get("plan") == plan_fingerprint
                and payload.get("source") == source_fingerprint
            )
            if not header_ok:
                return {}
            continue
        if not header_ok:
            return {}
        try:
            record = TileRecord.from_dict(payload)
        except (TypeError, KeyError):
            continue
        if record.status == STATUS_OK and record.digest is not None:
            record.resumed = True
            adopted[record.pos] = record
    return adopted
