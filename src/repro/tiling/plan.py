"""Tile decomposition of a stencil grid, with exact GLL halo geometry.

A :class:`TilePlan` cuts an ``(X, Y[, Z])`` grid into axis-aligned tiles and
knows, for each tile, the *halo* — the set of outside cells whose colors the
tile's interior scan can observe under the paper's GLL order.  The 9-pt /
27-pt stencil footprint is one cell, but the halo is **not** a symmetric
one-cell ring: GLL's predecessor cone is one-sided, and it reaches *forward*
across the tile's trailing inner-axis edge (the "zipper" — cell
``(i+1, j-1)`` precedes ``(i, j)``), so the strips below are what the seam
pass records and the interior pass presets.

With axes ordered ``(i, j[, k])`` and GLL scanning ``i`` innermost and the
last axis outermost, a tile ``[a0, a1) × [b0, b1) (× [d0, d1))`` needs:

2D (grid ``X × Y``)
    * the previous column ``j = b0 - 1``, rows ``[a0-1, a1]`` (clamped);
    * the line ``i = a0 - 1``, columns ``[b0, b1)``;
    * the zipper line ``i = a1``, columns ``[b0, b1)``.

3D (grid ``X × Y × Z``)
    * the previous plane ``k = d0 - 1``, padded to ``[a0-1, a1] × [b0-1, b1]``;
    * the slab ``j = b0 - 1`` and the zipper slab ``j = b1``, rows
      ``[a0-1, a1]``, for ``k ∈ [d0, d1)``;
    * the line ``i = a0 - 1`` and the zipper line ``i = a1``, for
      ``j ∈ [b0, b1)``, ``k ∈ [d0, d1)``.

Every strip cell either precedes some interior cell in the global scan (and
must carry its exact global start) or follows all of them (in which case
presetting it is harmless, because the halo kernel activates presets at
their wavefront level — see :mod:`repro.kernels.halo`).  The union of the
interior and these strips is exactly the tile's *padded box*, so no filler
cells are ever needed.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.runtime.config import TilingConfig

__all__ = [
    "Box",
    "Tile",
    "TilePlan",
    "plan_tiles",
    "derive_tile_shape",
    "halo_boxes",
    "padded_box",
    "box_shape",
    "local_slices",
]

#: A half-open per-axis box: ``((lo0, hi0), (lo1, hi1)[, (lo2, hi2)])``.
Box = tuple[tuple[int, int], ...]

#: Working arrays the region kernel keeps per cell (weights, extended starts,
#: schedule verts, level scratch, preset mask+values) — the constant in the
#: tiler's memory model (``docs/tiling.md``).
WORKING_ARRAYS = 6


def box_shape(box: Box) -> tuple[int, ...]:
    """The per-axis extent of a box."""
    return tuple(hi - lo for lo, hi in box)


def box_cells(box: Box) -> int:
    """Cell count of a box."""
    return math.prod(hi - lo for lo, hi in box)


def local_slices(box: Box, frame: Box) -> tuple[slice, ...]:
    """``box`` as index slices into an array covering ``frame``."""
    return tuple(slice(lo - flo, hi - flo) for (lo, hi), (flo, _) in zip(box, frame))


@dataclass(frozen=True)
class Tile:
    """One tile: its grid coordinates, flat position, and interior box."""

    index: tuple[int, ...]
    pos: int
    box: Box

    @property
    def cells(self) -> int:
        return box_cells(self.box)


@dataclass(frozen=True)
class TilePlan:
    """The full decomposition: every tile, plus the plan's identity."""

    shape: tuple[int, ...]
    tile_shape: tuple[int, ...]
    counts: tuple[int, ...]
    tiles: tuple[Tile, ...]

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    def bands(self) -> list[list[Tile]]:
        """Tiles grouped by outer-axis (last-axis) band, in scan order.

        Band ``b`` holds every tile whose last-axis range is the ``b``-th
        tile-edge interval; the seam pass streams these bands sequentially
        (bands depend only on the previous band's trailing column/plane).
        """
        out: list[list[Tile]] = [[] for _ in range(self.counts[-1])]
        for tile in self.tiles:
            out[tile.index[-1]].append(tile)
        return out

    def fingerprint(self) -> str:
        """Hex digest naming this decomposition (for resume-log matching)."""
        spec = f"{'x'.join(map(str, self.shape))}|{'x'.join(map(str, self.tile_shape))}"
        return hashlib.blake2b(spec.encode(), digest_size=12).hexdigest()


def plan_tiles(shape, tile_shape) -> TilePlan:
    """Partition ``shape`` into tiles of (at most) ``tile_shape``.

    Edge tiles are clamped, so grids not divisible by the tile shape are
    fine; a tile shape at least the grid shape degenerates to a single tile
    (and the tiler then has no seams at all).
    """
    shape = tuple(int(d) for d in shape)
    tile_shape = tuple(int(t) for t in tile_shape)
    if len(shape) not in (2, 3):
        raise ValueError(f"grid must be 2D or 3D, got {len(shape)} axes")
    if len(tile_shape) != len(shape):
        raise ValueError(f"tile rank {len(tile_shape)} != grid rank {len(shape)}")
    if any(d < 1 for d in shape) or any(t < 1 for t in tile_shape):
        raise ValueError("grid and tile dimensions must be positive")
    tile_shape = tuple(min(t, d) for t, d in zip(tile_shape, shape))
    counts = tuple(-(-d // t) for d, t in zip(shape, tile_shape))

    tiles: list[Tile] = []
    pos = 0
    # C-order over tile indices, so the flat position is the scan order of
    # tile origins — deterministic and independent of execution order.
    def rec(prefix: tuple[int, ...]) -> None:
        nonlocal pos
        axis = len(prefix)
        if axis == len(shape):
            box = tuple(
                (c * t, min((c + 1) * t, d))
                for c, t, d in zip(prefix, tile_shape, shape)
            )
            tiles.append(Tile(index=prefix, pos=pos, box=box))
            pos += 1
            return
        for c in range(counts[axis]):
            rec(prefix + (c,))

    rec(())
    return TilePlan(shape=shape, tile_shape=tile_shape, counts=counts, tiles=tuple(tiles))


def derive_tile_shape(shape, config: TilingConfig) -> tuple[int, ...]:
    """The tile shape for a grid under a :class:`TilingConfig`.

    An explicit ``tile_shape`` wins (clamped to the grid).  Otherwise a
    near-cubic shape targeting ``tile_cells`` is derived; a
    ``memory_budget_mb`` additionally caps the outer-axis tile width so one
    streamed seam band — ``prod(shape[:-1]) × (t_last + 1)`` cells times
    :data:`WORKING_ARRAYS` int64 arrays — fits the budget.
    """
    shape = tuple(int(d) for d in shape)
    if config.tile_shape is not None:
        if len(config.tile_shape) != len(shape):
            raise ValueError(
                f"tile_shape rank {len(config.tile_shape)} != grid rank {len(shape)}"
            )
        return tuple(min(t, d) for t, d in zip(config.tile_shape, shape))
    cells = config.tile_cells
    max_last = shape[-1]
    if config.memory_budget_mb:
        budget_cells = (config.memory_budget_mb << 20) // (8 * WORKING_ARRAYS)
        inner = math.prod(shape[:-1])
        max_last = max(1, min(max_last, budget_cells // max(inner, 1) - 1))
        cells = max(1, min(cells, budget_cells))
    edge = max(1, round(cells ** (1.0 / len(shape))))
    tile = [min(edge, d) for d in shape]
    tile[-1] = min(tile[-1], max_last)
    return tuple(tile)


def padded_box(box: Box, shape: tuple[int, ...]) -> Box:
    """The tile box extended by its halo strips (clamped to the grid).

    One cell before and the zipper cell after on the inner axes, one
    column/plane *before only* on the outer axis — GLL never looks forward
    along the outer axis.
    """
    (a0, a1), rest = box[0], box[1:]
    X = shape[0]
    out = [(max(a0 - 1, 0), min(a1 + 1, X))]
    if len(shape) == 3:
        (b0, b1), Y = rest[0], shape[1]
        out.append((max(b0 - 1, 0), min(b1 + 1, Y)))
        rest = rest[1:]
    (c0, c1) = rest[0]
    out.append((max(c0 - 1, 0), c1))
    return tuple(out)


def halo_boxes(box: Box, shape: tuple[int, ...]) -> list[Box]:
    """The halo strips of a tile, as global boxes (see the module docstring).

    Strips at the grid boundary are clamped away; a single-tile plan has no
    strips at all.  Their union with the interior is exactly
    :func:`padded_box`.
    """
    strips: list[Box] = []
    if len(shape) == 2:
        (a0, a1), (b0, b1) = box
        X, _ = shape
        ipad = (max(a0 - 1, 0), min(a1 + 1, X))
        if b0 > 0:
            strips.append((ipad, (b0 - 1, b0)))
        if a0 > 0:
            strips.append(((a0 - 1, a0), (b0, b1)))
        if a1 < X:
            strips.append(((a1, a1 + 1), (b0, b1)))
        return strips
    (a0, a1), (b0, b1), (d0, d1) = box
    X, Y, _ = shape
    ipad = (max(a0 - 1, 0), min(a1 + 1, X))
    jpad = (max(b0 - 1, 0), min(b1 + 1, Y))
    if d0 > 0:
        strips.append((ipad, jpad, (d0 - 1, d0)))
    if b0 > 0:
        strips.append((ipad, (b0 - 1, b0), (d0, d1)))
    if b1 < Y:
        strips.append((ipad, (b1, b1 + 1), (d0, d1)))
    if a0 > 0:
        strips.append(((a0 - 1, a0), (b0, b1), (d0, d1)))
    if a1 < X:
        strips.append(((a1, a1 + 1), (b0, b1), (d0, d1)))
    return strips
