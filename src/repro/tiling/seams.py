"""The seam pass: stream outer-axis bands, retain only per-tile halo strips.

Tiles cannot be colored independently in any order: GLL's zipper dependency
(``(i+1, j-1)`` precedes ``(i, j)``) makes vertically adjacent tiles
mutually dependent — the tile DAG is cyclic at tile granularity.  What *is*
acyclic is the outer axis: a band of columns (2D) or planes (3D) depends
only on the trailing column/plane of the previous band.  So the seam pass
colors the grid once, exactly, in sequential outer-axis bands aligned to
tile edges, and keeps only what the parallel interior pass needs:

* the *carry* — the band's last column/plane, handed to the next band;
* each tile's halo strips (:func:`repro.tiling.plan.halo_boxes`), cut out
  of the band before its working arrays are dropped.

Peak memory is one band — ``prod(shape[:-1]) × (tile_outer + 1)`` cells
times a handful of ``int64`` arrays — regardless of grid size; the retained
halos are ``O(cells / tile_edge)`` total.  Because the band kernel is the
same preset-honoring region kernel the interior pass uses
(:func:`repro.kernels.halo.color_region`), every recorded strip holds the
cell's *global* GLL start, which is what makes the stitched result
bit-identical to the monolithic scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from repro.data.weights import WeightSource
from repro.kernels.halo import color_region
from repro.runtime.context import ExecutionContext, get_context
from repro.tiling.plan import Box, TilePlan, halo_boxes, local_slices

__all__ = ["SeamResult", "seam_pass"]

#: One tile's halo: ``(global box, values)`` strips.
HaloBlocks = list[tuple[Box, np.ndarray]]


@dataclass
class SeamResult:
    """What the seam pass retains: halos per tile, and the global maxcolor."""

    halos: dict[int, HaloBlocks] = field(default_factory=dict)
    maxcolor: int = 0
    bands: int = 0
    cells: int = 0
    elapsed: float = 0.0


def seam_pass(
    source: WeightSource,
    plan: TilePlan,
    *,
    context: Optional[ExecutionContext] = None,
) -> SeamResult:
    """Color the grid in streamed bands, recording every tile's halo strips.

    The first band has no carry; a single-band plan (tile spanning the whole
    outer axis) still runs, recording only the in-band strips.  Single-tile
    plans record nothing — the interior pass then *is* the monolithic scan.
    """
    ctx = context if context is not None else get_context()
    metrics = ctx.metrics
    shape = plan.shape
    full = tuple((0, d) for d in shape[:-1])
    result = SeamResult()
    t0 = perf_counter()
    carry: Optional[np.ndarray] = None

    for band_tiles in plan.bands():
        b0, b1 = band_tiles[0].box[-1]
        lo = max(b0 - 1, 0)
        region: Box = full + ((lo, b1),)
        tb = perf_counter()
        weights = source.region(region)

        mask = None
        preset = None
        if b0 > 0:
            mask = np.zeros(weights.shape, dtype=bool)
            preset = np.zeros(weights.shape, dtype=np.int64)
            mask[..., 0] = True
            preset[..., 0] = carry
        starts = color_region(weights, mask, preset)

        result.maxcolor = max(result.maxcolor, int((starts + weights).max()))
        for tile in band_tiles:
            blocks: HaloBlocks = [
                (box, np.ascontiguousarray(starts[local_slices(box, region)]))
                for box in halo_boxes(tile.box, shape)
            ]
            if blocks:
                result.halos[tile.pos] = blocks
        carry = np.ascontiguousarray(starts[..., -1])

        result.bands += 1
        result.cells += weights.size
        metrics.counter("tiling.seam_bands").inc()
        metrics.counter("tiling.seam_cells").inc(weights.size)
        metrics.histogram("tiling.band_seconds").observe(perf_counter() - tb)

    result.elapsed = perf_counter() - t0
    return result
