"""The tiled coloring orchestrator: seam pass, interior fan-out, stitch.

:func:`color_tiled` is the tiler's entry point (reached through
``repro.api.color(..., runtime="tiled")`` or the ``stencil-ivc tile`` CLI).
It colors grids too large for the monolithic kernels — bit-identically to
them — in three steps:

1. **Plan** — cut the grid into tiles (:func:`repro.tiling.plan.plan_tiles`),
   with the tile shape taken from an explicit argument, the
   :class:`~repro.runtime.config.TilingConfig`, or derived from its
   ``tile_cells`` / ``memory_budget_mb``.
2. **Seam pass** — one sequential streamed scan of outer-axis bands
   (:func:`repro.tiling.seams.seam_pass`) that retains only each tile's
   halo strips and the global maxcolor.  Peak memory: one band.
3. **Interior pass** — every tile colored independently against its preset
   halo (:func:`repro.tiling.pool.run_tile`), serially or fanned across the
   engine's crash-supervised pool (:func:`repro.engine.run_supervised`) with
   per-tile blame isolation and a resumable JSONL tile log.  Peak memory
   per worker: one padded tile.

Output modes: ``out=`` streams interiors into an ``.npy`` memmap (bounded
parent memory); the default assembles the full starts array in memory; and
``assemble=False`` keeps only per-tile digests plus the combined digest —
how grids that fit on disk but not in RAM (or neither) are verified.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Optional, Union

import numpy as np

from repro.data.weights import WeightSource, as_weight_source
from repro.runtime.config import TilingConfig
from repro.runtime.context import ExecutionContext, get_context
from repro.tiling.plan import (
    Box,
    TilePlan,
    derive_tile_shape,
    local_slices,
    padded_box,
    plan_tiles,
)
from repro.tiling.pool import (
    _init_tile_worker,
    _run_tile_chunk,
    _tile_crash_record,
    _TileWorkerState,
    run_tile,
    TileCell,
)
from repro.tiling.runlog import (
    STATUS_OK,
    TileLogWriter,
    TileRecord,
    read_tile_log,
)
from repro.tiling.seams import HaloBlocks, seam_pass
from repro.kernels.halo import color_region

__all__ = ["TiledColoring", "TilingError", "color_tile", "color_tiled"]


class TilingError(RuntimeError):
    """A tiled run finished with failed tiles (records carry the details)."""

    def __init__(self, message: str, records: list[TileRecord]):
        super().__init__(message)
        self.records = records


@dataclass
class _SupervisionCounters:
    pool_restarts: int = 0
    cells_retried: int = 0


@dataclass
class TiledColoring:
    """The outcome of a tiled run.

    ``starts`` is the full assembled array (in memory, or a read-only view
    of the ``out=`` memmap); ``None`` in digest-only mode.  ``digest`` is
    the combined per-tile digest — two runs (tiled or resumed, any
    ``jobs``) over the same grid agree on it iff their colorings are
    byte-identical, which is how grids too large to assemble are compared.
    """

    plan: TilePlan
    maxcolor: int
    digest: str
    records: list[TileRecord]
    starts: Optional[np.ndarray] = None
    out_path: Optional[str] = None
    seam_bands: int = 0
    seam_cells: int = 0
    seam_elapsed: float = 0.0
    elapsed: float = 0.0
    resumed_tiles: int = 0
    pool_restarts: int = 0
    tiles_retried: int = 0
    metrics: Optional[dict] = field(default=None, repr=False)


def color_tile(
    source: WeightSource,
    box: Box,
    blocks: HaloBlocks,
    shape: tuple[int, ...],
) -> np.ndarray:
    """One tile's interior starts, given its seam-recorded halo strips.

    The pure per-tile computation :func:`repro.tiling.pool.run_tile` wraps
    with supervision bookkeeping — exposed for tests and one-off checks.
    """
    padded = padded_box(box, shape)
    weights = source.region(padded)
    mask = None
    preset = None
    if blocks:
        mask = np.zeros(weights.shape, dtype=bool)
        preset = np.zeros(weights.shape, dtype=np.int64)
        for strip, values in blocks:
            sl = local_slices(strip, padded)
            mask[sl] = True
            preset[sl] = values
    starts = color_region(weights, mask, preset)
    return np.ascontiguousarray(starts[local_slices(box, padded)])


def _combined_digest(records: list[TileRecord]) -> str:
    """One digest over all tiles, in plan order."""
    h = hashlib.blake2b(digest_size=16)
    for record in records:
        h.update(f"{record.pos}:{record.digest};".encode())
    return h.hexdigest()


def color_tiled(
    weights_or_source,
    *,
    tiling: Optional[TilingConfig] = None,
    tile_shape: Optional[tuple[int, ...]] = None,
    jobs: Optional[int] = None,
    out: Optional[Union[str, Path]] = None,
    assemble: bool = True,
    log_path: Optional[Union[str, Path]] = None,
    resume_from: Optional[Union[str, Path]] = None,
    max_tile_retries: int = 2,
    context: Optional[ExecutionContext] = None,
) -> TiledColoring:
    """Color a 2D/3D grid through the tiler, bit-identically to monolithic.

    Parameters
    ----------
    weights_or_source:
        Anything :func:`repro.data.as_weight_source` accepts — an in-memory
        array, a path to an ``.npy`` file (memory-mapped), or a
        :class:`~repro.data.WeightSource` (e.g. synthetic weights for grids
        that never materialize).
    tiling:
        Tiling configuration; defaults to the context's
        ``config.tiling``.  ``tile_shape`` / ``jobs`` override its fields.
    out:
        Path of an ``.npy`` memmap to stream interior starts into; the
        parent never holds the full grid.  With ``out`` set, ``starts`` on
        the result is a read-only memmap view.
    assemble:
        With no ``out``, whether to assemble the full starts array in
        memory (default).  ``False`` keeps only digests — the only mode
        whose peak memory is independent of grid size.
    log_path / resume_from:
        JSONL tile log to write / a previous log to resume from.  Resumed
        tiles are skipped (their recorded digests join the combined
        digest); a log whose plan or weight fingerprint mismatches is
        ignored wholesale.  Resuming into assembled in-memory output would
        silently drop the resumed tiles' starts, so it requires ``out=``
        (whose memmap still holds them) or ``assemble=False``.
    max_tile_retries:
        Crash-retry budget per tile under the supervised pool (parallel
        runs only), as in :func:`repro.engine.run_grid`.

    Returns
    -------
    TiledColoring
        Starts (per the output mode), global maxcolor, per-tile records,
        combined digest, and seam/supervision statistics.
    """
    ctx = context if context is not None else get_context()
    source = as_weight_source(weights_or_source)
    shape = source.shape
    cfg = tiling if tiling is not None else ctx.config.tiling
    if tile_shape is not None:
        cfg = cfg.with_overrides(tile_shape=tuple(int(t) for t in tile_shape))
    plan = plan_tiles(shape, derive_tile_shape(shape, cfg))
    jobs = cfg.jobs if jobs is None else int(jobs)
    t0 = perf_counter()
    metrics = ctx.metrics
    metrics.counter("tiling.runs").inc()

    adopted: dict[int, TileRecord] = {}
    if resume_from is not None:
        adopted = read_tile_log(
            resume_from,
            plan_fingerprint=plan.fingerprint(),
            source_fingerprint=source.fingerprint(),
        )
        if adopted and out is None and assemble:
            raise ValueError(
                "resume_from with in-memory assembly would drop the resumed "
                "tiles' starts — pass out= (their memmap persists) or "
                "assemble=False"
            )

    out_path = str(out) if out is not None else None
    if out_path is not None:
        existing = Path(out_path).exists()
        if adopted and existing:
            mm = np.lib.format.open_memmap(out_path, mode="r+")
            if mm.shape != shape or mm.dtype != np.int64:
                raise ValueError(
                    f"out= memmap {out_path} is {mm.dtype}{mm.shape}, "
                    f"expected int64{shape}"
                )
        else:
            mm = np.lib.format.open_memmap(
                out_path, mode="w+", dtype=np.int64, shape=shape
            )
            adopted = {}  # no prior data to pair resumed records with
        mm.flush()
        del mm  # workers open their own views; keep no handle across fork

    seam = seam_pass(source, plan, context=ctx)

    cells: list[TileCell] = [
        (tile.pos, tile.index, tile.box, seam.halos.get(tile.pos, []), 0)
        for tile in plan.tiles
        if tile.pos not in adopted
    ]
    return_starts = out_path is None and assemble

    writer = (
        TileLogWriter(
            log_path,
            plan_fingerprint=plan.fingerprint(),
            source_fingerprint=source.fingerprint(),
        )
        if log_path is not None
        else None
    )
    records: list[Optional[TileRecord]] = [None] * plan.num_tiles
    starts_by_pos: dict[int, np.ndarray] = {}
    worker_snaps: dict[int, tuple[int, dict]] = {}  # pid -> (seq, snapshot)
    counters = _SupervisionCounters()
    for pos, record in adopted.items():
        records[pos] = record
        if writer is not None:
            writer.write(record)

    def store(payload) -> None:
        if isinstance(payload, dict):  # a chunk payload from _run_tile_chunk
            if payload["metrics"] is not None:
                held = worker_snaps.get(payload["pid"])
                if held is None or payload["seq"] > held[0]:
                    worker_snaps[payload["pid"]] = (
                        payload["seq"],
                        payload["metrics"],
                    )
            pairs = payload["pairs"]
            if return_starts:
                starts_by_pos.update(payload["starts"])
        else:  # bare pairs (crash records synthesized by the supervisor)
            pairs = payload
        for pos, record in pairs:
            records[pos] = record
            if writer is not None:
                writer.write(record)

    try:
        if not cells:
            pass  # fully resumed
        elif jobs <= 1 or len(cells) == 1:
            state = _TileWorkerState(
                source=source,
                shape=shape,
                out_path=out_path,
                return_starts=return_starts,
                context=ctx,
            )
            for pos, index, box, blocks, attempt in cells:
                record, interior = run_tile(state, pos, index, box, blocks, attempt)
                store([(pos, record)])
                if interior is not None:
                    starts_by_pos[pos] = interior
            if state.out is not None:
                state.out.flush()
        else:
            from repro.engine import resolve_jobs, run_supervised

            jobs = min(resolve_jobs(jobs), len(cells))
            chunk_size = max(1, math.ceil(len(cells) / (jobs * 4)))
            chunks = [
                cells[i : i + chunk_size] for i in range(0, len(cells), chunk_size)
            ]
            run_supervised(
                chunks,
                task=_run_tile_chunk,
                initializer=_init_tile_worker,
                initargs=(ctx.config, source, shape, out_path, return_starts),
                jobs=jobs,
                max_cell_retries=max(0, int(max_tile_retries)),
                store=store,
                crash_record=_tile_crash_record,
                counters=counters,
            )
    finally:
        if writer is not None:
            writer.close()

    assert all(r is not None for r in records)
    failed = [r for r in records if r.status != STATUS_OK]
    if failed:
        where = f"; completed tiles are in {log_path}" if log_path else ""
        raise TilingError(
            f"{len(failed)}/{plan.num_tiles} tiles failed "
            f"(first: tile {failed[0].pos}: {failed[0].error}){where}",
            records=list(records),
        )

    tile_max = max(r.maxcolor for r in records)
    if tile_max != seam.maxcolor:
        raise AssertionError(
            f"seam/interior maxcolor mismatch ({seam.maxcolor} vs {tile_max}) "
            "— tiling invariant broken"
        )

    starts: Optional[np.ndarray] = None
    if out_path is not None:
        starts = np.lib.format.open_memmap(out_path, mode="r")
    elif return_starts:
        starts = np.empty(shape, dtype=np.int64)
        for tile in plan.tiles:
            starts[tuple(slice(lo, hi) for lo, hi in tile.box)] = starts_by_pos[
                tile.pos
            ]

    if worker_snaps:
        from repro.obs.metrics import merge_snapshots

        merged = merge_snapshots(snap for _, snap in worker_snaps.values())
    else:
        merged = None

    metrics.counter("tiling.tiles_total").inc(plan.num_tiles)
    return TiledColoring(
        plan=plan,
        maxcolor=seam.maxcolor,
        digest=_combined_digest(records),
        records=list(records),
        starts=starts,
        out_path=out_path,
        seam_bands=seam.bands,
        seam_cells=seam.cells,
        seam_elapsed=seam.elapsed,
        elapsed=perf_counter() - t0,
        resumed_tiles=len(adopted),
        pool_restarts=counters.pool_restarts,
        tiles_retried=counters.cells_retried,
        metrics=merged,
    )
