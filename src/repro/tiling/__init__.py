"""Tiled out-of-core coloring with halo stitching.

Colors grids far larger than memory — **bit-identically** to the monolithic
GLL kernels — by cutting them into tiles, streaming one sequential *seam
pass* over outer-axis bands that records each tile's halo strips at their
exact global values, then coloring every tile interior independently (and
in parallel, under the engine's crash supervision) against those preset
halos.  ``docs/tiling.md`` derives the decomposition and the seam-ordering
invariant that makes the stitched result exact.

Contents:

* :mod:`~repro.tiling.plan` — tile decomposition and exact GLL halo
  geometry (:func:`plan_tiles`, :func:`derive_tile_shape`,
  :func:`halo_boxes`).
* :mod:`~repro.tiling.seams` — the streamed seam pass
  (:func:`seam_pass`).
* :mod:`~repro.tiling.pool` / :mod:`~repro.tiling.stitch` — per-tile
  workers and the orchestrator (:func:`color_tiled`), with memmap output,
  digest-only verification, and resumable tile logs.
* :mod:`~repro.tiling.runlog` — the JSONL tile log
  (:class:`TileLogWriter`, :func:`read_tile_log`).
"""

from repro.tiling.plan import (
    Box,
    Tile,
    TilePlan,
    derive_tile_shape,
    halo_boxes,
    padded_box,
    plan_tiles,
)
from repro.tiling.runlog import TileLogWriter, TileRecord, read_tile_log
from repro.tiling.seams import SeamResult, seam_pass
from repro.tiling.stitch import TiledColoring, TilingError, color_tile, color_tiled

__all__ = [
    "Box",
    "SeamResult",
    "Tile",
    "TileLogWriter",
    "TilePlan",
    "TileRecord",
    "TiledColoring",
    "TilingError",
    "color_tile",
    "color_tiled",
    "derive_tile_shape",
    "halo_boxes",
    "padded_box",
    "plan_tiles",
    "read_tile_log",
    "seam_pass",
]
