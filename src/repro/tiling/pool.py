"""Worker side of the tiled interior pass.

These are the picklable callables :func:`repro.tiling.stitch.color_tiled`
hands to the engine's supervised pool (:func:`repro.engine.run_supervised`):
an initializer that installs per-worker state (context from the shipped
config, weight source, optional output memmap) and a chunk runner that
colors tile interiors.  The serial path (``jobs=1``) calls the same
:func:`run_tile` in-process, so crash supervision is the only difference
between the two.

A tile *cell* is ``(pos, index, box, blocks, attempt)`` — the tile's flat
position, grid index, interior box, seam-recorded halo strips, and the
supervisor's retry counter.  Workers never load more than one padded tile
at a time, which is what bounds their peak memory; results travel back as
``(pos, TileRecord)`` pairs plus (unless an output memmap absorbs them)
the interior starts themselves.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Sequence

import numpy as np

from repro.data.weights import WeightSource
from repro.kernels.halo import color_region
from repro.resilience.faults import inject
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import (
    ExecutionContext,
    get_context,
    set_default_context,
)
from repro.runtime.fingerprint import array_digest
from repro.tiling.plan import Box, local_slices, padded_box
from repro.tiling.runlog import STATUS_ERROR, STATUS_OK, TileRecord
from repro.tiling.seams import HaloBlocks

__all__ = ["run_tile"]

#: One unit of supervised work: (pos, index, box, halo blocks, attempt).
TileCell = tuple[int, tuple[int, ...], Box, HaloBlocks, int]


@dataclass
class _TileWorkerState:
    """Per-worker-process state, installed by the pool initializer."""

    source: WeightSource
    shape: tuple[int, ...]
    out_path: Optional[str]
    return_starts: bool
    context: Optional[ExecutionContext] = None
    journal: Optional[object] = None
    out: Optional[np.memmap] = None
    chunks_done: int = 0

    def out_map(self) -> Optional[np.memmap]:
        if self.out is None and self.out_path is not None:
            self.out = np.lib.format.open_memmap(self.out_path, mode="r+")
        return self.out


_TILE_STATE: Optional[_TileWorkerState] = None


def _init_tile_worker(
    config: Optional[RuntimeConfig],
    source: WeightSource,
    shape: tuple[int, ...],
    out_path: Optional[str],
    return_starts: bool,
    journal_path: Optional[str] = None,
    context: Optional[ExecutionContext] = None,
) -> None:
    """Pool initializer: install the weight source and runtime once.

    Mirrors the engine's ``_init_worker`` contract: the supervisor appends
    ``journal_path`` as the final positional argument; the serial path
    passes ``context`` directly and skips journalling.  The output memmap,
    if any, is opened lazily on first write (each worker holds its own
    ``r+`` view — tiles never overlap, so concurrent writes are disjoint).
    """
    global _TILE_STATE
    if context is None:
        if config is not None:
            context = ExecutionContext(config)
            set_default_context(context)
            context.install_faults()
        else:
            context = get_context()
    _TILE_STATE = _TileWorkerState(
        source=source,
        shape=tuple(shape),
        out_path=out_path,
        return_starts=return_starts,
        context=context,
        journal=(
            open(journal_path, "a", buffering=1) if journal_path is not None else None
        ),
    )


def run_tile(
    state: _TileWorkerState,
    pos: int,
    index: tuple[int, ...],
    box: Box,
    blocks: HaloBlocks,
    attempt: int = 0,
) -> tuple[TileRecord, Optional[np.ndarray]]:
    """Color one tile's interior against its preset halo, never raising.

    Loads the tile's *padded* box from the weight source, presets the seam
    strips at their global values, runs the region kernel, and cuts the
    interior back out.  The record carries the interior's maxcolor and a
    digest of its starts (so a resumed run can verify without re-coloring);
    the starts themselves go to the output memmap and/or back to the
    caller, per the worker state.
    """
    metrics = state.context.metrics if state.context is not None else None
    t0 = perf_counter()
    try:
        inject("tiling.tile", f"tile-{pos}#{attempt}")
        padded = padded_box(box, state.shape)
        weights = state.source.region(padded)
        mask = None
        preset = None
        if blocks:
            mask = np.zeros(weights.shape, dtype=bool)
            preset = np.zeros(weights.shape, dtype=np.int64)
            for strip, values in blocks:
                sl = local_slices(strip, padded)
                mask[sl] = True
                preset[sl] = values
        starts = color_region(weights, mask, preset)
        inner = local_slices(box, padded)
        interior = np.ascontiguousarray(starts[inner])
        maxcolor = int((interior + weights[inner]).max())
        out = state.out_map()
        if out is not None:
            out[tuple(slice(lo, hi) for lo, hi in box)] = interior
    except Exception as exc:
        if metrics is not None:
            metrics.counter("tiling.tiles_error").inc()
        record = TileRecord(
            pos=pos,
            index=tuple(index),
            status=STATUS_ERROR,
            elapsed=perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
            worker=f"pid-{os.getpid()}",
        )
        return record, None
    elapsed = perf_counter() - t0
    if metrics is not None:
        metrics.counter("tiling.tiles_ok").inc()
        metrics.histogram("tiling.tile_seconds").observe(elapsed)
    record = TileRecord(
        pos=pos,
        index=tuple(index),
        status=STATUS_OK,
        maxcolor=maxcolor,
        digest=array_digest(interior).hex(),
        elapsed=elapsed,
        worker=f"pid-{os.getpid()}",
    )
    return record, (interior if state.return_starts else None)


def _run_tile_chunk(cells: Sequence[TileCell]) -> dict:
    """Run a chunk of tile cells against the installed worker state.

    Journal marks bracket each tile exactly as the engine's cell runner
    does, so the supervisor's blame isolation (suspects vs. merely-queued)
    works unchanged at tile granularity.
    """
    assert _TILE_STATE is not None, "tile worker state missing — initializer did not run"
    pairs = []
    starts: dict[int, np.ndarray] = {}
    for pos, index, box, blocks, attempt in cells:
        if _TILE_STATE.journal is not None:
            _TILE_STATE.journal.write(f"start {pos}\n")
        record, interior = run_tile(_TILE_STATE, pos, index, box, blocks, attempt)
        pairs.append((pos, record))
        if interior is not None:
            starts[pos] = interior
        if _TILE_STATE.journal is not None:
            _TILE_STATE.journal.write(f"done {pos}\n")
    out = _TILE_STATE.out
    if out is not None:
        out.flush()
    _TILE_STATE.chunks_done += 1
    snapshot = (
        _TILE_STATE.context.metrics.snapshot(include_state=True)
        if _TILE_STATE.context is not None
        else None
    )
    # The sequence number lets the parent keep the *newest* cumulative
    # snapshot per worker even when chunk completions arrive out of order.
    return {
        "pairs": pairs,
        "starts": starts,
        "pid": os.getpid(),
        "seq": _TILE_STATE.chunks_done,
        "metrics": snapshot,
    }


def _tile_crash_record(cell: TileCell, exc: BaseException) -> tuple[int, TileRecord]:
    """The error record for a tile whose retry budget crashed away."""
    pos, index, _box, _blocks, attempt = cell
    return (
        pos,
        TileRecord(
            pos=pos,
            index=tuple(index),
            status=STATUS_ERROR,
            error=(
                f"worker crashed on every attempt (x{attempt + 1}): "
                f"{type(exc).__name__}: {exc}"
            ),
        ),
    )
