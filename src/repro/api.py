"""The stable facade: one entry point for every way to color a grid.

Four call styles accreted historically — ``color_with`` on an
:class:`~repro.core.problem.IVCInstance`, the kernel-path variants behind
``fast=``, the engine's ``run_grid``, and the service client — each with
its own argument conventions.  :func:`color` subsumes them: build (or
accept) an instance, resolve the runtime (reference loops, vectorized
kernels, or the out-of-core tiler), run, and return a
:class:`ColoringResult` carrying the coloring, a metrics snapshot, and
provenance naming exactly how it was produced.  ``docs/api.md`` has the
"choosing an entry point" guide; the legacy styles keep working (the
top-level ``repro.color_with`` / ``repro.run_grid`` re-exports emit
:class:`DeprecationWarning` and delegate unchanged).

This is deliberately the **only** module in ``src/repro`` that imports
across the engine / kernels / service / tiling subsystem boundaries at
module level — ``tools/check_layers.py`` enforces that everyone else picks
one side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.core.algorithms.registry import color_with
from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance
from repro.data.weights import WeightSource
from repro.incremental.engine import recolor_grid
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import ExecutionContext, get_context
from repro.runtime.fingerprint import config_fingerprint
from repro.tiling.stitch import TiledColoring, color_tiled

__all__ = ["ColoringResult", "color", "recolor"]

#: Accepted ``runtime=`` strings and the per-call ``fast`` they resolve to.
_RUNTIME_MODES = {
    "auto": None,
    "kernels": True,
    "reference": False,
    "tiled": None,
}


@dataclass
class ColoringResult:
    """What :func:`color` returns, whichever runtime produced it.

    ``starts`` is grid-shaped for grid inputs (``None`` for tiled
    digest-only runs); ``provenance`` records the algorithm, the runtime
    mode actually used (``"monolithic"`` vs ``"tiled"``), and a fingerprint
    of the governing :class:`RuntimeConfig` — enough to say *which code
    path on which configuration* made this coloring, without embedding the
    config itself.
    """

    starts: Optional[np.ndarray]
    maxcolor: int
    algorithm: str
    mode: str
    provenance: dict
    metrics: Optional[dict] = field(default=None, repr=False)
    coloring: Optional[Coloring] = field(default=None, repr=False)
    tiled: Optional[TiledColoring] = field(default=None, repr=False)


def _wants_tiling(
    runtime_str: Optional[str],
    ctx: ExecutionContext,
    algorithm: str,
    num_cells: Optional[int],
    grid_only_input: bool,
) -> bool:
    """Whether this call goes through the tiler.

    Explicit ``runtime="tiled"`` always does (and demands GLL — the seam
    invariant is a GLL property).  A :class:`~repro.data.WeightSource`
    input can *only* be tiled (there is nothing to hand the monolithic
    kernels).  Otherwise the config's tiling mode decides: ``"on"`` tiles
    every GLL call, ``"auto"`` tiles GLL from ``min_cells`` up, ``"off"``
    never tiles.
    """
    if runtime_str == "tiled" or grid_only_input:
        if algorithm != "GLL":
            raise ValueError(
                f"tiled coloring reproduces the GLL scan only, got {algorithm!r}"
            )
        return True
    if runtime_str in ("kernels", "reference") or algorithm != "GLL":
        return False
    cfg = ctx.config.tiling
    if cfg.mode == "on":
        return True
    return (
        cfg.mode == "auto" and num_cells is not None and num_cells >= cfg.min_cells
    )


def color(
    grid_or_instance,
    algorithm: str = "GLL",
    *,
    runtime: Union[None, str, RuntimeConfig, ExecutionContext] = None,
    validate: bool = False,
    tile_shape: Optional[tuple[int, ...]] = None,
    jobs: Optional[int] = None,
) -> ColoringResult:
    """Color a stencil grid (or prepared instance) and say how it was done.

    Parameters
    ----------
    grid_or_instance:
        A 2D/3D weight array, an :class:`IVCInstance`, a path to an
        ``.npy`` weight file (memory-mapped), or a
        :class:`~repro.data.WeightSource` (tiled runtime only — e.g.
        synthetic weights for grids that never materialize).
    algorithm:
        A registry algorithm name (``"GLL"``, ``"BDP"``, ...).  The tiled
        runtime supports ``"GLL"`` only.
    runtime:
        How to run:

        * ``None`` / ``"auto"`` — the ambient context decides (kernel fast
          paths by size, the tiler per ``config.tiling``);
        * ``"kernels"`` — force the vectorized kernels;
        * ``"reference"`` — force the reference loops;
        * ``"tiled"`` — force the out-of-core tiler;
        * a :class:`RuntimeConfig` — run under a fresh context over it;
        * an :class:`ExecutionContext` — run under exactly that context.
    validate:
        Check the coloring for conflicts before returning (monolithic
        runtimes; the tiler's seam cross-check stands in for it there).
    tile_shape / jobs:
        Tiler overrides, ignored by monolithic runtimes.

    Returns
    -------
    ColoringResult
        Bit-identical starts to the legacy entry point for the same
        algorithm and runtime — this facade changes how you ask, never the
        answer.
    """
    runtime_str: Optional[str] = None
    if runtime is None:
        ctx = get_context()
    elif isinstance(runtime, str):
        if runtime not in _RUNTIME_MODES:
            raise ValueError(
                f"runtime must be one of {sorted(_RUNTIME_MODES)}, a RuntimeConfig, "
                f"or an ExecutionContext; got {runtime!r}"
            )
        runtime_str = runtime
        ctx = get_context()
    elif isinstance(runtime, RuntimeConfig):
        ctx = ExecutionContext(runtime)
    elif isinstance(runtime, ExecutionContext):
        ctx = runtime
    else:
        raise TypeError(f"unsupported runtime: {type(runtime).__name__}")
    fast = _RUNTIME_MODES.get(runtime_str) if runtime_str else None

    obj = grid_or_instance
    instance: Optional[IVCInstance] = None
    grid: Optional[np.ndarray] = None
    source: Union[None, str, Path, WeightSource] = None
    if isinstance(obj, IVCInstance):
        instance = obj
        num_cells: Optional[int] = obj.num_vertices
    elif isinstance(obj, (str, Path, WeightSource)):
        source = obj
        num_cells = None
    else:
        grid = np.asarray(obj)
        if grid.ndim not in (2, 3):
            raise ValueError(f"weight grid must be 2D or 3D, got {grid.ndim}D")
        num_cells = grid.size

    if _wants_tiling(runtime_str, ctx, algorithm, num_cells, source is not None):
        if instance is not None:
            if instance.geometry is None:
                raise ValueError("tiled coloring needs a grid instance")
            grid = instance.weight_grid()
        tiled = color_tiled(
            source if source is not None else grid,
            tile_shape=tile_shape,
            jobs=jobs,
            context=ctx,
        )
        provenance = {
            "algorithm": "GLL",
            "mode": "tiled",
            "runtime": config_fingerprint(ctx.config),
            "tiles": tiled.plan.num_tiles,
            "tile_shape": tiled.plan.tile_shape,
            "digest": tiled.digest,
        }
        return ColoringResult(
            starts=(
                np.asarray(tiled.starts) if tiled.starts is not None else None
            ),
            maxcolor=tiled.maxcolor,
            algorithm="GLL",
            mode="tiled",
            provenance=provenance,
            metrics=ctx.metrics.snapshot(),
            tiled=tiled,
        )

    if instance is None:
        make = IVCInstance.from_grid_2d if grid.ndim == 2 else IVCInstance.from_grid_3d
        instance = make(grid)
    coloring = color_with(instance, algorithm, fast=fast, context=ctx)
    if validate:
        coloring.check()
    starts = np.asarray(coloring.starts, dtype=np.int64)
    shape = (
        tuple(instance.geometry.shape) if instance.geometry is not None else None
    )
    if shape is not None:
        starts = starts.reshape(shape)
    provenance = {
        "algorithm": algorithm,
        "mode": "monolithic",
        "runtime": config_fingerprint(ctx.config),
        "fast": fast,
        "shape": shape,
    }
    return ColoringResult(
        starts=starts,
        maxcolor=coloring.maxcolor,
        algorithm=algorithm,
        mode="monolithic",
        provenance=provenance,
        metrics=ctx.metrics.snapshot(),
        coloring=coloring,
    )


def recolor(
    weights,
    base,
    *,
    dirty=None,
    base_weights=None,
    algorithm: str = "GLL",
    runtime: Union[None, RuntimeConfig, ExecutionContext] = None,
    validate: Optional[bool] = None,
    max_cone_fraction: Optional[float] = None,
) -> ColoringResult:
    """Patch an existing coloring for a sparse weight delta.

    Instead of recoloring the whole grid, walk the dependency cone of the
    changed cells under the algorithm's wavefront schedule and recompute
    only what can differ (:mod:`repro.incremental`).  The result is
    **bit-identical** to ``color(weights, algorithm)`` — algorithms the
    cone walk does not support, and deltas whose cone outgrows
    ``max_cone_fraction`` of the grid, transparently take a full recolor
    (``mode="incremental-fallback"``).

    Parameters
    ----------
    weights:
        The grid's **new** weights (2D or 3D array).
    base:
        The prior coloring of the *old* weights with the same
        ``algorithm``: a :class:`ColoringResult` or a grid-shaped starts
        array.
    dirty:
        Flat C-order indices of the cells whose weight changed.  Omit it
        and pass ``base_weights`` (the old weights) to have the delta
        derived by comparison; extra indices are safe, missing ones are
        not.
    base_weights:
        The old weights, used to derive ``dirty`` when it is omitted.
    algorithm:
        Registry algorithm the base coloring was produced with.
    runtime:
        ``None`` (ambient context), a :class:`RuntimeConfig` (fresh
        context), or an :class:`ExecutionContext`.
    validate / max_cone_fraction:
        Overrides for the context's
        :class:`~repro.runtime.config.IncrementalConfig` — diff against a
        full recolor / cone budget as a grid fraction.

    Returns
    -------
    ColoringResult
        ``provenance["recolor"]`` carries the delta provenance: cells
        dirtied, cells recomputed, cells changed, wavefront levels
        touched, whether the cone spliced back early, and the fallback
        reason if one engaged.
    """
    if runtime is None:
        ctx = get_context()
    elif isinstance(runtime, RuntimeConfig):
        ctx = ExecutionContext(runtime)
    elif isinstance(runtime, ExecutionContext):
        ctx = runtime
    else:
        raise TypeError(
            "recolor's runtime must be None, a RuntimeConfig, or an "
            f"ExecutionContext; got {type(runtime).__name__}"
        )

    base_starts = base.starts if isinstance(base, ColoringResult) else base
    if base_starts is None:
        raise ValueError("base coloring carries no starts (digest-only?)")
    if dirty is None:
        if base_weights is None:
            raise ValueError("give dirty indices or base_weights to diff")
        old = np.asarray(base_weights)
        new = np.asarray(weights)
        if old.shape != new.shape:
            raise ValueError(
                f"base_weights shape {old.shape} != weights shape {new.shape}"
            )
        dirty = np.flatnonzero(old.ravel() != new.ravel())

    outcome = recolor_grid(
        weights,
        base_starts,
        dirty,
        algorithm=algorithm,
        context=ctx,
        validate=validate,
        max_cone_fraction=max_cone_fraction,
    )
    mode = (
        "incremental" if outcome.mode == "incremental" else "incremental-fallback"
    )
    provenance = {
        "algorithm": algorithm,
        "mode": mode,
        "runtime": config_fingerprint(ctx.config),
        "shape": tuple(outcome.starts.shape),
        "recolor": outcome.stats(),
    }
    return ColoringResult(
        starts=outcome.starts,
        maxcolor=outcome.maxcolor,
        algorithm=algorithm,
        mode=mode,
        provenance=provenance,
        metrics=ctx.metrics.snapshot(),
    )
