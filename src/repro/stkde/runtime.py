"""Discrete-event simulator of an OpenMP-style tasking runtime.

Section VII: the application creates one OpenMP task per box, in order of
increasing interval start, with dependencies to the neighboring boxes created
earlier.  The DAG is therefore the stencil with every edge oriented in
coloring order, and ``maxcolor`` bounds the weighted critical path.

:func:`simulate_schedule` replays that DAG on ``P`` identical workers with a
FIFO ready queue (tasks become ready when all earlier-created neighbors have
finished; ties broken by creation order — the closest deterministic stand-in
for OpenMP's task pool).  The returned :class:`RuntimeTrace` carries the
makespan, per-worker busy time, and the DAG's critical path, which is what
Figure 10 correlates with ``maxcolor``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.coloring import Coloring
from repro.core.problem import IVCInstance


@dataclass(frozen=True)
class TaskDAG:
    """The oriented stencil DAG induced by a coloring.

    Only boxes with work (positive weight) become tasks — an empty box does
    no computation and writes no voxel, so the application never creates a
    task for it and it must not serialize its neighbors.

    Attributes
    ----------
    creation_order:
        Active task ids sorted by (interval start, id) — the order tasks are
        handed to the runtime.
    rank:
        Inverse mapping: ``rank[v]`` is v's creation index, or -1 for
        inactive (empty) boxes.
    successors:
        For each vertex, the array of later-created active neighbor ids
        (empty for inactive vertices).
    indegree:
        Number of earlier-created active neighbors per vertex.
    """

    creation_order: np.ndarray
    rank: np.ndarray
    successors: list[np.ndarray]
    indegree: np.ndarray

    @property
    def num_tasks(self) -> int:
        """Number of active tasks."""
        return len(self.creation_order)


def task_dag_from_coloring(coloring: Coloring) -> TaskDAG:
    """Orient every conflict edge between non-empty boxes in coloring order.

    Creation order is ``(start(v), v)`` lexicographic, matching the paper's
    "tasks are created in order of increasing start of their color
    interval".  Since adjacent active tasks have disjoint intervals, every
    DAG path visits strictly increasing, pairwise disjoint intervals — hence
    the weighted critical path never exceeds ``maxcolor`` (the property the
    paper's Section VII analysis relies on).
    """
    instance = coloring.instance
    n = instance.num_vertices
    active = np.flatnonzero(instance.weights > 0)
    order_within = np.lexsort((active, coloring.starts[active]))
    creation_order = active[order_within].astype(np.int64)
    rank = np.full(n, -1, dtype=np.int64)
    rank[creation_order] = np.arange(len(creation_order))
    successors: list[np.ndarray] = []
    indegree = np.zeros(n, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    for v in range(n):
        if rank[v] < 0:
            successors.append(empty)
            continue
        nbs = instance.graph.neighbors(v)
        nbs = nbs[rank[nbs] >= 0]
        later = nbs[rank[nbs] > rank[v]]
        successors.append(later.astype(np.int64))
        indegree[v] = len(nbs) - len(later)
    return TaskDAG(
        creation_order=creation_order,
        rank=rank,
        successors=successors,
        indegree=indegree,
    )


@dataclass(frozen=True)
class RuntimeTrace:
    """Result of a simulated parallel execution.

    Attributes
    ----------
    makespan:
        Total simulated time (the Figure 10 "runtime").
    start_times, finish_times:
        Per-task schedule.
    worker_busy:
        Per-worker total busy time.
    critical_path:
        Weighted longest path through the DAG (lower bound on makespan).
    total_work:
        Sum of all task costs (``total_work / P`` is the other bound).
    """

    makespan: float
    start_times: np.ndarray
    finish_times: np.ndarray
    worker_busy: np.ndarray
    critical_path: float
    total_work: float

    @property
    def parallel_efficiency(self) -> float:
        """``total_work / (P * makespan)`` — 1.0 means no idle time."""
        p = len(self.worker_busy)
        if self.makespan <= 0 or p == 0:
            return 1.0
        return float(self.total_work / (p * self.makespan))


def default_costs(instance: IVCInstance, per_point: float = 1.0, overhead: float = 0.05) -> np.ndarray:
    """Task cost model: ``overhead + per_point * weight``.

    Zero-weight boxes still pay the (small) task-creation overhead, matching
    how an OpenMP runtime treats empty tasks.
    """
    return overhead + per_point * instance.weights.astype(np.float64)


def critical_path_length(dag: TaskDAG, costs: np.ndarray) -> float:
    """Weighted longest path: dynamic programming in creation order."""
    n = len(costs)
    longest = np.zeros(n, dtype=np.float64)
    best = 0.0
    for v in dag.creation_order:
        v = int(v)
        finish = longest[v] + costs[v]
        best = max(best, finish)
        for u in dag.successors[v]:
            if finish > longest[u]:
                longest[u] = finish
    return float(best)


def simulate_schedule(
    coloring: Coloring,
    num_workers: int,
    costs: np.ndarray | None = None,
    policy: str = "fifo",
    creation_window: int | None = None,
) -> RuntimeTrace:
    """Replay the colored task DAG on ``num_workers`` identical workers.

    Greedy list scheduling over the ready pool, deterministic.

    Parameters
    ----------
    policy:
        ``"fifo"`` — pick the ready task with the smallest creation index
        (a global task queue fed in creation order); ``"lifo"`` — pick the
        most recently created ready task (child-first execution, as several
        OpenMP runtimes do under pressure).
    creation_window:
        If set, models task-creation throttling: the creating thread stops
        once ``creation_window`` created tasks are unfinished, so a task can
        only become ready after every earlier-created task has been created.
        ``None`` (default) creates everything upfront.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if policy not in ("fifo", "lifo"):
        raise ValueError(f"unknown policy {policy!r}; use 'fifo' or 'lifo'")
    if creation_window is not None and creation_window < 1:
        raise ValueError("creation_window must be positive")
    instance = coloring.instance
    n = instance.num_vertices
    if costs is None:
        costs = default_costs(instance)
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) != n:
        raise ValueError(f"expected {n} costs")
    dag = task_dag_from_coloring(coloring)
    num_tasks = dag.num_tasks
    sign = 1 if policy == "fifo" else -1

    indegree = dag.indegree.copy()
    ready: list[int] = []  # heap of (signed) creation ranks
    created = 0  # tasks created so far (prefix of creation order)
    in_pool = 0  # created but unfinished
    window = creation_window if creation_window is not None else num_tasks

    def create_more() -> None:
        nonlocal created, in_pool
        while created < num_tasks and in_pool < window:
            r = created
            created += 1
            in_pool += 1
            v = int(dag.creation_order[r])
            if indegree[v] == 0:
                heapq.heappush(ready, sign * r)

    create_more()
    running: list[tuple[float, int, int]] = []  # (finish, rank, task)
    start_times = np.zeros(n, dtype=np.float64)
    finish_times = np.zeros(n, dtype=np.float64)
    worker_busy = np.zeros(num_workers, dtype=np.float64)
    free_workers = num_workers
    now = 0.0
    scheduled = 0
    while scheduled < num_tasks or running:
        while ready and free_workers > 0:
            r = sign * heapq.heappop(ready)
            v = int(dag.creation_order[r])
            start_times[v] = now
            finish = now + costs[v]
            finish_times[v] = finish
            heapq.heappush(running, (finish, r, v))
            free_workers -= 1
            scheduled += 1
        if not running:
            if scheduled < num_tasks:  # pragma: no cover - DAGs are acyclic
                raise AssertionError("deadlock in task DAG")
            break
        finish, _r, v = heapq.heappop(running)
        now = finish
        free_workers += 1
        in_pool -= 1
        for u in dag.successors[v]:
            u = int(u)
            indegree[u] -= 1
            if indegree[u] == 0 and dag.rank[u] < created:
                heapq.heappush(ready, sign * int(dag.rank[u]))
        create_more()

    makespan = float(finish_times.max(initial=0.0))
    # Busy time bookkeeping: total work spread across workers is enough for
    # the efficiency metric; per-worker split is not observable in this model.
    total = float(costs[dag.creation_order].sum()) if num_tasks else 0.0
    worker_busy[:] = total / num_workers
    return RuntimeTrace(
        makespan=makespan,
        start_times=start_times,
        finish_times=finish_times,
        worker_busy=worker_busy,
        critical_path=critical_path_length(dag, costs),
        total_work=total,
    )
