"""Space-Time Kernel Density Estimation application (Section VII).

The paper validates its colorings inside a real STKDE code: events contribute
kernel density to voxels within a space/time bandwidth; the space is
partitioned into boxes no smaller than twice the bandwidth; each box is a
sequential task whose weight is its point count; neighboring boxes conflict
(27-pt stencil); and the coloring orients the task DAG handed to the OpenMP
runtime.

Here the computation is pure numpy (:mod:`~repro.stkde.stkde`), the task
decomposition mirrors the paper's (:mod:`~repro.stkde.tasks`), and the OpenMP
tasking runtime is replaced by a deterministic discrete-event simulator
(:mod:`~repro.stkde.runtime`) plus an optional real thread pool
(:mod:`~repro.stkde.parallel`) — see DESIGN.md §3 for why the simulator
preserves the colors-vs-runtime behaviour that Figure 10 measures.
"""

from repro.stkde.kernel import epanechnikov, space_time_kernel
from repro.stkde.parallel import execute_threaded
from repro.stkde.runtime import RuntimeTrace, simulate_schedule, task_dag_from_coloring
from repro.stkde.stkde import stkde_reference
from repro.stkde.tasks import STKDEProblem, box_decomposition

__all__ = [
    "RuntimeTrace",
    "STKDEProblem",
    "box_decomposition",
    "epanechnikov",
    "execute_threaded",
    "simulate_schedule",
    "space_time_kernel",
    "stkde_reference",
    "task_dag_from_coloring",
]
