"""Space-time kernel functions.

STKDE uses a product kernel: a radial Epanechnikov kernel over the 2D
spatial distance and a 1D Epanechnikov kernel over the time difference, each
scaled by its own bandwidth (following Saule et al., ICPP 2017, the
application the paper integrates with).
"""

from __future__ import annotations

import numpy as np


def epanechnikov(u: np.ndarray) -> np.ndarray:
    """The 1D Epanechnikov kernel ``0.75 (1 - u^2)`` on ``|u| <= 1`` (vectorized)."""
    u = np.asarray(u, dtype=np.float64)
    out = 0.75 * (1.0 - u * u)
    return np.where(np.abs(u) <= 1.0, out, 0.0)


def epanechnikov_2d(u: np.ndarray) -> np.ndarray:
    """The radial 2D Epanechnikov kernel ``(2/pi)(1 - u^2)`` on ``u <= 1``.

    ``u`` is the normalized spatial distance; the constant integrates the
    kernel to 1 over the unit disk.
    """
    u = np.asarray(u, dtype=np.float64)
    out = (2.0 / np.pi) * (1.0 - u * u)
    return np.where(u <= 1.0, out, 0.0)


def space_time_kernel(
    dist_xy: np.ndarray, dt: np.ndarray, h_space: float, h_time: float
) -> np.ndarray:
    """Product space-time kernel contribution (vectorized).

    Parameters
    ----------
    dist_xy:
        Euclidean spatial distances between event and voxel centers.
    dt:
        Signed time differences.
    h_space, h_time:
        Spatial and temporal bandwidths (> 0).
    """
    if h_space <= 0 or h_time <= 0:
        raise ValueError("bandwidths must be positive")
    norm = 1.0 / (h_space * h_space * h_time)
    return norm * epanechnikov_2d(dist_xy / h_space) * epanechnikov(dt / h_time)
