"""Gantt-chart rendering of simulated schedules.

Turns a :class:`~repro.stkde.runtime.RuntimeTrace` into an SVG timeline:
one lane per worker, one bar per task, colored by the task's interval start
(so the color waves of the coloring are visible in the schedule).  Built on
the dependency-free SVG canvas of :mod:`repro.analysis.svgplot`.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.svgplot import PALETTE, SVGCanvas
from repro.core.coloring import Coloring
from repro.stkde.runtime import RuntimeTrace


def _assign_lanes(starts: np.ndarray, finishes: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Greedy lane assignment: reuse the first lane free at each start time.

    The simulator doesn't record worker identities (they're symmetric), so
    lanes are reconstructed; the reconstruction needs exactly as many lanes
    as the schedule's peak parallelism.
    """
    lane_free: list[float] = []
    lanes = np.full(len(starts), -1, dtype=np.int64)
    for v in order:
        v = int(v)
        placed = False
        for lane, free_at in enumerate(lane_free):
            if free_at <= starts[v] + 1e-12:
                lane_free[lane] = finishes[v]
                lanes[v] = lane
                placed = True
                break
        if not placed:
            lane_free.append(finishes[v])
            lanes[v] = len(lane_free) - 1
    return lanes


def gantt_svg(coloring: Coloring, trace: RuntimeTrace, title: str = "") -> str:
    """Render the schedule of ``trace`` as an SVG Gantt chart.

    Tasks are colored by their interval start (`hue ~ start / maxcolor`),
    making the coloring's wave structure visible in the executed schedule.
    """
    instance = coloring.instance
    active = np.flatnonzero(
        (instance.weights > 0) & (trace.finish_times > trace.start_times)
    )
    if len(active) == 0:
        canvas = SVGCanvas(xlim=(0, 1), ylim=(0, 1))
        canvas.axes("time", "worker", title=title or "empty schedule")
        return canvas.render()
    order = active[np.argsort(trace.start_times[active], kind="stable")]
    lanes = _assign_lanes(trace.start_times, trace.finish_times, order)
    num_lanes = int(lanes[active].max()) + 1
    canvas = SVGCanvas(
        width=760,
        height=90 + 26 * num_lanes,
        xlim=(0.0, max(trace.makespan, 1e-9)),
        ylim=(0.0, float(num_lanes)),
    )
    canvas.axes("simulated time", "worker lane", title=title, yticks=range(num_lanes))
    maxcolor = max(coloring.maxcolor, 1)
    for v in order:
        v = int(v)
        lane = int(lanes[v])
        x0 = canvas.px(trace.start_times[v])
        x1 = canvas.px(trace.finish_times[v])
        y0 = canvas.py(lane + 0.85)
        y1 = canvas.py(lane + 0.15)
        shade = int(coloring.starts[v]) / maxcolor
        color = PALETTE[int(shade * (len(PALETTE) - 1))]
        canvas.rect_px(x0, y0, max(x1 - x0, 0.8), y1 - y0, color)
    canvas.text(
        canvas.width - canvas.margin,
        16,
        f"makespan {trace.makespan:.1f}, CP {trace.critical_path:.1f}, "
        f"eff {trace.parallel_efficiency:.2f}",
        anchor="end",
        size=11,
    )
    return canvas.render()
