"""Real threaded execution of the colored STKDE task DAG.

A :class:`~concurrent.futures.ThreadPoolExecutor` stands in for the OpenMP
runtime: tasks are released in creation order once all earlier-created
neighbors finished, so neighboring boxes never run concurrently and the
shared density grid is written race-free (boxes are >= 2x bandwidth, hence
non-neighbors touch disjoint voxels).

CPython's GIL means wall-clock speedups are modest (numpy releases the GIL
only inside large kernels), so the *quantitative* Figure 10 runtimes come
from :mod:`repro.stkde.runtime`; this module demonstrates correctness of the
race-freedom argument on real threads and reports the measured wall time.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.coloring import Coloring
from repro.stkde.runtime import task_dag_from_coloring
from repro.stkde.tasks import STKDEProblem


@dataclass(frozen=True)
class ThreadedResult:
    """Outcome of a threaded run: the density grid and the wall time."""

    density: np.ndarray
    elapsed: float
    num_tasks: int


def execute_threaded(
    problem: STKDEProblem,
    coloring: Coloring,
    num_workers: int = 4,
) -> ThreadedResult:
    """Execute every box task on a thread pool honoring the colored DAG."""
    if coloring.instance.num_vertices != int(np.prod(problem.box_dims)):
        raise ValueError("coloring does not match the problem's box grid")
    coloring.check()
    dag = task_dag_from_coloring(coloring)
    n = coloring.instance.num_vertices
    density = np.zeros(problem.voxel_dims, dtype=np.float64)
    indegree = dag.indegree.copy()
    lock = threading.Lock()
    done = threading.Event()
    remaining = [n]

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=num_workers) as pool:

        def run(v: int) -> None:
            problem.execute_task(v, density)
            newly_ready = []
            with lock:
                remaining[0] -= 1
                if remaining[0] == 0:
                    done.set()
                for u in dag.successors[v]:
                    u = int(u)
                    indegree[u] -= 1
                    if indegree[u] == 0:
                        newly_ready.append(u)
            for u in newly_ready:
                pool.submit(run, u)

        roots = [v for v in range(n) if dag.indegree[v] == 0]
        if n == 0:
            done.set()
        for v in roots:
            pool.submit(run, v)
        done.wait()
    elapsed = time.perf_counter() - t0
    return ThreadedResult(density=density, elapsed=elapsed, num_tasks=n)
