"""Box decomposition of an STKDE computation into stencil tasks.

The parallelisation strategy of Section VII: partition the domain into a
uniform grid of boxes, each at least twice the bandwidth wide per axis.  The
points of one box form one sequential task; the task's weight is its point
count; two tasks conflict iff their boxes are Moore neighbors — the conflict
graph is exactly a 27-pt stencil, i.e. a 3DS-IVC instance.

Because boxes are at least ``2 × bandwidth`` wide, a task only ever writes
voxels inside its own or its neighbors' territory, so any schedule in which
neighbors never run concurrently is race-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.problem import IVCInstance
from repro.data.events import PointDataset
from repro.data.voxelize import max_dim_for_bandwidth
from repro.stkde.stkde import accumulate_point, voxel_centers


@dataclass(frozen=True)
class STKDEProblem:
    """An STKDE computation plus its box/task decomposition.

    Attributes
    ----------
    dataset:
        The events.
    voxel_dims:
        Resolution of the output density grid.
    h_space, h_time:
        Kernel bandwidths.
    box_dims:
        The task grid ``(X, Y, Z)``; every axis must satisfy the
        ``cell >= 2 * bandwidth`` constraint.
    """

    dataset: PointDataset
    voxel_dims: tuple[int, int, int]
    h_space: float
    h_time: float
    box_dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        for axis, (dim, h) in enumerate(
            zip(self.box_dims, (self.h_space, self.h_space, self.h_time))
        ):
            limit = max_dim_for_bandwidth(self.dataset.axis_length(axis), h)
            if dim > limit:
                raise ValueError(
                    f"axis {axis}: {dim} boxes violate the 2x-bandwidth rule "
                    f"(max {limit})"
                )
            if dim < 1:
                raise ValueError("box dims must be positive")

    @cached_property
    def point_boxes(self) -> np.ndarray:
        """Box index (flat, row-major) of every point (vectorized binning)."""
        pts = self.dataset.points
        ext = self.dataset.extent
        idx = np.empty((len(pts), 3), dtype=np.int64)
        for axis in range(3):
            lo, hi = ext[axis]
            scaled = (pts[:, axis] - lo) / (hi - lo) * self.box_dims[axis]
            idx[:, axis] = np.clip(scaled.astype(np.int64), 0, self.box_dims[axis] - 1)
        return np.ravel_multi_index(tuple(idx.T), self.box_dims).astype(np.int64)

    @cached_property
    def task_point_ids(self) -> list[np.ndarray]:
        """Point indices of each task (box), indexed by flat box id."""
        order = np.argsort(self.point_boxes, kind="stable")
        sorted_boxes = self.point_boxes[order]
        num_boxes = int(np.prod(self.box_dims))
        splits = np.searchsorted(sorted_boxes, np.arange(1, num_boxes))
        return [chunk for chunk in np.split(order, splits)]

    @cached_property
    def instance(self) -> IVCInstance:
        """The 3DS-IVC instance: 27-pt stencil over boxes, weights = counts."""
        counts = np.bincount(self.point_boxes, minlength=int(np.prod(self.box_dims)))
        return IVCInstance.from_grid_3d(
            counts.reshape(self.box_dims),
            name=f"stkde-{self.dataset.name}-{'x'.join(map(str, self.box_dims))}",
            metadata={
                "dataset": self.dataset.name,
                "h_space": self.h_space,
                "h_time": self.h_time,
                "voxel_dims": self.voxel_dims,
            },
        )

    @cached_property
    def _centers(self) -> tuple[np.ndarray, ...]:
        return voxel_centers(self.dataset.extent, self.voxel_dims)

    def execute_task(self, box: int, density: np.ndarray) -> int:
        """Run one box's accumulation into ``density`` (in place).

        Returns the number of points processed (the task weight).
        """
        ids = self.task_point_ids[box]
        for pid in ids:
            accumulate_point(
                density, self._centers, self.dataset.points[pid], self.h_space, self.h_time
            )
        return len(ids)

    def execute_all(self, order: np.ndarray | None = None) -> np.ndarray:
        """Run every task sequentially (in the given order) — must equal the
        reference density regardless of order, since addition commutes."""
        density = np.zeros(self.voxel_dims, dtype=np.float64)
        boxes = order if order is not None else np.arange(int(np.prod(self.box_dims)))
        for box in boxes:
            self.execute_task(int(box), density)
        return density


def box_decomposition(
    dataset: PointDataset,
    h_space: float,
    h_time: float,
    voxel_dims: tuple[int, int, int] = (32, 32, 32),
    box_dims: tuple[int, int, int] | None = None,
) -> STKDEProblem:
    """Build an :class:`STKDEProblem`, defaulting to the finest legal box grid."""
    if box_dims is None:
        box_dims = (
            max_dim_for_bandwidth(dataset.axis_length(0), h_space),
            max_dim_for_bandwidth(dataset.axis_length(1), h_space),
            max_dim_for_bandwidth(dataset.axis_length(2), h_time),
        )
    return STKDEProblem(
        dataset=dataset,
        voxel_dims=tuple(int(d) for d in voxel_dims),
        h_space=float(h_space),
        h_time=float(h_time),
        box_dims=tuple(int(d) for d in box_dims),
    )
