"""Reference (sequential) STKDE computation.

Density at voxel center ``v`` is the sum over events ``p`` of the product
space-time kernel evaluated at their space/time offsets.  The accumulation
loops over events and adds each event's contribution to the (small) block of
voxels inside its bandwidth — vectorized per event, which keeps the inner
work in numpy.
"""

from __future__ import annotations

import numpy as np

from repro.data.events import PointDataset
from repro.stkde.kernel import epanechnikov, epanechnikov_2d


def voxel_centers(extent: np.ndarray, dims: tuple[int, int, int]) -> tuple[np.ndarray, ...]:
    """Per-axis voxel center coordinates for a uniform grid."""
    out = []
    for axis in range(3):
        lo, hi = extent[axis]
        edges = np.linspace(lo, hi, dims[axis] + 1)
        out.append(0.5 * (edges[:-1] + edges[1:]))
    return tuple(out)


def accumulate_point(
    density: np.ndarray,
    centers: tuple[np.ndarray, ...],
    point: np.ndarray,
    h_space: float,
    h_time: float,
) -> None:
    """Add one event's kernel contribution to the density grid in place."""
    cx, cy, ct = centers
    px, py, pt = point
    ix = np.flatnonzero(np.abs(cx - px) <= h_space)
    iy = np.flatnonzero(np.abs(cy - py) <= h_space)
    it = np.flatnonzero(np.abs(ct - pt) <= h_time)
    if not (len(ix) and len(iy) and len(it)):
        return
    dx = (cx[ix] - px) / h_space
    dy = (cy[iy] - py) / h_space
    dist = np.sqrt(dx[:, None] ** 2 + dy[None, :] ** 2)
    spatial = epanechnikov_2d(dist)
    temporal = epanechnikov((ct[it] - pt) / h_time)
    norm = 1.0 / (h_space * h_space * h_time)
    block = norm * spatial[:, :, None] * temporal[None, None, :]
    density[np.ix_(ix, iy, it)] += block


def stkde_reference(
    dataset: PointDataset,
    voxel_dims: tuple[int, int, int],
    h_space: float,
    h_time: float,
) -> np.ndarray:
    """Sequential STKDE over the full dataset.

    Returns the ``voxel_dims`` density grid.  This is the ground truth the
    task-parallel execution paths are checked against.
    """
    if h_space <= 0 or h_time <= 0:
        raise ValueError("bandwidths must be positive")
    density = np.zeros(voxel_dims, dtype=np.float64)
    centers = voxel_centers(dataset.extent, voxel_dims)
    for point in dataset.points:
        accumulate_point(density, centers, point, h_space, h_time)
    return density
